#include "chaos/emulation_campaign.hpp"

#include <algorithm>
#include <vector>

#include <memory>

#include "graph/properties.hpp"
#include "mp/guarded_emulation.hpp"
#include "obs/trace.hpp"
#include "pif/codec.hpp"
#include "pif/ghost.hpp"
#include "pif/protocol.hpp"
#include "util/assert.hpp"

namespace snappif::chaos {

namespace {

using Emulation = mp::GuardedEmulation<pif::PifProtocol, pif::StateCodec>;

/// An active fault window on the campaign clock: [begin, end).
struct Window {
  EventKind kind;
  std::uint64_t begin;
  std::uint64_t end;
  double rate;
  std::uint32_t magnitude = 0;  // tdelay: per-frame hold in rounds
};

/// A transport partition window: processor isolated below the link.
struct PartWindow {
  std::uint64_t begin;
  std::uint64_t end;
  sim::ProcessorId processor;
  bool applied = false;
};

struct CrashWindow {
  std::uint64_t begin;
  std::uint64_t end;
  sim::ProcessorId processor;
  bool corrupt;
  bool applied = false;
};

/// Wave/phase/link span tracer for the emulation path: the message-passing
/// sibling of pif::WaveTraceProbe, fed by the emulation apply hook and the
/// link's frame observer instead of engine probes.  Timestamps are emulated
/// rounds, so flight-recorder spans line up with every round count the
/// result reports.
class EmuTracer final : public mp::ILinkObserver {
 public:
  EmuTracer(obs::SpanCollector& spans, sim::ProcessorId root,
            const sim::Configuration<pif::State>& initial)
      : spans_(&spans), root_(root) {
    const std::size_t n = initial.states().size();
    last_phase_.reserve(n);
    phase_span_.reserve(n);
    for (std::size_t p = 0; p < n; ++p) {
      last_phase_.push_back(initial.states()[p].pif);
      phase_span_.push_back(
          open_phase(static_cast<sim::ProcessorId>(p), last_phase_.back()));
    }
  }

  void set_tick(std::uint64_t tick) noexcept { tick_ = tick; }

  void on_apply(sim::ProcessorId p, sim::ActionId a, const pif::State& after) {
    // Root actions first, so the B-action's own transition nests inside the
    // wave it opens (same ordering as pif::WaveTraceProbe).
    if (p == root_ && a == pif::kBAction) {
      if (wave_span_ != 0) {
        spans_->close(wave_span_, tick_);  // aborted wave: close where it died
      }
      wave_span_ = spans_->open(obs::SpanKind::kWave, tick_, root_);
    }
    if (a == pif::kBCorrection || a == pif::kFCorrection) {
      spans_->instant(obs::SpanKind::kCorrectionBurst, tick_, p, wave_span_,
                      wave_span_, std::string(pif::action_label(a)));
    }
    if (p < last_phase_.size() && after.pif != last_phase_[p]) {
      spans_->close(phase_span_[p], tick_);
      last_phase_[p] = after.pif;
      phase_span_[p] = open_phase(p, after.pif);
    }
    if (p == root_ && a == pif::kFAction && wave_span_ != 0) {
      spans_->close(wave_span_, tick_);
      wave_span_ = 0;
    }
  }

  /// Free-form instant annotation (crash/recover events).
  void mark(sim::ProcessorId p, std::string detail) {
    spans_->instant(obs::SpanKind::kMark, tick_, p, 0, wave_span_,
                    std::move(detail));
  }

  void finish() {
    for (const obs::SpanId id : phase_span_) {
      spans_->close(id, tick_);
    }
    if (wave_span_ != 0) {
      spans_->close(wave_span_, tick_);
      wave_span_ = 0;
    }
  }

  // mp::ILinkObserver: frame life-cycle spans, attributed to the wave in
  // flight at observation time.
  void on_link_transmit(mp::ProcessorId from, mp::ProcessorId to,
                        bool retransmit) override {
    spans_->instant(retransmit ? obs::SpanKind::kLinkRetransmit
                               : obs::SpanKind::kLinkSend,
                    tick_, from, 0, wave_span_, {}, to);
  }
  void on_link_delivered(mp::ProcessorId to, mp::ProcessorId from) override {
    spans_->instant(obs::SpanKind::kLinkDeliver, tick_, to, 0, wave_span_, {},
                    from);
  }
  void on_link_peer_reset(mp::ProcessorId to, mp::ProcessorId from) override {
    spans_->instant(obs::SpanKind::kLinkPeerReset, tick_, to, 0, wave_span_,
                    {}, from);
  }

 private:
  obs::SpanId open_phase(sim::ProcessorId p, pif::Phase ph) {
    const char label[2] = {pif::phase_char(ph), '\0'};
    return spans_->open(obs::SpanKind::kPhase, tick_, p, wave_span_,
                        wave_span_, label);
  }

  obs::SpanCollector* spans_;
  sim::ProcessorId root_;
  std::vector<pif::Phase> last_phase_;
  std::vector<obs::SpanId> phase_span_;
  obs::SpanId wave_span_ = 0;
  std::uint64_t tick_ = 0;
};

void record_telemetry(obs::Registry* registry, const Emulation& emu,
                      const EmulationCampaignResult& result) {
  if (registry == nullptr) {
    return;
  }
  obs::Registry& reg = *registry;
  reg.counter("chaos.emu.campaigns").inc();
  if (!result.ok()) {
    reg.counter("chaos.emu.campaigns_failed").inc();
  }
  reg.counter("chaos.emu.crashes").inc(result.crashes_applied);
  reg.counter("chaos.emu.cycles_completed").inc(result.cycles_completed);
  reg.counter("chaos.emu.actions_applied").inc(result.actions_applied);
  reg.counter("chaos.emu.messages_dropped").inc(result.messages_dropped);
  reg.counter("chaos.emu.messages_dropped_crashed")
      .inc(result.messages_dropped_crashed);
  if (result.recovered) {
    reg.stats("chaos.emu.rounds_to_recover")
        .add(static_cast<double>(result.rounds_to_recover));
    obs::Gauge& worst = reg.gauge("chaos.emu.worst_recovery_rounds");
    worst.set(std::max(worst.value(),
                       static_cast<double>(result.rounds_to_recover)));
  }
  emu.link().record_telemetry(reg);
  emu.impairment().record_telemetry(reg);
}

}  // namespace

EmulationCampaignResult run_emulation_campaign(
    const graph::Graph& g, const FaultSchedule& schedule,
    const EmulationCampaignOptions& opts) {
  SNAPPIF_ASSERT_MSG(graph::is_connected(g),
                     "emulation campaign graph must be connected");
  SNAPPIF_ASSERT(opts.root < g.n());
  EmulationCampaignResult result;

  std::vector<Window> windows;
  std::vector<CrashWindow> crashes;
  std::vector<PartWindow> partitions;
  for (const FaultEvent& ev : schedule.events) {
    switch (ev.kind) {
      case EventKind::kMpLoss:
      case EventKind::kMpDuplicate:
      case EventKind::kMpReorder:
      case EventKind::kTransportLoss:
      case EventKind::kTransportDuplicate:
      case EventKind::kTransportReorder:
      case EventKind::kTransportDelay:
        // duration 0 means "at least this round".
        windows.push_back({ev.kind, ev.round,
                           ev.round + std::max<std::uint64_t>(ev.duration, 1),
                           ev.rate, ev.magnitude});
        break;
      case EventKind::kTransportPartition:
        partitions.push_back({ev.round, ev.round + ev.duration,
                              ev.magnitude % g.n()});
        break;
      case EventKind::kCrash:
        crashes.push_back({ev.round, ev.round + ev.duration,
                           ev.magnitude % g.n(), ev.crash_corrupt});
        break;
      default:
        ++result.events_skipped;  // shared-memory kinds; see campaign.hpp
        break;
    }
  }
  // The shim stays a zero-RNG pass-through unless a transport event exists:
  // schedules without them replay bit-identically to the pre-shim stack.
  const bool use_shim = schedule.contains_transport();
  result.windows_applied = windows.size();
  result.quiet_round = schedule.quiet_round();

  const pif::Params params = pif::Params::for_graph(g, opts.root);
  const pif::PifProtocol proto(g, params);
  util::Rng rng(opts.seed ^ 0xc2b2ae3d27d4eb4fULL);

  sim::Configuration<pif::State> initial(g, proto.initial_state(0));
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    initial.state(p) =
        opts.arbitrary_init ? proto.random_state(p, rng) : proto.initial_state(p);
  }

  Emulation emu(g, proto, pif::StateCodec(g, params), initial, opts.seed);
  pif::GhostTracker tracker(g, opts.root);
  std::unique_ptr<EmuTracer> tracer;
  if (opts.flight != nullptr) {
    tracer = std::make_unique<EmuTracer>(opts.flight->spans(), opts.root,
                                         initial);
    emu.link().set_observer(tracer.get());
  }
  emu.set_apply_hook([&tracker, &tracer](sim::ProcessorId p, sim::ActionId a,
                                         const pif::State& after) {
    if (tracer != nullptr) {
      tracer->on_apply(p, a, after);
    }
    tracker.on_apply(p, a, after);
  });

  const auto finish = [&](EmulationCampaignResult& r) {
    if (tracer != nullptr) {
      tracer->set_tick(emu.rounds());
      tracer->finish();
      if (!r.ok()) {
        obs::FlightContext& ctx = opts.flight->context();
        if (ctx.failure.empty()) {
          ctx.failure =
              r.failure.empty() ? "emulation campaign failed" : r.failure;
        }
        const sim::Configuration<pif::State> view = emu.global_view();
        const pif::StateCodec codec(g, params);
        std::vector<std::uint64_t> words;
        words.reserve(g.n());
        for (sim::ProcessorId p = 0; p < g.n(); ++p) {
          words.push_back(codec.encode(view.state(p)));
        }
        opts.flight->set_snapshot("pif.codec.v1", std::move(words));
      }
    }
    r.rounds_total = emu.rounds();
    r.actions_applied = emu.actions_applied();
    r.cycles_completed = tracker.cycles_completed();
    const mp::Network& net = emu.network();
    r.messages_dropped = net.messages_dropped();
    r.messages_duplicated = net.messages_duplicated();
    r.messages_reordered = net.messages_reordered();
    r.messages_dropped_crashed = net.messages_dropped_crashed();
    const mp::LinkStats& link = emu.link().stats();
    r.link_retransmits = link.retransmits;
    r.link_timer_fires = link.timer_fires;
    r.link_spurious_acks = link.spurious_acks;
    record_telemetry(opts.registry, emu, r);
    return r;
  };

  const auto set_rates = [&](std::uint64_t round) {
    double loss = 0.0;
    double dup = 0.0;
    double reorder = 0.0;
    double tloss = 0.0;
    double tdup = 0.0;
    double treorder = 0.0;
    double tdelay = 0.0;
    std::uint32_t tdelay_steps = 0;
    for (const Window& w : windows) {
      if (round < w.begin || round >= w.end) {
        continue;
      }
      switch (w.kind) {
        case EventKind::kMpLoss:
          loss = std::max(loss, w.rate);
          break;
        case EventKind::kMpDuplicate:
          dup = std::max(dup, w.rate);
          break;
        case EventKind::kTransportLoss:
          tloss = std::max(tloss, w.rate);
          break;
        case EventKind::kTransportDuplicate:
          tdup = std::max(tdup, w.rate);
          break;
        case EventKind::kTransportReorder:
          treorder = std::max(treorder, w.rate);
          break;
        case EventKind::kTransportDelay:
          if (w.rate > tdelay) {
            tdelay = w.rate;
            tdelay_steps = w.magnitude;
          }
          break;
        default:
          reorder = std::max(reorder, w.rate);
          break;
      }
    }
    emu.network().set_loss_rate(loss);
    emu.network().set_duplication_rate(dup);
    emu.network().set_reorder_rate(reorder);
    if (use_shim) {
      emu.impairment().set_loss_rate(tloss);
      emu.impairment().set_duplication_rate(tdup);
      emu.impairment().set_reorder_rate(treorder);
      emu.impairment().set_delay(tdelay, tdelay_steps);
    }
  };

  emu.start();

  // Fault phase: windows modulate the channel rates; crash windows open and
  // close around their processor.  The clock is the emulated round counter.
  std::uint64_t round = 0;
  while (round < result.quiet_round) {
    if (round >= opts.max_rounds) {
      result.failure = "fault phase exceeded max_rounds";
      return finish(result);
    }
    if (tracer != nullptr) {
      tracer->set_tick(emu.rounds());
    }
    for (CrashWindow& cw : crashes) {
      if (cw.begin == round) {
        if (emu.network().crashed(cw.processor)) {
          ++result.events_skipped;  // overlapping crash of the same processor
        } else {
          emu.crash(cw.processor);
          cw.applied = true;
          ++result.crashes_applied;
          if (tracer != nullptr) {
            tracer->mark(cw.processor, cw.corrupt ? "crash.corrupt" : "crash");
          }
        }
      }
      if (cw.applied && cw.end == round && emu.network().crashed(cw.processor)) {
        emu.recover(cw.processor,
                    cw.corrupt ? Emulation::Recovery::kCorrupt
                               : Emulation::Recovery::kReset,
                    rng);
        cw.applied = false;
        if (tracer != nullptr) {
          tracer->mark(cw.processor, "recover");
        }
      }
    }
    for (PartWindow& pw : partitions) {
      if (pw.begin == round && !emu.impairment().partitioned(pw.processor)) {
        emu.impairment().partition(pw.processor);
        pw.applied = true;
        if (tracer != nullptr) {
          tracer->mark(pw.processor, "partition");
        }
      }
      if (pw.applied && pw.end == round) {
        emu.impairment().heal(pw.processor);
        pw.applied = false;
        if (tracer != nullptr) {
          tracer->mark(pw.processor, "heal");
        }
      }
    }
    set_rates(round);
    emu.round();
    ++round;
  }
  // Crash windows ending exactly at the quiet point recover here, before
  // the oracle's clock starts (quiet_round = max over events of
  // round+duration, so nothing ends later).  A zero-duration crash landing
  // exactly on the quiet round degenerates to an instant reboot.
  if (tracer != nullptr) {
    tracer->set_tick(emu.rounds());
  }
  for (CrashWindow& cw : crashes) {
    if (!cw.applied && cw.begin >= result.quiet_round &&
        !emu.network().crashed(cw.processor)) {
      emu.crash(cw.processor);
      ++result.crashes_applied;
      cw.applied = true;
      if (tracer != nullptr) {
        tracer->mark(cw.processor, cw.corrupt ? "crash.corrupt" : "crash");
      }
    }
    if (cw.applied && emu.network().crashed(cw.processor)) {
      emu.recover(cw.processor,
                  cw.corrupt ? Emulation::Recovery::kCorrupt
                             : Emulation::Recovery::kReset,
                  rng);
      cw.applied = false;
      if (tracer != nullptr) {
        tracer->mark(cw.processor, "recover");
      }
    }
  }
  emu.network().set_loss_rate(0.0);
  emu.network().set_duplication_rate(0.0);
  emu.network().set_reorder_rate(0.0);
  if (use_shim) {
    // Disarm the shim entirely: partitions ending exactly at the quiet
    // point heal here, and delayed frames still held drain during settle.
    emu.impairment().set_loss_rate(0.0);
    emu.impairment().set_duplication_rate(0.0);
    emu.impairment().set_reorder_rate(0.0);
    emu.impairment().set_delay(0.0, 0);
    for (PartWindow& pw : partitions) {
      if (pw.applied) {
        emu.impairment().heal(pw.processor);
        pw.applied = false;
        if (tracer != nullptr) {
          tracer->mark(pw.processor, "heal");
        }
      }
    }
  }
  result.completed = true;

  // Settle: gate the root's B-action and drain actions, frames, and
  // retransmissions.  A system that cannot drain is its own failure mode
  // (livelock of the correction machinery over cached views).
  emu.set_action_gate(opts.root, sim::ActionMask{1} << pif::kBAction);
  const std::uint64_t settle_start = emu.rounds();
  while (!emu.quiescent()) {
    if (tracer != nullptr) {
      tracer->set_tick(emu.rounds());
    }
    if (emu.rounds() - settle_start >= opts.settle_round_budget) {
      result.failure = "did not settle within " +
                       std::to_string(opts.settle_round_budget) +
                       " post-quiet rounds";
      return finish(result);
    }
    emu.round();
  }
  result.settled = true;
  result.rounds_to_settle = emu.rounds() - settle_start;

  // Release: the first cycle the root initiates must be clean.
  emu.set_action_gate(opts.root, 0);
  const std::uint64_t cycles_at_release = tracker.cycles_completed();
  const std::uint64_t release_start = emu.rounds();
  while (tracker.cycles_completed() == cycles_at_release) {
    if (tracer != nullptr) {
      tracer->set_tick(emu.rounds());
    }
    if (emu.rounds() - release_start >= opts.recovery_round_budget) {
      result.failure = "no cycle completed within " +
                       std::to_string(opts.recovery_round_budget) +
                       " post-release rounds";
      return finish(result);
    }
    emu.round();
  }
  const pif::CycleVerdict& verdict =
      tracker.verdicts().at(cycles_at_release);
  if (!verdict.ok()) {
    result.failure = std::string("first released cycle unclean (pif1=") +
                     (verdict.pif1 ? "1" : "0") +
                     " pif2=" + (verdict.pif2 ? "1" : "0") +
                     " aborted=" + (verdict.aborted ? "1" : "0") + ")";
    return finish(result);
  }
  result.recovered = true;
  result.rounds_to_recover = emu.rounds() - release_start;
  return finish(result);
}

}  // namespace snappif::chaos
