// Deterministic chaos soak driver: the engine behind snappif_chaos soak
// mode and the E18/E19 campaign benches, parallelizable over campaigns.
//
// Campaign `index`'s job (fault schedule + run seed) is a PURE FUNCTION of
// (master_seed, index): both are drawn from an RNG seeded with
// par::shard_seed(master_seed, index).  Each campaign runs as one shard with
// its own obs::Registry; at the join, outcomes are collected in index order
// and the registries are folded with Registry::merge in index order.  Both
// the outcome list and every merged metric are therefore bit-identical for
// any worker count, including a sequential run.  (The pre-parallel tool
// threaded one rolling RNG through the soak and stopped at the first
// failure; run_soak always runs every campaign — the verdict is the same,
// and first_failure is simply the lowest failing index.)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/schedule.hpp"
#include "graph/graph.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "par/pool.hpp"

namespace snappif::chaos {

struct SoakOptions {
  std::uint64_t master_seed = 1;
  std::uint64_t campaigns = 20;
  /// Shape of the random schedules (events, horizon, magnitudes, mp/crash).
  CampaignShape shape;
  /// Shared-memory campaign settings.  `seed` and `registry` are overwritten
  /// per campaign; everything else (root, daemon, budget, tweak_params) is
  /// forwarded as-is.
  CampaignOptions campaign;
  /// Also run each schedule against the message-passing runner.
  bool run_mp = false;
  /// Force the GuardedEmulation runner for the mp leg (schedules containing
  /// crash events route there regardless).
  bool emulate = false;
};

/// The fully derived job of one campaign.
struct SoakJob {
  FaultSchedule schedule;
  std::uint64_t seed = 0;
};

/// Derives campaign `index`'s job without running it (repro printing,
/// replay).  Pure in (opts.master_seed, opts.shape, index).
[[nodiscard]] SoakJob soak_job(const SoakOptions& opts, std::uint64_t index);

struct SoakOutcome {
  std::uint64_t index = 0;
  FaultSchedule schedule;
  std::uint64_t seed = 0;
  /// Shared-memory campaign verdict (always run).
  CampaignResult shared;
  // --- message-passing leg (when opts.run_mp) ---
  bool mp_run = false;
  bool used_emulation = false;
  bool mp_ok = true;
  std::string mp_failure;
  /// Flight recording of the campaign, retained only when it FAILED (the
  /// recorder streams during every run, but successful campaigns drop theirs
  /// at the join to keep soak memory flat).  Context carries scenario
  /// ("chaos.soak"), the campaign seed, and shard = index; the tool stamps
  /// its own name and the exact replay command before dumping.
  std::shared_ptr<obs::FlightRecorder> flight;

  [[nodiscard]] bool ok() const noexcept { return shared.ok() && mp_ok; }
};

/// Runs one (schedule, seed) job — the shared-memory campaign plus the
/// optional mp leg — recording telemetry into `registry` (nullable).  The
/// soak shards call this; the tool's --schedule replay mode reuses it so
/// replays route exactly like the soak run they reproduce.
[[nodiscard]] SoakOutcome run_soak_campaign(const graph::Graph& g,
                                            const SoakOptions& opts,
                                            const SoakJob& job,
                                            std::uint64_t index,
                                            obs::Registry* registry);

struct SoakReport {
  /// One outcome per campaign, in index order.
  std::vector<SoakOutcome> outcomes;
  /// Per-campaign registries merged in index order.
  obs::Registry metrics;
  /// Failing campaigns' flight recorders merged in index order: the span
  /// stream is byte-identical for any worker count, and the context /
  /// snapshot are the LOWEST failing campaign's (FlightRecorder::merge keeps
  /// the first failure it sees).  Empty-context recorder when ok().
  obs::FlightRecorder flight;
  /// Lowest failing campaign index — THE deterministic first failure.
  std::optional<std::size_t> first_failure;

  [[nodiscard]] bool ok() const noexcept { return !first_failure.has_value(); }
};

/// Runs opts.campaigns campaigns against the PIF on `g`.  Deterministic in
/// (g, opts) for any `pool`, including none.
[[nodiscard]] SoakReport run_soak(const graph::Graph& g,
                                  const SoakOptions& opts,
                                  par::ThreadPool* pool = nullptr);

}  // namespace snappif::chaos
