#include "chaos/mutate.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace snappif::chaos {

namespace {

[[nodiscard]] bool has_window(EventKind kind) {
  switch (kind) {
    case EventKind::kMpLoss:
    case EventKind::kMpDuplicate:
    case EventKind::kMpReorder:
    case EventKind::kCrash:
    case EventKind::kTransportLoss:
    case EventKind::kTransportDuplicate:
    case EventKind::kTransportReorder:
    case EventKind::kTransportDelay:
    case EventKind::kTransportPartition:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] bool has_rate(EventKind kind) {
  switch (kind) {
    case EventKind::kMpLoss:
    case EventKind::kMpDuplicate:
    case EventKind::kMpReorder:
    case EventKind::kTransportLoss:
    case EventKind::kTransportDuplicate:
    case EventKind::kTransportReorder:
    case EventKind::kTransportDelay:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] bool has_magnitude(EventKind kind) {
  switch (kind) {
    case EventKind::kBurst:
    case EventKind::kLinkKill:
    case EventKind::kLinkRestore:
    case EventKind::kCrash:
    case EventKind::kTransportDelay:
    case EventKind::kTransportPartition:
      return true;
    default:
      return false;
  }
}

/// The same kind menu random_schedule draws from.
[[nodiscard]] std::vector<EventKind> shape_menu(const CampaignShape& shape) {
  std::vector<EventKind> menu;
  if (shape.shared_memory) {
    menu.insert(menu.end(), {EventKind::kBurst, EventKind::kCorrupt,
                             EventKind::kDaemonSwap, EventKind::kLinkKill});
  }
  if (shape.message_passing) {
    menu.insert(menu.end(), {EventKind::kMpLoss, EventKind::kMpDuplicate,
                             EventKind::kMpReorder});
    if (shape.crash) {
      menu.push_back(EventKind::kCrash);
    }
    if (shape.transport) {
      menu.insert(menu.end(),
                  {EventKind::kTransportLoss, EventKind::kTransportDuplicate,
                   EventKind::kTransportReorder, EventKind::kTransportDelay,
                   EventKind::kTransportPartition});
    }
  }
  return menu;
}

/// Picks a uniformly random event index whose kind satisfies `pred`;
/// nullopt when none does.
template <typename Pred>
[[nodiscard]] std::optional<std::size_t> pick_where(const FaultSchedule& s,
                                                    util::Rng& rng,
                                                    Pred pred) {
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    if (pred(s.events[i])) {
      eligible.push_back(i);
    }
  }
  if (eligible.empty()) {
    return std::nullopt;
  }
  return eligible[rng.below(eligible.size())];
}

[[nodiscard]] std::uint64_t rate_hundredths(double rate) {
  return static_cast<std::uint64_t>(
      std::clamp(std::lround(rate * 100.0), 0l, 100l));
}

/// Re-draws the kind-specific arguments of `ev` the way random_schedule
/// draws fresh ones (rates in hundredths, durations bounded by the horizon).
void redraw_arguments(FaultEvent& ev, const CampaignShape& shape,
                      util::Rng& rng) {
  const std::uint64_t horizon = shape.horizon_rounds;
  switch (ev.kind) {
    case EventKind::kBurst:
    case EventKind::kLinkKill:
    case EventKind::kLinkRestore:
      ev.magnitude =
          1 + static_cast<std::uint32_t>(rng.below(shape.max_magnitude));
      ev.rate = 0.0;
      ev.duration = 0;
      break;
    case EventKind::kCorrupt: {
      const auto kinds = pif::all_corruption_kinds();
      ev.corruption = kinds[rng.below(kinds.size())];
      ev.rate = 0.0;
      ev.duration = 0;
      break;
    }
    case EventKind::kDaemonSwap: {
      const auto kinds = sim::standard_daemon_kinds();
      ev.daemon = kinds[rng.below(kinds.size())];
      ev.rate = 0.0;
      ev.duration = 0;
      break;
    }
    case EventKind::kMpLoss:
    case EventKind::kMpDuplicate:
    case EventKind::kMpReorder:
    case EventKind::kTransportLoss:
    case EventKind::kTransportDuplicate:
    case EventKind::kTransportReorder: {
      const std::uint64_t lo = rate_hundredths(shape.mp_rate_min);
      const std::uint64_t hi = rate_hundredths(shape.mp_rate_max);
      ev.rate = static_cast<double>(lo + rng.below(hi - lo + 1)) / 100.0;
      ev.duration = 1 + rng.below(horizon / 4 + 1);
      break;
    }
    case EventKind::kTransportDelay: {
      const std::uint64_t lo = rate_hundredths(shape.mp_rate_min);
      const std::uint64_t hi = rate_hundredths(shape.mp_rate_max);
      ev.rate = static_cast<double>(lo + rng.below(hi - lo + 1)) / 100.0;
      ev.duration = 1 + rng.below(horizon / 4 + 1);
      ev.magnitude = 1 + static_cast<std::uint32_t>(
                             rng.below(std::max<std::uint32_t>(
                                 1, shape.max_delay_steps)));
      break;
    }
    case EventKind::kTransportPartition:
      ev.magnitude = static_cast<std::uint32_t>(
          rng.below(std::max<std::uint32_t>(1, shape.crash_processors)));
      ev.duration = 1 + rng.below(horizon / 6 + 1);
      ev.rate = 0.0;
      break;
    case EventKind::kCrash:
      ev.magnitude = static_cast<std::uint32_t>(
          rng.below(std::max<std::uint32_t>(1, shape.crash_processors)));
      ev.duration = 1 + rng.below(horizon / 6 + 1);
      ev.crash_corrupt = rng.below(2) == 1;
      ev.rate = 0.0;
      break;
  }
}

}  // namespace

std::string_view mutation_op_name(MutationOp op) {
  switch (op) {
    case MutationOp::kShiftEvent:
      return "shift-event";
    case MutationOp::kDuplicateEvent:
      return "duplicate-event";
    case MutationOp::kDropEvent:
      return "drop-event";
    case MutationOp::kWidenWindow:
      return "widen-window";
    case MutationOp::kNarrowWindow:
      return "narrow-window";
    case MutationOp::kBumpMagnitude:
      return "bump-magnitude";
    case MutationOp::kBumpRate:
      return "bump-rate";
    case MutationOp::kRetargetKind:
      return "retarget-kind";
    case MutationOp::kSplice:
      return "splice";
  }
  return "?";
}

std::optional<FaultSchedule> apply_mutation(const FaultSchedule& base,
                                            const FaultSchedule& mate,
                                            MutationOp op,
                                            const CampaignShape& shape,
                                            util::Rng& rng) {
  const auto objection = validate(shape);
  SNAPPIF_ASSERT_MSG(!objection.has_value(),
                     ("degenerate campaign shape: " +
                      objection.value_or(std::string{}))
                         .c_str());
  const std::uint64_t horizon = shape.horizon_rounds;
  const std::size_t cap = max_events(shape);
  FaultSchedule out = base;

  switch (op) {
    case MutationOp::kShiftEvent: {
      if (out.events.empty()) {
        return std::nullopt;
      }
      FaultEvent& ev = out.events[rng.below(out.events.size())];
      ev.round = rng.below(horizon);
      break;
    }
    case MutationOp::kDuplicateEvent: {
      if (out.events.empty() || out.events.size() >= cap) {
        return std::nullopt;
      }
      FaultEvent copy = out.events[rng.below(out.events.size())];
      copy.round = rng.below(horizon);
      out.events.push_back(copy);
      break;
    }
    case MutationOp::kDropEvent: {
      if (out.events.size() < 2) {
        return std::nullopt;  // never produce the empty schedule
      }
      const std::size_t idx = rng.below(out.events.size());
      out.events.erase(out.events.begin() +
                       static_cast<std::ptrdiff_t>(idx));
      break;
    }
    case MutationOp::kWidenWindow: {
      const auto idx = pick_where(
          out, rng, [](const FaultEvent& ev) { return has_window(ev.kind); });
      if (!idx.has_value()) {
        return std::nullopt;
      }
      FaultEvent& ev = out.events[*idx];
      ev.duration =
          std::min<std::uint64_t>(horizon, ev.duration + 1 + rng.below(horizon / 4 + 1));
      break;
    }
    case MutationOp::kNarrowWindow: {
      const auto idx = pick_where(out, rng, [](const FaultEvent& ev) {
        return has_window(ev.kind) && ev.duration > 0;
      });
      if (!idx.has_value()) {
        return std::nullopt;
      }
      out.events[*idx].duration /= 2;
      break;
    }
    case MutationOp::kBumpMagnitude: {
      const auto idx = pick_where(
          out, rng, [](const FaultEvent& ev) { return has_magnitude(ev.kind); });
      if (!idx.has_value()) {
        return std::nullopt;
      }
      FaultEvent& ev = out.events[*idx];
      if (ev.kind == EventKind::kCrash) {
        ev.magnitude = static_cast<std::uint32_t>(
            rng.below(std::max<std::uint32_t>(1, shape.crash_processors)));
      } else {
        ev.magnitude =
            1 + static_cast<std::uint32_t>(rng.below(shape.max_magnitude));
      }
      break;
    }
    case MutationOp::kBumpRate: {
      const auto idx = pick_where(
          out, rng, [](const FaultEvent& ev) { return has_rate(ev.kind); });
      if (!idx.has_value()) {
        return std::nullopt;
      }
      // ±10 hundredths around the current rate, clamped into the shape's
      // band — a local nudge, snapped so the grammar round-trips it.
      FaultEvent& ev = out.events[*idx];
      const auto lo = static_cast<std::int64_t>(rate_hundredths(shape.mp_rate_min));
      const auto hi = static_cast<std::int64_t>(rate_hundredths(shape.mp_rate_max));
      const auto cur = static_cast<std::int64_t>(rate_hundredths(ev.rate));
      const std::int64_t delta = static_cast<std::int64_t>(rng.below(21)) - 10;
      ev.rate = static_cast<double>(std::clamp(cur + delta, lo, hi)) / 100.0;
      break;
    }
    case MutationOp::kRetargetKind: {
      if (out.events.empty()) {
        return std::nullopt;
      }
      const std::vector<EventKind> menu = shape_menu(shape);
      const std::size_t idx = rng.below(out.events.size());
      FaultEvent& ev = out.events[idx];
      // Start from a fresh event (keeping only the round) so latent fields
      // of the old kind — a former corrupt's recipe, a former window's rate
      // — don't survive into a kind whose grammar never serializes them,
      // which would break the parse(to_string()) == mutant round-trip.
      FaultEvent fresh;
      fresh.round = ev.round;
      fresh.kind = menu[rng.below(menu.size())];
      redraw_arguments(fresh, shape, rng);
      ev = fresh;
      // Mirror random_schedule: a kill gets a paired restore so mutants do
      // not erode the graph monotonically over a long campaign.
      if (ev.kind == EventKind::kLinkKill && out.events.size() < cap) {
        FaultEvent heal = ev;
        heal.kind = EventKind::kLinkRestore;
        heal.round = ev.round + 1 + rng.below(horizon / 2 + 1);
        out.events.push_back(heal);
      }
      break;
    }
    case MutationOp::kSplice: {
      const std::uint64_t cut = rng.below(horizon);
      FaultSchedule spliced;
      for (const FaultEvent& ev : base.events) {
        if (ev.round <= cut) {
          spliced.events.push_back(ev);
        }
      }
      for (const FaultEvent& ev : mate.events) {
        if (ev.round > cut) {
          spliced.events.push_back(ev);
        }
      }
      if (spliced.events.empty() || spliced.events.size() > cap) {
        return std::nullopt;
      }
      out = std::move(spliced);
      break;
    }
  }
  out.normalize();
  return out;
}

FaultSchedule mutate(const FaultSchedule& base, const FaultSchedule& mate,
                     const CampaignShape& shape, util::Rng& rng) {
  if (base.empty()) {
    // The trivial corpus: nothing to vary yet, bootstrap with a fresh draw.
    return random_schedule(shape, rng);
  }
  // Stack 1..3 edits: single-op mutants hug their parent's behavior too
  // closely in tight shapes, so coverage search stalls on near-duplicates.
  const auto ops = all_mutation_ops();
  const std::size_t edits = 1 + rng.below(3);
  FaultSchedule current = base;
  std::size_t applied = 0;
  for (int attempt = 0; attempt < 16 && applied < edits; ++attempt) {
    const MutationOp op = ops[rng.below(ops.size())];
    auto mutant = apply_mutation(current, mate, op, shape, rng);
    if (mutant.has_value()) {
      current = *std::move(mutant);
      ++applied;
    }
  }
  if (applied == 0) {
    return random_schedule(shape, rng);
  }
  return current;
}

}  // namespace snappif::chaos
