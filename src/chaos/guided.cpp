#include "chaos/guided.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <utility>

#include "chaos/mutate.hpp"
#include "obs/fingerprint.hpp"
#include "par/shard.hpp"
#include "util/assert.hpp"

namespace snappif::chaos {

namespace {

struct SlotOut {
  SoakOutcome outcome;
  obs::Registry metrics;
  std::uint64_t fingerprint = 0;
};

}  // namespace

GuidedReport run_guided(const graph::Graph& g, const GuidedOptions& opts,
                        par::ThreadPool* pool) {
  SNAPPIF_ASSERT_MSG(opts.population > 0, "guided population must be >= 1");
  SNAPPIF_ASSERT_MSG(opts.max_corpus > 0, "guided max_corpus must be >= 1");
  const auto objection = validate(opts.shape);
  SNAPPIF_ASSERT_MSG(!objection.has_value(),
                     ("degenerate campaign shape: " +
                      objection.value_or(std::string{}))
                         .c_str());

  // The per-campaign execution settings; master_seed/campaigns are unused by
  // run_soak_campaign, which only reads shape/campaign/run_mp/emulate.
  SoakOptions soak;
  soak.shape = opts.shape;
  soak.campaign = opts.campaign;
  soak.run_mp = opts.run_mp;
  soak.emulate = opts.emulate;

  // Working corpus: frozen during a generation's fan-out, appended at the
  // fold.  The trivial corpus is one empty schedule — mutate() bootstraps
  // it into fresh random draws.
  std::vector<FaultSchedule> corpus = opts.corpus_in;
  if (corpus.empty()) {
    corpus.emplace_back();
  }

  GuidedReport report;
  std::unordered_set<std::uint64_t> seen;

  // Runs one generation: `count` campaigns, schedules taken verbatim from
  // the corpus when `seed_pass` (generation 0) or mutated from it
  // otherwise.  Folds in slot order; returns after recording stats.
  const auto run_generation = [&](std::uint64_t gen, std::size_t count,
                                  bool seed_pass) {
    const std::uint64_t gen_master = par::shard_seed(opts.master_seed, gen);
    auto slots = par::run_shards(
        gen_master, count,
        [&](par::ShardContext& ctx) {
          SlotOut out;
          SoakJob job;
          if (seed_pass) {
            job.schedule = corpus[ctx.index];
          } else {
            // Frontier bias: half the draws pick a parent from the newest
            // corpus entries — the behaviors discovered most recently are
            // the edge of explored space, and mutating there finds novelty
            // faster than resampling the long-exhausted early corpus.
            const auto pick = [&]() -> const FaultSchedule& {
              if (corpus.size() > 1 && ctx.rng.below(2) == 0) {
                const std::size_t window =
                    std::min<std::size_t>(corpus.size(), 8);
                return corpus[corpus.size() - 1 - ctx.rng.below(window)];
              }
              return corpus[ctx.rng.below(corpus.size())];
            };
            const FaultSchedule& parent = pick();
            const FaultSchedule& mate = pick();
            job.schedule = mutate(parent, mate, opts.shape, ctx.rng);
          }
          job.seed = ctx.rng();
          out.outcome =
              run_soak_campaign(g, soak, job, ctx.index, &out.metrics);
          out.fingerprint = obs::fingerprint(out.metrics);
          return out;
        },
        pool);

    GenerationStats stats;
    stats.generation = gen;
    stats.campaigns = slots.size();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      SlotOut& slot = slots[i];
      report.metrics.merge(slot.metrics);
      ++report.campaigns_run;
      if (seen.insert(slot.fingerprint).second) {
        ++stats.novel;
        if (report.corpus.size() < opts.max_corpus) {
          CorpusEntry entry;
          entry.schedule = slot.outcome.schedule;
          entry.fingerprint = slot.fingerprint;
          entry.generation = gen;
          entry.slot = i;
          corpus.push_back(entry.schedule);
          report.corpus.push_back(std::move(entry));
        } else {
          ++report.corpus_overflow;
        }
      }
      if (!slot.outcome.ok()) {
        ++stats.failures;
        if (slot.outcome.flight != nullptr) {
          // (generation, slot)-order merge: lowest failure's context wins.
          report.flight.merge(*slot.outcome.flight);
        }
        if (!report.first_failure.has_value()) {
          GuidedFailure failure;
          failure.generation = gen;
          failure.slot = i;
          failure.outcome = std::move(slot.outcome);
          report.first_failure = std::move(failure);
        }
      }
    }
    report.generations.push_back(stats);
  };

  run_generation(0, corpus.size(), /*seed_pass=*/true);
  for (std::uint64_t gen = 1;
       gen <= opts.generations && !report.first_failure.has_value(); ++gen) {
    run_generation(gen, opts.population, /*seed_pass=*/false);
  }
  report.unique_fingerprints = seen.size();
  return report;
}

std::string corpus_to_text(const std::vector<CorpusEntry>& corpus) {
  std::string out =
      "# snappif guided corpus: one fault-schedule grammar line per entry,\n"
      "# '-' = empty schedule, '#' comments ignored.\n";
  for (const CorpusEntry& entry : corpus) {
    char meta[96];
    std::snprintf(meta, sizeof(meta), "# fp=%016llx gen=%llu slot=%llu\n",
                  static_cast<unsigned long long>(entry.fingerprint),
                  static_cast<unsigned long long>(entry.generation),
                  static_cast<unsigned long long>(entry.slot));
    out += meta;
    out += entry.schedule.empty() ? std::string("-")
                                  : entry.schedule.to_string();
    out += '\n';
  }
  return out;
}

std::optional<std::vector<FaultSchedule>> corpus_from_text(
    std::string_view text, std::string* error) {
  std::vector<FaultSchedule> corpus;
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const std::size_t eol = text.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view{}
                                         : text.substr(eol + 1);
    // Trim ASCII whitespace.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t' ||
                             line.front() == '\r')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') {
      continue;
    }
    if (line == "-") {
      corpus.emplace_back();
      continue;
    }
    ParseError perr;
    auto schedule = FaultSchedule::parse(line, &perr);
    if (!schedule.has_value()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + perr.to_string();
      }
      return std::nullopt;
    }
    corpus.push_back(*std::move(schedule));
  }
  return corpus;
}

}  // namespace snappif::chaos
