#include "chaos/mp_campaign.hpp"

#include <algorithm>
#include <vector>

#include "graph/properties.hpp"
#include "mp/network.hpp"
#include "mp/repeated_pif.hpp"
#include "util/assert.hpp"

namespace snappif::chaos {

namespace {

/// An active fault window on the campaign clock: [begin, end).
struct Window {
  EventKind kind;
  std::uint64_t begin;
  std::uint64_t end;
  double rate;
};

void record_telemetry(obs::Registry* registry, const MpCampaignResult& result) {
  if (registry == nullptr) {
    return;
  }
  obs::Registry& reg = *registry;
  reg.counter("chaos.mp.campaigns").inc();
  if (!result.ok()) {
    reg.counter("chaos.mp.campaigns_failed").inc();
  }
  reg.counter("chaos.mp.messages_dropped").inc(result.messages_dropped);
  reg.counter("chaos.mp.messages_duplicated").inc(result.messages_duplicated);
  reg.counter("chaos.mp.messages_reordered").inc(result.messages_reordered);
  reg.counter("chaos.mp.waves_started").inc(result.waves_started);
  if (result.recovered) {
    reg.stats("chaos.mp.rounds_to_recover")
        .add(static_cast<double>(result.rounds_to_recover));
    obs::Gauge& worst = reg.gauge("chaos.mp.worst_recovery_rounds");
    worst.set(std::max(worst.value(),
                       static_cast<double>(result.rounds_to_recover)));
  }
}

}  // namespace

MpCampaignResult run_mp_campaign(const graph::Graph& g,
                                 const FaultSchedule& schedule,
                                 const MpCampaignOptions& opts) {
  SNAPPIF_ASSERT_MSG(graph::is_connected(g),
                     "mp campaign graph must be connected");
  SNAPPIF_ASSERT(opts.root < g.n());
  MpCampaignResult result;

  std::vector<Window> windows;
  for (const FaultEvent& ev : schedule.events) {
    switch (ev.kind) {
      case EventKind::kMpLoss:
      case EventKind::kMpDuplicate:
      case EventKind::kMpReorder:
        // duration 0 means "at least this round".
        windows.push_back({ev.kind, ev.round,
                           ev.round + std::max<std::uint64_t>(ev.duration, 1),
                           ev.rate});
        break;
      default:
        ++result.events_skipped;  // shared-memory kinds; see campaign.hpp
        break;
    }
  }
  result.windows_applied = windows.size();
  std::uint64_t quiet = 0;
  for (const Window& w : windows) {
    quiet = std::max(quiet, w.end);
  }
  result.quiet_round = quiet;

  mp::RepeatedPifProtocol proto(g, opts.root);
  mp::Network net(g, proto, mp::Delivery::kSynchronous, opts.seed);
  net.start();

  // The campaign clock is a local counter: one iteration = one synchronous
  // round, whether or not anything was in flight.  (net.rounds() stalls when
  // total loss empties the channels, which would freeze window expiry.)
  std::uint64_t round = 0;
  std::uint64_t wave_payload = 0;

  const auto set_rates = [&]() {
    double loss = 0.0;
    double dup = 0.0;
    double reorder = 0.0;
    for (const Window& w : windows) {
      if (round < w.begin || round >= w.end) {
        continue;
      }
      switch (w.kind) {
        case EventKind::kMpLoss:
          loss = std::max(loss, w.rate);
          break;
        case EventKind::kMpDuplicate:
          dup = std::max(dup, w.rate);
          break;
        default:
          reorder = std::max(reorder, w.rate);
          break;
      }
    }
    net.set_loss_rate(loss);
    net.set_duplication_rate(dup);
    net.set_reorder_rate(reorder);
  };

  const auto finish = [&](MpCampaignResult& r) {
    r.messages_dropped = net.messages_dropped();
    r.messages_duplicated = net.messages_duplicated();
    r.messages_reordered = net.messages_reordered();
    r.waves_started = proto.waves_started();
    r.waves_ok = proto.waves_ok();
    record_telemetry(opts.registry, r);
    return r;
  };

  // Fault phase: the root keeps the classic repeated-PIF usage — start a new
  // wave whenever the network quiesces (which is also how a fully-dropped
  // wave gets superseded).
  while (round < quiet) {
    if (round >= opts.max_rounds) {
      result.failure = "fault phase exceeded max_rounds";
      return finish(result);
    }
    set_rates();
    if (net.in_flight() == 0) {
      proto.start_wave(net, ++wave_payload);
    }
    net.step();
    ++round;
  }
  result.completed = true;

  // Recovery oracle: channels are reliable again; a wave observed fully
  // correct (waves_ok advances) must appear within the wave/round budgets.
  net.set_loss_rate(0.0);
  net.set_duplication_rate(0.0);
  net.set_reorder_rate(0.0);
  const std::uint64_t quiet_start = round;
  const std::uint64_t ok_at_quiet = proto.waves_ok();
  std::uint64_t fresh_waves = 0;
  while (true) {
    if (proto.waves_ok() > ok_at_quiet) {
      result.recovered = true;
      result.rounds_to_recover = round - quiet_start;
      result.waves_to_recover = fresh_waves;
      break;
    }
    if (round - quiet_start >= opts.recovery_round_budget ||
        round >= opts.max_rounds) {
      result.failure = "no correct wave within " +
                       std::to_string(opts.recovery_round_budget) +
                       " post-quiet rounds";
      break;
    }
    if (net.in_flight() == 0) {
      if (fresh_waves >= opts.recovery_wave_budget) {
        result.failure = "no correct wave within " +
                         std::to_string(opts.recovery_wave_budget) +
                         " post-quiet waves";
        break;
      }
      ++fresh_waves;
      proto.start_wave(net, ++wave_payload);
    }
    net.step();
    ++round;
  }
  return finish(result);
}

}  // namespace snappif::chaos
