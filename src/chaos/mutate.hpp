// Seeded FaultSchedule mutation operators: the variation half of the
// coverage-guided fuzzer (chaos/guided.hpp).
//
// Random schedules sample the adversary space thinly — the E19 deadlock
// lived in a narrow corner (back-to-back neighbor crashes) that uniform
// draws rarely hit.  Mutation searches *around* schedules that already
// produced interesting behavior: small, local edits that keep a schedule
// recognizable while nudging it toward neighboring corners.
//
// Every operator guarantees two invariants the rest of the pipeline leans
// on:
//   * shape-validity — mutants stay inside the CampaignShape envelope
//     (rounds < horizon, magnitudes in [1, max_magnitude], rates snapped to
//     hundredths inside [mp_rate_min, mp_rate_max], durations bounded by
//     the horizon, never empty, length-capped at max_events());
//   * grammar round-trip — FaultSchedule::parse(m.to_string()) == m, so
//     every corpus entry serializes to a one-line reproducer and replays
//     bit-exactly (guided corpora are plain text files of these lines).
//
// Operators are pure in (base, mate, shape, rng): the guided engine derives
// one Rng per population slot from the master seed, which keeps the whole
// generation deterministic for any worker count.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "chaos/schedule.hpp"
#include "util/rng.hpp"

namespace snappif::chaos {

enum class MutationOp : std::uint8_t {
  kShiftEvent,      // move one event to a fresh round in [0, horizon)
  kDuplicateEvent,  // clone one event onto a fresh round
  kDropEvent,       // remove one event (refused when it would empty the schedule)
  kWidenWindow,     // grow a duration-bearing event's window (capped at horizon)
  kNarrowWindow,    // halve a duration-bearing event's window
  kBumpMagnitude,   // re-draw a magnitude / crash processor inside the shape
  kBumpRate,        // nudge a window rate by up to ±0.10, snapped to hundredths
  kRetargetKind,    // re-draw an event's kind (and arguments) from the menu
  kSplice,          // events of `base` up to a cut round + events of `mate` after it
};

[[nodiscard]] constexpr std::array<MutationOp, 9> all_mutation_ops() {
  return {MutationOp::kShiftEvent,    MutationOp::kDuplicateEvent,
          MutationOp::kDropEvent,     MutationOp::kWidenWindow,
          MutationOp::kNarrowWindow,  MutationOp::kBumpMagnitude,
          MutationOp::kBumpRate,      MutationOp::kRetargetKind,
          MutationOp::kSplice};
}

[[nodiscard]] std::string_view mutation_op_name(MutationOp op);

/// Hard ceiling on mutant length for `shape` (duplicate/splice grow
/// schedules; unbounded growth would turn campaigns into unbounded work).
[[nodiscard]] constexpr std::size_t max_events(const CampaignShape& shape) {
  return static_cast<std::size_t>(shape.events) * 4 + 8;
}

/// Applies one operator to `base` (`mate` is consulted only by kSplice).
/// Returns nullopt when the operator does not apply (no eligible event, the
/// result would be empty or over the length cap).  The shape must validate.
[[nodiscard]] std::optional<FaultSchedule> apply_mutation(
    const FaultSchedule& base, const FaultSchedule& mate, MutationOp op,
    const CampaignShape& shape, util::Rng& rng);

/// Stacks 1..3 applicable operators onto `base` (bounded retries) and
/// returns the mutant — single edits hug the parent's behavior too closely
/// for coverage search.  An empty `base` — the trivial corpus — and the
/// rare case where no operator applies both fall back to a fresh
/// random_schedule, so mutate never returns an empty or invalid schedule.
[[nodiscard]] FaultSchedule mutate(const FaultSchedule& base,
                                   const FaultSchedule& mate,
                                   const CampaignShape& shape, util::Rng& rng);

}  // namespace snappif::chaos
