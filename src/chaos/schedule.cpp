#include "chaos/schedule.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace snappif::chaos {

namespace {

struct KindName {
  EventKind kind;
  std::string_view name;
};

constexpr KindName kKindNames[] = {
    {EventKind::kBurst, "burst"},
    {EventKind::kCorrupt, "corrupt"},
    {EventKind::kDaemonSwap, "daemon"},
    {EventKind::kLinkKill, "kill"},
    {EventKind::kLinkRestore, "restore"},
    {EventKind::kMpLoss, "loss"},
    {EventKind::kMpDuplicate, "dup"},
    {EventKind::kMpReorder, "reorder"},
    {EventKind::kCrash, "crash"},
};

[[nodiscard]] bool kind_by_name(std::string_view name, EventKind* out) {
  for (const KindName& entry : kKindNames) {
    if (entry.name == name) {
      *out = entry.kind;
      return true;
    }
  }
  return false;
}

[[nodiscard]] bool parse_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  std::uint64_t value = 0;
  for (char ch : text) {
    if (ch < '0' || ch > '9') {
      return false;
    }
    value = value * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  *out = value;
  return true;
}

[[nodiscard]] bool parse_rate(std::string_view text, double* out) {
  if (text.empty()) {
    return false;
  }
  const std::string owned(text);
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) {
    return false;
  }
  if (!(value >= 0.0 && value <= 1.0)) {  // also rejects NaN
    return false;
  }
  *out = value;
  return true;
}

/// Formats a rate with enough precision to roundtrip typical hand-written
/// values ("0.25") without trailing-zero noise.
[[nodiscard]] std::string format_rate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", rate);
  return buf;
}

}  // namespace

std::string_view event_kind_name(EventKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) {
      return entry.name;
    }
  }
  return "?";
}

std::string FaultEvent::to_string() const {
  std::string out = std::to_string(round);
  out += ':';
  out += event_kind_name(kind);
  switch (kind) {
    case EventKind::kBurst:
    case EventKind::kLinkKill:
    case EventKind::kLinkRestore:
      out += '*';
      out += std::to_string(magnitude);
      break;
    case EventKind::kCorrupt:
      out += '=';
      out += pif::corruption_name(corruption);
      break;
    case EventKind::kDaemonSwap:
      out += '=';
      out += sim::daemon_kind_name(daemon);
      break;
    case EventKind::kMpLoss:
    case EventKind::kMpDuplicate:
    case EventKind::kMpReorder:
      out += '@';
      out += format_rate(rate);
      out += '/';
      out += std::to_string(duration);
      break;
    case EventKind::kCrash:
      out += '(';
      out += std::to_string(magnitude);
      out += ',';
      out += std::to_string(duration);
      out += ',';
      out += crash_corrupt ? "corrupt" : "reset";
      out += ')';
      break;
  }
  return out;
}

std::optional<FaultEvent> FaultEvent::parse(std::string_view text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) {
    return std::nullopt;
  }
  FaultEvent ev;
  if (!parse_u64(text.substr(0, colon), &ev.round)) {
    return std::nullopt;
  }
  std::string_view body = text.substr(colon + 1);

  const std::size_t arg = body.find_first_of("*=@(");
  const std::string_view name =
      arg == std::string_view::npos ? body : body.substr(0, arg);
  if (!kind_by_name(name, &ev.kind)) {
    return std::nullopt;
  }

  switch (ev.kind) {
    case EventKind::kBurst:
    case EventKind::kLinkKill:
    case EventKind::kLinkRestore: {
      if (arg == std::string_view::npos) {
        ev.magnitude = 1;
        return ev;
      }
      if (body[arg] != '*') {
        return std::nullopt;
      }
      std::uint64_t magnitude = 0;
      if (!parse_u64(body.substr(arg + 1), &magnitude) || magnitude == 0 ||
          magnitude > 0xffffffffULL) {
        return std::nullopt;
      }
      ev.magnitude = static_cast<std::uint32_t>(magnitude);
      return ev;
    }
    case EventKind::kCorrupt: {
      if (arg == std::string_view::npos || body[arg] != '=') {
        return std::nullopt;
      }
      const std::string_view which = body.substr(arg + 1);
      for (pif::CorruptionKind kind : pif::all_corruption_kinds()) {
        if (which == pif::corruption_name(kind)) {
          ev.corruption = kind;
          return ev;
        }
      }
      return std::nullopt;
    }
    case EventKind::kDaemonSwap: {
      if (arg == std::string_view::npos || body[arg] != '=') {
        return std::nullopt;
      }
      const std::string_view which = body.substr(arg + 1);
      for (sim::DaemonKind kind : sim::standard_daemon_kinds()) {
        if (which == sim::daemon_kind_name(kind)) {
          ev.daemon = kind;
          return ev;
        }
      }
      return std::nullopt;
    }
    case EventKind::kMpLoss:
    case EventKind::kMpDuplicate:
    case EventKind::kMpReorder: {
      if (arg == std::string_view::npos || body[arg] != '@') {
        return std::nullopt;
      }
      const std::string_view tail = body.substr(arg + 1);
      const std::size_t slash = tail.find('/');
      if (slash == std::string_view::npos) {
        return std::nullopt;
      }
      if (!parse_rate(tail.substr(0, slash), &ev.rate) ||
          !parse_u64(tail.substr(slash + 1), &ev.duration)) {
        return std::nullopt;
      }
      return ev;
    }
    case EventKind::kCrash: {
      // crash(p,dur,reset|corrupt)
      if (arg == std::string_view::npos || body[arg] != '(' ||
          body.back() != ')') {
        return std::nullopt;
      }
      std::string_view inner = body.substr(arg + 1, body.size() - arg - 2);
      const std::size_t c1 = inner.find(',');
      if (c1 == std::string_view::npos) {
        return std::nullopt;
      }
      const std::size_t c2 = inner.find(',', c1 + 1);
      if (c2 == std::string_view::npos) {
        return std::nullopt;
      }
      std::uint64_t processor = 0;
      if (!parse_u64(inner.substr(0, c1), &processor) ||
          processor > 0xffffffffULL ||
          !parse_u64(inner.substr(c1 + 1, c2 - c1 - 1), &ev.duration)) {
        return std::nullopt;
      }
      ev.magnitude = static_cast<std::uint32_t>(processor);
      const std::string_view mode = inner.substr(c2 + 1);
      if (mode == "reset") {
        ev.crash_corrupt = false;
      } else if (mode == "corrupt") {
        ev.crash_corrupt = true;
      } else {
        return std::nullopt;
      }
      return ev;
    }
  }
  return std::nullopt;
}

void FaultSchedule::normalize() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.round < b.round;
                   });
}

bool FaultSchedule::contains(EventKind kind) const {
  for (const FaultEvent& ev : events) {
    if (ev.kind == kind) {
      return true;
    }
  }
  return false;
}

std::uint64_t FaultSchedule::quiet_round() const {
  std::uint64_t quiet = 0;
  for (const FaultEvent& ev : events) {
    quiet = std::max(quiet, ev.round + ev.duration);
  }
  return quiet;
}

std::string FaultSchedule::to_string() const {
  std::string out;
  for (const FaultEvent& ev : events) {
    if (!out.empty()) {
      out += ';';
    }
    out += ev.to_string();
  }
  return out;
}

std::optional<FaultSchedule> FaultSchedule::parse(std::string_view text) {
  FaultSchedule schedule;
  while (!text.empty()) {
    const std::size_t semi = text.find(';');
    const std::string_view piece =
        semi == std::string_view::npos ? text : text.substr(0, semi);
    text = semi == std::string_view::npos ? std::string_view{}
                                          : text.substr(semi + 1);
    if (piece.empty()) {
      continue;  // tolerate trailing/double separators
    }
    const auto ev = FaultEvent::parse(piece);
    if (!ev.has_value()) {
      return std::nullopt;
    }
    schedule.events.push_back(*ev);
  }
  schedule.normalize();
  return schedule;
}

FaultSchedule random_schedule(const CampaignShape& shape, util::Rng& rng) {
  FaultSchedule schedule;
  std::vector<EventKind> menu;
  if (shape.shared_memory) {
    menu.insert(menu.end(), {EventKind::kBurst, EventKind::kCorrupt,
                             EventKind::kDaemonSwap, EventKind::kLinkKill});
  }
  if (shape.message_passing) {
    menu.insert(menu.end(), {EventKind::kMpLoss, EventKind::kMpDuplicate,
                             EventKind::kMpReorder});
    if (shape.crash) {
      menu.push_back(EventKind::kCrash);
    }
  }
  if (menu.empty() || shape.events == 0) {
    return schedule;
  }
  const std::uint64_t horizon = std::max<std::uint64_t>(1, shape.horizon_rounds);
  for (std::uint32_t i = 0; i < shape.events; ++i) {
    FaultEvent ev;
    ev.round = rng.below(horizon);
    ev.kind = menu[rng.below(menu.size())];
    switch (ev.kind) {
      case EventKind::kBurst:
      case EventKind::kLinkKill:
        ev.magnitude = 1 + static_cast<std::uint32_t>(
                               rng.below(std::max<std::uint32_t>(1, shape.max_magnitude)));
        break;
      case EventKind::kCorrupt: {
        const auto kinds = pif::all_corruption_kinds();
        ev.corruption = kinds[rng.below(kinds.size())];
        break;
      }
      case EventKind::kDaemonSwap: {
        const auto kinds = sim::standard_daemon_kinds();
        ev.daemon = kinds[rng.below(kinds.size())];
        break;
      }
      case EventKind::kMpLoss:
      case EventKind::kMpDuplicate:
      case EventKind::kMpReorder:
        // Hundredths so to_string/parse replays the exact schedule.
        ev.rate = static_cast<double>(5 + rng.below(46)) / 100.0;
        ev.duration = 1 + rng.below(horizon / 4 + 1);
        break;
      case EventKind::kCrash:
        ev.magnitude = static_cast<std::uint32_t>(
            rng.below(std::max<std::uint32_t>(1, shape.crash_processors)));
        ev.duration = 1 + rng.below(horizon / 6 + 1);
        ev.crash_corrupt = rng.below(2) == 1;
        break;
      case EventKind::kLinkRestore:
        break;  // unreachable: restores are only paired below
    }
    schedule.events.push_back(ev);
    // Pair every kill with a restore so the graph does not erode forever;
    // the restore lands strictly later, still inside the campaign.
    if (ev.kind == EventKind::kLinkKill) {
      FaultEvent heal = ev;
      heal.kind = EventKind::kLinkRestore;
      heal.round = ev.round + 1 + rng.below(horizon / 2 + 1);
      schedule.events.push_back(heal);
    }
  }
  schedule.normalize();
  return schedule;
}

}  // namespace snappif::chaos
