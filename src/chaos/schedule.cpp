#include "chaos/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"

namespace snappif::chaos {

namespace {

struct KindName {
  EventKind kind;
  std::string_view name;
};

constexpr KindName kKindNames[] = {
    {EventKind::kBurst, "burst"},
    {EventKind::kCorrupt, "corrupt"},
    {EventKind::kDaemonSwap, "daemon"},
    {EventKind::kLinkKill, "kill"},
    {EventKind::kLinkRestore, "restore"},
    {EventKind::kMpLoss, "loss"},
    {EventKind::kMpDuplicate, "dup"},
    {EventKind::kMpReorder, "reorder"},
    {EventKind::kCrash, "crash"},
    {EventKind::kTransportLoss, "tloss"},
    {EventKind::kTransportDuplicate, "tdup"},
    {EventKind::kTransportReorder, "treorder"},
    {EventKind::kTransportDelay, "tdelay"},
    {EventKind::kTransportPartition, "tpart"},
};

[[nodiscard]] bool kind_by_name(std::string_view name, EventKind* out) {
  for (const KindName& entry : kKindNames) {
    if (entry.name == name) {
      *out = entry.kind;
      return true;
    }
  }
  return false;
}

[[nodiscard]] bool parse_u64(std::string_view text, std::uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  std::uint64_t value = 0;
  for (char ch : text) {
    if (ch < '0' || ch > '9') {
      return false;
    }
    value = value * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  *out = value;
  return true;
}

[[nodiscard]] bool parse_rate(std::string_view text, double* out) {
  if (text.empty()) {
    return false;
  }
  const std::string owned(text);
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size()) {
    return false;
  }
  if (!(value >= 0.0 && value <= 1.0)) {  // also rejects NaN
    return false;
  }
  *out = value;
  return true;
}

/// Formats a rate with enough precision to roundtrip typical hand-written
/// values ("0.25") without trailing-zero noise.
[[nodiscard]] std::string format_rate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", rate);
  return buf;
}

/// Fills `error` (when requested) and reads as `return fail(...)` at the
/// parse failure sites.
[[nodiscard]] std::nullopt_t fail(ParseError* error, std::size_t position,
                                  std::string_view token, std::string message) {
  if (error != nullptr) {
    error->position = position;
    error->token = std::string(token);
    error->message = std::move(message);
  }
  return std::nullopt;
}

}  // namespace

std::string ParseError::to_string() const {
  std::string out = "offset " + std::to_string(position) + ": " + message;
  if (!token.empty()) {
    out += " '" + token + "'";
  }
  return out;
}

std::string_view event_kind_name(EventKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) {
      return entry.name;
    }
  }
  return "?";
}

std::string FaultEvent::to_string() const {
  std::string out = std::to_string(round);
  out += ':';
  out += event_kind_name(kind);
  switch (kind) {
    case EventKind::kBurst:
    case EventKind::kLinkKill:
    case EventKind::kLinkRestore:
      out += '*';
      out += std::to_string(magnitude);
      break;
    case EventKind::kCorrupt:
      out += '=';
      out += pif::corruption_name(corruption);
      break;
    case EventKind::kDaemonSwap:
      out += '=';
      out += sim::daemon_kind_name(daemon);
      break;
    case EventKind::kMpLoss:
    case EventKind::kMpDuplicate:
    case EventKind::kMpReorder:
    case EventKind::kTransportLoss:
    case EventKind::kTransportDuplicate:
    case EventKind::kTransportReorder:
      out += '@';
      out += format_rate(rate);
      out += '/';
      out += std::to_string(duration);
      break;
    case EventKind::kTransportDelay:
      out += '@';
      out += format_rate(rate);
      out += '/';
      out += std::to_string(duration);
      out += '*';
      out += std::to_string(magnitude);
      break;
    case EventKind::kTransportPartition:
      out += '(';
      out += std::to_string(magnitude);
      out += ',';
      out += std::to_string(duration);
      out += ')';
      break;
    case EventKind::kCrash:
      out += '(';
      out += std::to_string(magnitude);
      out += ',';
      out += std::to_string(duration);
      out += ',';
      out += crash_corrupt ? "corrupt" : "reset";
      out += ')';
      break;
  }
  return out;
}

std::optional<FaultEvent> FaultEvent::parse(std::string_view text,
                                            ParseError* error) {
  if (text.empty()) {
    return fail(error, 0, "", "empty event");
  }
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) {
    return fail(error, 0, text, "missing ':' after round in");
  }
  FaultEvent ev;
  if (!parse_u64(text.substr(0, colon), &ev.round)) {
    return fail(error, 0, text.substr(0, colon), "bad round");
  }
  std::string_view body = text.substr(colon + 1);
  const std::size_t body_at = colon + 1;  // offset of `body` within `text`

  const std::size_t arg = body.find_first_of("*=@(");
  const std::string_view name =
      arg == std::string_view::npos ? body : body.substr(0, arg);
  if (!kind_by_name(name, &ev.kind)) {
    return fail(error, body_at, name, "unknown event kind");
  }

  switch (ev.kind) {
    case EventKind::kBurst:
    case EventKind::kLinkKill:
    case EventKind::kLinkRestore: {
      if (arg == std::string_view::npos) {
        ev.magnitude = 1;
        return ev;
      }
      if (body[arg] != '*') {
        return fail(error, body_at + arg, body.substr(arg, 1),
                    "expected '*' before magnitude, got");
      }
      std::uint64_t magnitude = 0;
      if (!parse_u64(body.substr(arg + 1), &magnitude) || magnitude == 0 ||
          magnitude > 0xffffffffULL) {
        return fail(error, body_at + arg + 1, body.substr(arg + 1),
                    "bad magnitude (want 1..2^32-1)");
      }
      ev.magnitude = static_cast<std::uint32_t>(magnitude);
      return ev;
    }
    case EventKind::kCorrupt: {
      if (arg == std::string_view::npos || body[arg] != '=') {
        return fail(error, body_at + name.size(), "",
                    "corrupt needs '=recipe'");
      }
      const std::string_view which = body.substr(arg + 1);
      for (pif::CorruptionKind kind : pif::all_corruption_kinds()) {
        if (which == pif::corruption_name(kind)) {
          ev.corruption = kind;
          return ev;
        }
      }
      return fail(error, body_at + arg + 1, which, "unknown corruption recipe");
    }
    case EventKind::kDaemonSwap: {
      if (arg == std::string_view::npos || body[arg] != '=') {
        return fail(error, body_at + name.size(), "", "daemon needs '=kind'");
      }
      const std::string_view which = body.substr(arg + 1);
      for (sim::DaemonKind kind : sim::standard_daemon_kinds()) {
        if (which == sim::daemon_kind_name(kind)) {
          ev.daemon = kind;
          return ev;
        }
      }
      return fail(error, body_at + arg + 1, which, "unknown daemon kind");
    }
    case EventKind::kMpLoss:
    case EventKind::kMpDuplicate:
    case EventKind::kMpReorder:
    case EventKind::kTransportLoss:
    case EventKind::kTransportDuplicate:
    case EventKind::kTransportReorder:
    case EventKind::kTransportDelay: {
      if (arg == std::string_view::npos || body[arg] != '@') {
        return fail(error, body_at + name.size(), "",
                    ev.kind == EventKind::kTransportDelay
                        ? "window needs '@rate/duration*steps'"
                        : "window needs '@rate/duration'");
      }
      std::string_view tail = body.substr(arg + 1);
      const std::size_t tail_at = body_at + arg + 1;
      // tdelay carries a third argument: the per-frame hold in steps.
      if (ev.kind == EventKind::kTransportDelay) {
        const std::size_t star = tail.rfind('*');
        if (star == std::string_view::npos) {
          return fail(error, tail_at, tail,
                      "tdelay needs '*steps' after the window in");
        }
        const std::string_view steps_text = tail.substr(star + 1);
        std::uint64_t steps = 0;
        // parse_u64 rejects any sign, so "-2" (and "nan") land here with
        // the offset of the steps token.
        if (!parse_u64(steps_text, &steps) || steps == 0 ||
            steps > 0xffffffffULL) {
          return fail(error, tail_at + star + 1, steps_text,
                      "bad delay steps (want an integer in 1..2^32-1)");
        }
        ev.magnitude = static_cast<std::uint32_t>(steps);
        tail = tail.substr(0, star);
      }
      const std::size_t slash = tail.find('/');
      if (slash == std::string_view::npos) {
        return fail(error, tail_at, tail,
                    "window needs '/duration' after rate in");
      }
      if (!parse_rate(tail.substr(0, slash), &ev.rate)) {
        return fail(error, tail_at, tail.substr(0, slash),
                    "bad rate (want a number in [0,1])");
      }
      if (!parse_u64(tail.substr(slash + 1), &ev.duration)) {
        return fail(error, tail_at + slash + 1,
                    tail.substr(slash + 1), "bad window duration");
      }
      return ev;
    }
    case EventKind::kTransportPartition: {
      // tpart(p,dur)
      if (arg == std::string_view::npos || body[arg] != '(' ||
          body.back() != ')') {
        return fail(error, body_at + name.size(), body.substr(name.size()),
                    "tpart needs '(processor,duration)', got");
      }
      const std::string_view inner =
          body.substr(arg + 1, body.size() - arg - 2);
      const std::size_t inner_at = body_at + arg + 1;
      const std::size_t comma = inner.find(',');
      if (comma == std::string_view::npos) {
        return fail(error, inner_at, inner,
                    "tpart needs two ','-separated arguments, got");
      }
      std::uint64_t processor = 0;
      if (!parse_u64(inner.substr(0, comma), &processor) ||
          processor > 0xffffffffULL) {
        return fail(error, inner_at, inner.substr(0, comma),
                    "bad partition processor (want 0..2^32-1)");
      }
      ev.magnitude = static_cast<std::uint32_t>(processor);
      if (!parse_u64(inner.substr(comma + 1), &ev.duration)) {
        return fail(error, inner_at + comma + 1, inner.substr(comma + 1),
                    "bad partition duration");
      }
      return ev;
    }
    case EventKind::kCrash: {
      // crash(p,dur,reset|corrupt)
      if (arg == std::string_view::npos || body[arg] != '(' ||
          body.back() != ')') {
        return fail(error, body_at + name.size(), body.substr(name.size()),
                    "crash needs '(processor,duration,reset|corrupt)', got");
      }
      std::string_view inner = body.substr(arg + 1, body.size() - arg - 2);
      const std::size_t inner_at = body_at + arg + 1;
      const std::size_t c1 = inner.find(',');
      const std::size_t c2 =
          c1 == std::string_view::npos ? c1 : inner.find(',', c1 + 1);
      if (c1 == std::string_view::npos || c2 == std::string_view::npos) {
        return fail(error, inner_at, inner,
                    "crash needs three ','-separated arguments, got");
      }
      std::uint64_t processor = 0;
      if (!parse_u64(inner.substr(0, c1), &processor) ||
          processor > 0xffffffffULL) {
        return fail(error, inner_at, inner.substr(0, c1),
                    "bad crash processor (want 0..2^32-1)");
      }
      if (!parse_u64(inner.substr(c1 + 1, c2 - c1 - 1), &ev.duration)) {
        return fail(error, inner_at + c1 + 1, inner.substr(c1 + 1, c2 - c1 - 1),
                    "bad crash duration");
      }
      ev.magnitude = static_cast<std::uint32_t>(processor);
      const std::string_view mode = inner.substr(c2 + 1);
      if (mode == "reset") {
        ev.crash_corrupt = false;
      } else if (mode == "corrupt") {
        ev.crash_corrupt = true;
      } else {
        return fail(error, inner_at + c2 + 1, mode,
                    "crash recovery mode must be reset|corrupt, got");
      }
      return ev;
    }
  }
  return fail(error, 0, text, "unparseable event");
}

void FaultSchedule::normalize() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.round < b.round;
                   });
}

bool FaultSchedule::contains(EventKind kind) const {
  for (const FaultEvent& ev : events) {
    if (ev.kind == kind) {
      return true;
    }
  }
  return false;
}

bool FaultSchedule::contains_transport() const {
  for (const FaultEvent& ev : events) {
    switch (ev.kind) {
      case EventKind::kTransportLoss:
      case EventKind::kTransportDuplicate:
      case EventKind::kTransportReorder:
      case EventKind::kTransportDelay:
      case EventKind::kTransportPartition:
        return true;
      default:
        break;
    }
  }
  return false;
}

std::uint64_t FaultSchedule::quiet_round() const {
  std::uint64_t quiet = 0;
  for (const FaultEvent& ev : events) {
    quiet = std::max(quiet, ev.round + ev.duration);
  }
  return quiet;
}

std::string FaultSchedule::to_string() const {
  std::string out;
  for (const FaultEvent& ev : events) {
    if (!out.empty()) {
      out += ';';
    }
    out += ev.to_string();
  }
  return out;
}

std::optional<FaultSchedule> FaultSchedule::parse(std::string_view text,
                                                  ParseError* error) {
  FaultSchedule schedule;
  std::size_t consumed = 0;
  while (consumed < text.size()) {
    const std::size_t semi = text.find(';', consumed);
    const std::string_view piece =
        text.substr(consumed, semi == std::string_view::npos
                                  ? std::string_view::npos
                                  : semi - consumed);
    const std::size_t piece_at = consumed;
    consumed = semi == std::string_view::npos ? text.size() : semi + 1;
    if (piece.empty()) {
      continue;  // tolerate trailing/double separators
    }
    const auto ev = FaultEvent::parse(piece, error);
    if (!ev.has_value()) {
      if (error != nullptr) {
        error->position += piece_at;  // re-base onto the full line
      }
      return std::nullopt;
    }
    schedule.events.push_back(*ev);
  }
  schedule.normalize();
  return schedule;
}

std::optional<std::string> validate(const CampaignShape& shape) {
  if (shape.events == 0) {
    return "shape draws zero events (events must be >= 1)";
  }
  if (shape.horizon_rounds == 0) {
    return "shape has a zero-round horizon (horizon_rounds must be >= 1)";
  }
  if (shape.max_magnitude == 0) {
    return "shape caps magnitudes at zero (max_magnitude must be >= 1)";
  }
  if (!shape.shared_memory && !shape.message_passing) {
    return "shape enables no event kinds (need shared_memory and/or "
           "message_passing)";
  }
  // The comparisons are written to also reject NaN bounds (any comparison
  // with NaN is false).
  if (!(shape.mp_rate_min >= 0.0 && shape.mp_rate_min <= 1.0)) {
    return "mp_rate_min is NaN or outside [0,1]";
  }
  if (!(shape.mp_rate_max >= shape.mp_rate_min && shape.mp_rate_max <= 1.0)) {
    return "mp_rate_max is NaN, below mp_rate_min, or above 1";
  }
  if (shape.crash && shape.crash_processors == 0) {
    return "crash windows enabled with zero crash_processors";
  }
  if (shape.transport && !shape.message_passing) {
    return "transport impairments need message_passing (the shim lives "
           "under the mp link)";
  }
  if (shape.transport && shape.max_delay_steps == 0) {
    return "transport delay enabled with zero max_delay_steps";
  }
  if (shape.transport && shape.crash_processors == 0) {
    return "transport partitions enabled with zero crash_processors";
  }
  return std::nullopt;
}

namespace {

/// Window rates snapped to hundredths inside the shape's bounds, so
/// to_string/parse replays the exact schedule.
[[nodiscard]] double draw_rate(const CampaignShape& shape, util::Rng& rng) {
  const auto lo = static_cast<std::uint64_t>(std::lround(shape.mp_rate_min * 100.0));
  const auto hi = static_cast<std::uint64_t>(std::lround(shape.mp_rate_max * 100.0));
  return static_cast<double>(lo + rng.below(hi - lo + 1)) / 100.0;
}

}  // namespace

FaultSchedule random_schedule(const CampaignShape& shape, util::Rng& rng) {
  const auto objection = validate(shape);
  SNAPPIF_ASSERT_MSG(!objection.has_value(),
                     ("degenerate campaign shape: " +
                      objection.value_or(std::string{}))
                         .c_str());
  FaultSchedule schedule;
  std::vector<EventKind> menu;
  if (shape.shared_memory) {
    menu.insert(menu.end(), {EventKind::kBurst, EventKind::kCorrupt,
                             EventKind::kDaemonSwap, EventKind::kLinkKill});
  }
  if (shape.message_passing) {
    menu.insert(menu.end(), {EventKind::kMpLoss, EventKind::kMpDuplicate,
                             EventKind::kMpReorder});
    if (shape.crash) {
      menu.push_back(EventKind::kCrash);
    }
    // Appended AFTER the crash entry: a transport-less shape keeps its
    // exact menu layout, so existing seeds replay unchanged.
    if (shape.transport) {
      menu.insert(menu.end(),
                  {EventKind::kTransportLoss, EventKind::kTransportDuplicate,
                   EventKind::kTransportReorder, EventKind::kTransportDelay,
                   EventKind::kTransportPartition});
    }
  }
  const std::uint64_t horizon = shape.horizon_rounds;
  for (std::uint32_t i = 0; i < shape.events; ++i) {
    FaultEvent ev;
    ev.round = rng.below(horizon);
    ev.kind = menu[rng.below(menu.size())];
    switch (ev.kind) {
      case EventKind::kBurst:
      case EventKind::kLinkKill:
        ev.magnitude =
            1 + static_cast<std::uint32_t>(rng.below(shape.max_magnitude));
        break;
      case EventKind::kCorrupt: {
        const auto kinds = pif::all_corruption_kinds();
        ev.corruption = kinds[rng.below(kinds.size())];
        break;
      }
      case EventKind::kDaemonSwap: {
        const auto kinds = sim::standard_daemon_kinds();
        ev.daemon = kinds[rng.below(kinds.size())];
        break;
      }
      case EventKind::kMpLoss:
      case EventKind::kMpDuplicate:
      case EventKind::kMpReorder:
      case EventKind::kTransportLoss:
      case EventKind::kTransportDuplicate:
      case EventKind::kTransportReorder:
        ev.rate = draw_rate(shape, rng);
        ev.duration = 1 + rng.below(horizon / 4 + 1);
        break;
      case EventKind::kTransportDelay:
        ev.rate = draw_rate(shape, rng);
        ev.duration = 1 + rng.below(horizon / 4 + 1);
        ev.magnitude =
            1 + static_cast<std::uint32_t>(rng.below(shape.max_delay_steps));
        break;
      case EventKind::kTransportPartition:
        ev.magnitude = static_cast<std::uint32_t>(
            rng.below(std::max<std::uint32_t>(1, shape.crash_processors)));
        ev.duration = 1 + rng.below(horizon / 6 + 1);
        break;
      case EventKind::kCrash:
        ev.magnitude = static_cast<std::uint32_t>(
            rng.below(std::max<std::uint32_t>(1, shape.crash_processors)));
        ev.duration = 1 + rng.below(horizon / 6 + 1);
        ev.crash_corrupt = rng.below(2) == 1;
        break;
      case EventKind::kLinkRestore:
        break;  // unreachable: restores are only paired below
    }
    schedule.events.push_back(ev);
    // Pair every kill with a restore so the graph does not erode forever;
    // the restore lands strictly later, still inside the campaign.
    if (ev.kind == EventKind::kLinkKill) {
      FaultEvent heal = ev;
      heal.kind = EventKind::kLinkRestore;
      heal.round = ev.round + 1 + rng.below(horizon / 2 + 1);
      schedule.events.push_back(heal);
    }
  }
  schedule.normalize();
  return schedule;
}

}  // namespace snappif::chaos
