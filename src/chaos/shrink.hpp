// Automatic schedule shrinking.
//
// When a soak run finds a campaign that violates the recovery oracle, the
// raw schedule is usually noisy: most of its events are irrelevant to the
// failure.  shrink() minimizes it the property-based-testing way (delta
// debugging, QuickCheck-style): greedily drop single events to a fixpoint,
// then halve magnitudes, rates, and durations while the campaign still
// fails.  The output is a one-line reproducer (FaultSchedule::to_string)
// that replays the minimal failing adversary.
//
// The predicate abstraction keeps the shrinker model-agnostic: pass a
// closure running run_campaign (shared memory), run_mp_campaign, or any
// other deterministic oracle.  Campaigns must be deterministic in the
// schedule (fixed seed/options inside the closure) — a flaky predicate
// makes "minimal" meaningless, though the evaluation budget still bounds
// the work.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "chaos/campaign.hpp"
#include "chaos/emulation_campaign.hpp"
#include "chaos/schedule.hpp"
#include "graph/graph.hpp"

namespace snappif::chaos {

struct ShrinkOptions {
  /// Ceiling on predicate evaluations (each one replays a campaign).
  std::uint64_t max_campaigns = 400;
};

struct ShrinkResult {
  /// The minimal schedule that still fails (== input if nothing could be
  /// removed or the input did not fail in the first place).
  FaultSchedule minimal;
  /// True iff the input failed under the predicate (shrinking only makes
  /// sense when it did).
  bool input_failed = false;
  bool reduced = false;  // minimal differs from the input
  std::uint64_t campaigns_run = 0;
  /// minimal.to_string() — the copy-pasteable reproducer.
  std::string reproducer;
};

/// Minimizes `schedule` against `still_fails` (true = the failure
/// reproduces).  Greedy single-event drops to fixpoint, then halving of
/// magnitudes / rates / durations.
[[nodiscard]] ShrinkResult shrink(
    const FaultSchedule& schedule,
    const std::function<bool(const FaultSchedule&)>& still_fails,
    const ShrinkOptions& options = {});

/// Convenience wrapper: shrink against run_campaign(g, ·, opts), where
/// "fails" means !CampaignResult::ok().  Telemetry is suppressed during
/// shrinking (opts.registry ignored) so replays do not pollute the metrics.
[[nodiscard]] ShrinkResult shrink_campaign(const graph::Graph& g,
                                           const FaultSchedule& schedule,
                                           const CampaignOptions& opts,
                                           const ShrinkOptions& options = {});

/// Same wrapper for the message-passing emulation campaign (crash windows
/// shrink through their duration; the crashed processor id is preserved).
[[nodiscard]] ShrinkResult shrink_emulation_campaign(
    const graph::Graph& g, const FaultSchedule& schedule,
    const EmulationCampaignOptions& opts, const ShrinkOptions& options = {});

}  // namespace snappif::chaos
