// Declarative fault campaigns.
//
// The paper's snap-stabilization theorems speak about behavior *after the
// last transient fault*: whatever garbage the adversary injected, the first
// cycle the root initiates once faults stop must be a correct PIF cycle.
// A FaultSchedule makes "the adversary" a first-class, replayable value — a
// timeline of fault events stamped in global rounds — so campaigns can be
// generated from a seed, replayed from a one-line string, and shrunk to a
// minimal reproducer when a run violates the theory (see chaos/shrink.hpp).
//
// Event vocabulary (see src/chaos/README.md for the full grammar):
//   burst       uniform state corruption of k random processors
//   corrupt     one of pif::CorruptionKind's structured corruptions
//   daemon      swap the scheduler strategy mid-run
//   kill        link churn: remove k edges, preserving connectivity (N fixed)
//   restore     link churn: re-add up to k previously removed edges
//   loss        mp substrate: message-loss window (rate, duration in rounds)
//   dup         mp substrate: message-duplication window
//   reorder     mp substrate: intra-channel reordering window
//   crash       mp substrate: crash-recover window — processor p goes
//               silent for `dur` rounds, then reboots with reset or
//               adversarially corrupted state ("12:crash(3,5,reset)")
//   tloss       transport shim: socket-level loss window BELOW the link
//               layer ("5:tloss@0.2/10") — unlike `loss` this hits the
//               ImpairmentShim, exercising the ARQ against the transport
//   tdup        transport shim: duplication window
//   treorder    transport shim: reordering window (frames deferred behind
//               later traffic)
//   tdelay      transport shim: delay window — affected frames are held for
//               k steps ("5:tdelay@0.3/10*2"; k must be a positive integer)
//   tpart       transport shim: partition window — processor p is
//               bidirectionally isolated for `dur` rounds ("8:tpart(3,6)")
//
// The shared-memory campaign runner (chaos/campaign.hpp) consumes the first
// five kinds; the message-passing runner (chaos/mp_campaign.hpp) consumes the
// window kinds; the emulation runner additionally consumes the crash and
// transport kinds.  A schedule may mix them; each runner skips the kinds
// outside its model and reports them as skipped.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pif/faults.hpp"
#include "sim/daemon.hpp"
#include "util/rng.hpp"

namespace snappif::chaos {

enum class EventKind {
  kBurst,       // magnitude = processors corrupted
  kCorrupt,     // corruption = structured recipe
  kDaemonSwap,  // daemon = new scheduler
  kLinkKill,    // magnitude = edges removed (connectivity-preserving)
  kLinkRestore, // magnitude = edges restored
  kMpLoss,      // rate + duration (rounds)
  kMpDuplicate, // rate + duration
  kMpReorder,   // rate + duration
  kCrash,       // magnitude = processor, duration = silence window,
                // crash_corrupt = recovery mode
  kTransportLoss,       // rate + duration: shim loss window (below the link)
  kTransportDuplicate,  // rate + duration: shim duplication window
  kTransportReorder,    // rate + duration: shim reordering window
  kTransportDelay,      // rate + duration + magnitude = delay steps (>= 1)
  kTransportPartition,  // magnitude = processor, duration = isolation window
};

[[nodiscard]] std::string_view event_kind_name(EventKind kind);

/// One timeline entry.  `round` is a *global* round index (rounds survive the
/// round-tracker resets that fault injection causes; see campaign.hpp).
/// Where and why a grammar line failed to parse.  `position` is the byte
/// offset of the offending token inside the parsed text, so a bad event in
/// the middle of a 30-event corpus line is localizable at a glance.
struct ParseError {
  std::size_t position = 0;
  std::string token;    // the offending characters ("" for "missing X")
  std::string message;  // what was expected instead

  /// "offset 14: unknown event kind 'boom'".
  [[nodiscard]] std::string to_string() const;
};

struct FaultEvent {
  std::uint64_t round = 0;
  EventKind kind = EventKind::kBurst;
  /// Processors (burst), edges (kill/restore), or the crashed processor
  /// (crash; runners take it modulo N so schedules stay topology-portable).
  std::uint32_t magnitude = 1;
  /// Probability for the mp window kinds.
  double rate = 0.0;
  /// Window length in delivery rounds for the mp kinds (0 = instantaneous).
  std::uint64_t duration = 0;
  /// Crash recovery mode: reboot with corrupted state instead of reset.
  bool crash_corrupt = false;
  pif::CorruptionKind corruption = pif::CorruptionKind::kUniformRandom;
  sim::DaemonKind daemon = sim::DaemonKind::kDistributedRandom;

  [[nodiscard]] bool operator==(const FaultEvent&) const = default;

  /// Grammar form, e.g. "12:burst*3", "20:corrupt=fake-tree",
  /// "8:kill*2", "5:loss@0.25/10", "9:crash(2,6,corrupt)".
  [[nodiscard]] std::string to_string() const;
  /// nullopt on malformed input; when `error` is non-null it is filled with
  /// the offending token and its offset within `text`.
  [[nodiscard]] static std::optional<FaultEvent> parse(
      std::string_view text, ParseError* error = nullptr);
};

/// A campaign: fault events sorted by round.  The quiet point — the round
/// after which the adversary is silent — is where the recovery oracle starts
/// the clock on the paper's guarantees.
struct FaultSchedule {
  std::vector<FaultEvent> events;

  /// Sorts events by round (stable: same-round events keep insertion order).
  void normalize();

  /// First round with no scheduled activity: max over events of
  /// round + duration.  0 for an empty schedule.
  [[nodiscard]] std::uint64_t quiet_round() const;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }

  /// Any event of the given kind present?  (Runners use this to route
  /// crash-bearing schedules to the emulation campaign.)
  [[nodiscard]] bool contains(EventKind kind) const;

  /// Any transport-shim kind present (tloss/tdup/treorder/tdelay/tpart)?
  /// Such schedules route to the emulation runner, the only one with an
  /// ImpairmentShim under its link.
  [[nodiscard]] bool contains_transport() const;

  /// One-line reproducer, events joined with ';' ("" for empty).
  [[nodiscard]] std::string to_string() const;
  /// Inverse of to_string; also accepts unsorted input (normalizes).
  /// Returns nullopt on any malformed event; `error` (when non-null) then
  /// names the offending token and its offset within the full line.
  [[nodiscard]] static std::optional<FaultSchedule> parse(
      std::string_view text, ParseError* error = nullptr);

  [[nodiscard]] bool operator==(const FaultSchedule&) const = default;
};

/// Knobs for random campaign generation (the soak runner's default mode) and
/// for the mutation operators (chaos/mutate.hpp), which treat the shape as
/// the envelope mutants must stay inside.
struct CampaignShape {
  /// Number of events to draw.
  std::uint32_t events = 6;
  /// Events land uniformly in [0, horizon_rounds).
  std::uint64_t horizon_rounds = 60;
  /// Largest burst / churn magnitude drawn.
  std::uint32_t max_magnitude = 4;
  /// Include shared-memory kinds (burst/corrupt/daemon/churn).
  bool shared_memory = true;
  /// Include mp window kinds (loss/dup/reorder).
  bool message_passing = false;
  /// Also emit crash-recover windows (mp kinds; needs message_passing).
  bool crash = false;
  /// Also emit transport-shim windows (tloss/tdup/treorder/tdelay/tpart;
  /// needs message_passing).  Off by default so pre-existing shapes keep
  /// their exact RNG draw sequences.
  bool transport = false;
  /// Largest per-frame delay (in steps) a tdelay window may draw.
  std::uint32_t max_delay_steps = 4;
  /// Crash events draw their processor id below this bound (runners reduce
  /// it modulo the actual N).
  std::uint32_t crash_processors = 16;
  /// mp window rates are drawn uniformly in [mp_rate_min, mp_rate_max],
  /// snapped to hundredths so the grammar round-trips them exactly.
  double mp_rate_min = 0.05;
  double mp_rate_max = 0.5;
};

/// Human-readable objection to a degenerate shape (zero events, zero
/// horizon, NaN / out-of-range rates, empty event menu); nullopt when the
/// shape can generate meaningful schedules.  random_schedule and the
/// mutators assert this — a silently empty or degenerate campaign would
/// report "recovered" without ever exercising the adversary.
[[nodiscard]] std::optional<std::string> validate(const CampaignShape& shape);

/// Draws a random campaign.  Link kills are paired with a later restore so
/// sustained campaigns do not thin the graph monotonically.  The shape must
/// validate (SNAPPIF_ASSERT otherwise).
[[nodiscard]] FaultSchedule random_schedule(const CampaignShape& shape,
                                            util::Rng& rng);

}  // namespace snappif::chaos
