// Fault campaigns for the message-passing substrate.
//
// "Snap-Stabilization in Message-Passing Systems" (PAPERS.md) motivates the
// same question for the mp world the shared-memory oracle answers for the
// paper's protocol: after the channels stop misbehaving, how quickly does
// the wave machinery deliver a correct PIF again?  This runner drives
// mp::RepeatedPifProtocol (Segall-style sequence-numbered waves) under a
// FaultSchedule's window events — loss, duplication, and intra-channel
// reordering, each active for `duration` synchronous delivery rounds — and
// then applies the recovery oracle: with the channels reliable again, the
// next root-initiated wave must complete and be observed correct
// (waves_ok() advances) within the wave/round budget.
//
// The window semantics make the known limitation measurable: a lost token
// stalls the current wave forever (no retransmission), and recovery happens
// only because the root supersedes it with a fresh sequence number — the
// message-passing ancestor of the snap-stabilization story, and the reason
// the quiet-point oracle is the right yardstick in both models.
#pragma once

#include <cstdint>
#include <string>

#include "chaos/schedule.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"

namespace snappif::chaos {

struct MpCampaignOptions {
  sim::ProcessorId root = 0;
  std::uint64_t seed = 1;
  /// Synchronous delivery rounds allowed for the whole campaign.
  std::uint64_t max_rounds = 100'000;
  /// After the quiet point: fresh waves the root may start before one must
  /// be observed correct.
  std::uint64_t recovery_wave_budget = 4;
  /// ...and the delivery-round ceiling for that recovery.
  std::uint64_t recovery_round_budget = 1'000;
  /// Optional telemetry sink (metrics prefixed "chaos.mp.").
  obs::Registry* registry = nullptr;
};

struct MpCampaignResult {
  bool completed = false;  // all windows elapsed within max_rounds
  std::uint64_t quiet_round = 0;
  std::uint64_t windows_applied = 0;
  std::uint64_t events_skipped = 0;  // non-mp event kinds in the schedule
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_reordered = 0;
  std::uint64_t waves_started = 0;
  std::uint64_t waves_ok = 0;

  bool recovered = false;  // a post-quiet wave completed correctly in budget
  std::uint64_t rounds_to_recover = 0;  // quiet -> that wave's completion
  std::uint64_t waves_to_recover = 0;   // fresh waves needed post-quiet

  std::string failure;

  [[nodiscard]] bool ok() const noexcept { return completed && recovered; }
};

/// Runs one mp campaign on `g` (synchronous delivery; time = delivery
/// rounds).  Only the schedule's loss/dup/reorder windows apply; other kinds
/// are counted as skipped.  Deterministic in (g, schedule, opts.seed).
[[nodiscard]] MpCampaignResult run_mp_campaign(const graph::Graph& g,
                                               const FaultSchedule& schedule,
                                               const MpCampaignOptions& opts);

}  // namespace snappif::chaos
