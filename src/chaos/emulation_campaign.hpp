// Fault campaigns for the PAPER'S algorithm over the message-passing
// substrate.
//
// mp_campaign.hpp drives the ancestors (Segall-style repeated PIF) and
// measures their known brittleness.  This runner closes the loop the
// resilience layer exists for: pif::PifProtocol itself — the exact guarded
// actions proved snap-stabilizing in the shared-memory model — executes via
// mp::GuardedEmulation over channels that lose, duplicate, and reorder
// frames, on processors that crash and reboot with reset or corrupted
// state.
//
// Recovery oracle (settle-then-release).  Pure snap-stabilization is
// impossible in message passing with bounded state (Delaët–Devismes–
// Nesterenko–Tixeuil): stale frames still in flight at the quiet point are
// indistinguishable from fresh ones, so "the very next cycle is clean" is
// too strong verbatim.  The oracle therefore (1) gates the root's B-action
// at the quiet point, (2) waits for the system to drain — no frame in
// flight or pending, no ungated guard enabled — which bounded-budget
// failure makes a reportable violation of its own, then (3) releases the
// root and requires the FIRST cycle it initiates to be verdict-clean under
// pif::GhostTracker ([PIF1] and [PIF2], no abort).  That is the paper's
// Definition-1 shape transported to the mp world: after the faults AND
// their in-flight residue are gone, the first initiated cycle is correct.
#pragma once

#include <cstdint>
#include <string>

#include "chaos/schedule.hpp"
#include "graph/graph.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "sim/types.hpp"

namespace snappif::chaos {

struct EmulationCampaignOptions {
  sim::ProcessorId root = 0;
  std::uint64_t seed = 1;
  /// Emulated rounds allowed for the whole campaign.
  std::uint64_t max_rounds = 100'000;
  /// Rounds allowed from the quiet point (root gated) to full quiescence.
  std::uint64_t settle_round_budget = 5'000;
  /// Rounds allowed from release to the judged cycle's close.
  std::uint64_t recovery_round_budget = 5'000;
  /// Start from a uniformly random configuration instead of initial states
  /// (the paper's arbitrary-initialization setting).
  bool arbitrary_init = false;
  /// Optional telemetry sink (metrics prefixed "chaos.emu." + "mp.link.*").
  obs::Registry* registry = nullptr;
  /// Optional always-on flight recorder: wave/phase/correction spans from
  /// the emulated protocol plus link frame spans (send/retransmit/deliver/
  /// peer-reset via mp::ILinkObserver) and crash/recover marks, timestamped
  /// in emulated rounds.  On failure the runner stamps the diagnosis and the
  /// packed global view.
  obs::FlightRecorder* flight = nullptr;
};

struct EmulationCampaignResult {
  bool completed = false;  // fault phase reached the quiet point in budget
  bool settled = false;    // drained to quiescence with the root gated
  bool recovered = false;  // first released cycle judged clean

  std::uint64_t quiet_round = 0;
  std::uint64_t windows_applied = 0;
  std::uint64_t crashes_applied = 0;
  std::uint64_t events_skipped = 0;  // shared-memory kinds, double-crashes
  std::uint64_t rounds_total = 0;
  std::uint64_t actions_applied = 0;
  std::uint64_t cycles_completed = 0;
  std::uint64_t rounds_to_settle = 0;   // quiet point -> quiescence
  std::uint64_t rounds_to_recover = 0;  // release -> clean cycle close

  // Substrate and link telemetry for the run.
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_reordered = 0;
  std::uint64_t messages_dropped_crashed = 0;
  std::uint64_t link_retransmits = 0;
  std::uint64_t link_timer_fires = 0;
  std::uint64_t link_spurious_acks = 0;

  std::string failure;

  [[nodiscard]] bool ok() const noexcept {
    return completed && settled && recovered;
  }
};

/// Runs one emulation campaign on `g`.  Consumes the schedule's mp kinds:
/// loss/dup/reorder windows plus crash(p,dur,mode) events (p taken modulo
/// N; crashing an already-crashed processor is counted as skipped).
/// Shared-memory kinds are counted as skipped.  Deterministic in
/// (g, schedule, opts).
[[nodiscard]] EmulationCampaignResult run_emulation_campaign(
    const graph::Graph& g, const FaultSchedule& schedule,
    const EmulationCampaignOptions& opts);

}  // namespace snappif::chaos
