#include "chaos/shrink.hpp"

#include <utility>

namespace snappif::chaos {

namespace {

class Shrinker {
 public:
  Shrinker(const std::function<bool(const FaultSchedule&)>& still_fails,
           const ShrinkOptions& options)
      : still_fails_(still_fails), options_(options) {}

  ShrinkResult run(FaultSchedule schedule) {
    schedule.normalize();
    ShrinkResult result;
    result.minimal = schedule;
    result.input_failed = fails(schedule);
    if (result.input_failed) {
      drop_events(result.minimal);
      halve_fields(result.minimal);
      result.reduced = !(result.minimal == schedule);
    }
    result.campaigns_run = campaigns_run_;
    result.reproducer = result.minimal.to_string();
    return result;
  }

 private:
  [[nodiscard]] bool fails(const FaultSchedule& candidate) {
    if (campaigns_run_ >= options_.max_campaigns) {
      return false;  // budget exhausted: treat as "could not reproduce"
    }
    ++campaigns_run_;
    return still_fails_(candidate);
  }

  /// Greedy single-event drops, restarting the scan after every success,
  /// until no single removal still fails.
  void drop_events(FaultSchedule& minimal) {
    bool progress = true;
    while (progress && !minimal.events.empty()) {
      progress = false;
      for (std::size_t i = 0; i < minimal.events.size(); ++i) {
        FaultSchedule candidate = minimal;
        candidate.events.erase(candidate.events.begin() +
                               static_cast<std::ptrdiff_t>(i));
        if (fails(candidate)) {
          minimal = std::move(candidate);
          progress = true;
          break;
        }
      }
    }
  }

  /// Per-event halving of magnitude, rate, and duration while the failure
  /// reproduces.  Each field shrinks toward its smallest meaningful value
  /// (magnitude 1, duration 0; rates halve until they stop mattering).
  /// Crash events keep their magnitude: it names WHICH processor crashes,
  /// not how big the fault is — only their silence window halves.
  void halve_fields(FaultSchedule& minimal) {
    for (std::size_t i = 0; i < minimal.events.size(); ++i) {
      while (minimal.events[i].kind != EventKind::kCrash &&
             minimal.events[i].magnitude > 1) {
        FaultSchedule candidate = minimal;
        candidate.events[i].magnitude /= 2;
        if (!fails(candidate)) {
          break;
        }
        minimal = std::move(candidate);
      }
      while (minimal.events[i].duration > 0) {
        FaultSchedule candidate = minimal;
        candidate.events[i].duration /= 2;
        if (!fails(candidate)) {
          break;
        }
        minimal = std::move(candidate);
      }
      while (minimal.events[i].rate > 0.01) {
        FaultSchedule candidate = minimal;
        candidate.events[i].rate /= 2;
        if (!fails(candidate)) {
          break;
        }
        minimal = std::move(candidate);
      }
    }
  }

  const std::function<bool(const FaultSchedule&)>& still_fails_;
  ShrinkOptions options_;
  std::uint64_t campaigns_run_ = 0;
};

}  // namespace

ShrinkResult shrink(const FaultSchedule& schedule,
                    const std::function<bool(const FaultSchedule&)>& still_fails,
                    const ShrinkOptions& options) {
  Shrinker shrinker(still_fails, options);
  return shrinker.run(schedule);
}

ShrinkResult shrink_campaign(const graph::Graph& g,
                             const FaultSchedule& schedule,
                             const CampaignOptions& opts,
                             const ShrinkOptions& options) {
  CampaignOptions replay = opts;
  replay.registry = nullptr;  // replays must not pollute telemetry
  const auto still_fails = [&](const FaultSchedule& candidate) {
    return !run_campaign(g, candidate, replay).ok();
  };
  return shrink(schedule, still_fails, options);
}

ShrinkResult shrink_emulation_campaign(const graph::Graph& g,
                                       const FaultSchedule& schedule,
                                       const EmulationCampaignOptions& opts,
                                       const ShrinkOptions& options) {
  EmulationCampaignOptions replay = opts;
  replay.registry = nullptr;  // replays must not pollute telemetry
  const auto still_fails = [&](const FaultSchedule& candidate) {
    return !run_emulation_campaign(g, candidate, replay).ok();
  };
  return shrink(schedule, still_fails, options);
}

}  // namespace snappif::chaos
