#include "chaos/campaign.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <utility>

#include "graph/properties.hpp"
#include "pif/codec.hpp"
#include "pif/faults.hpp"
#include "pif/ghost.hpp"
#include "pif/instrument.hpp"
#include "pif/soa_engine.hpp"
#include "pif/wave_trace.hpp"
#include "sim/daemon.hpp"
#include "sim/faults.hpp"
#include "util/assert.hpp"

namespace snappif::chaos {

namespace {

using PifSim = sim::Simulator<pif::PifProtocol>;
using PifEngine = sim::IEngine<pif::PifProtocol>;

class CampaignEngine {
 public:
  CampaignEngine(const graph::Graph& g, const CampaignOptions& opts)
      : opts_(opts), rng_(opts.seed), n_(g.n()), tracker_(g, opts.root) {
    SNAPPIF_ASSERT_MSG(graph::is_connected(g), "campaign graph must be connected");
    SNAPPIF_ASSERT(opts.root < g.n());
    present_ = g.edges();
    daemon_ = sim::make_daemon(opts.daemon);
    if (opts_.flight != nullptr) {
      wave_ = std::make_unique<pif::WaveTraceProbe>(
          opts_.root, opts_.flight->spans(), opts_.registry);
    }
    rebuild(nullptr);
  }

  CampaignResult run(const FaultSchedule& schedule) {
    CampaignResult result;
    FaultSchedule sorted = schedule;
    sorted.normalize();

    // Fault phase: march the campaign clock to each event round, apply.
    std::size_t next = 0;
    while (next < sorted.events.size()) {
      while (next < sorted.events.size() &&
             sorted.events[next].round <= clock_.rounds()) {
        apply_event(sorted.events[next], result);
        ++next;
      }
      if (next >= sorted.events.size()) {
        break;
      }
      const std::uint64_t target = sorted.events[next].round;
      const auto r = sim_->run_until(
          *daemon_,
          [&](const PifSim::Config&) { return clock_.rounds() >= target; },
          sim::RunLimits{.max_steps = remaining_steps(result)});
      result.steps += r.steps;
      if (r.reason != sim::StopReason::kPredicate) {
        result.failure = "fault phase stalled before round " +
                         std::to_string(target) + " (" + stop_name(r.reason) +
                         ")";
        record_telemetry(result);
        record_flight(result);
        return result;
      }
    }
    result.completed = true;
    result.quiet_round = clock_.rounds();

    run_oracle(result);
    record_telemetry(result);
    record_flight(result);
    return result;
  }

 private:
  // --- construction / link churn -------------------------------------------

  /// (Re)builds protocol + simulator on the current edge set, transferring
  /// states.  States whose Par left the variable domain (edge removed) are
  /// re-drawn uniformly on the new topology; `result` (when non-null) counts
  /// them as injected faults.
  void rebuild(CampaignResult* result) {
    auto next_graph =
        std::make_unique<graph::Graph>(graph::Graph::from_edges(n_, present_));
    pif::Params params = pif::Params::for_graph(*next_graph, opts_.root);
    if (opts_.tweak_params) {
      opts_.tweak_params(params);
    }
    auto next_sim = pif::make_engine(opts_.engine, *next_graph, params, rng_());
    next_sim->set_action_policy(opts_.policy);
    next_sim->set_score(
        [](const pif::State& s) { return static_cast<std::int64_t>(s.level); });
    if (sim_ != nullptr) {
      const PifSim::Config& old = sim_->config();
      for (sim::ProcessorId p = 0; p < n_; ++p) {
        pif::State s = old.state(p);
        if (p != opts_.root &&
            (s.parent >= n_ || !next_graph->has_edge(p, s.parent))) {
          s = next_sim->protocol().random_state(p, rng_);
          if (result != nullptr) {
            ++result->faults_injected;
          }
        }
        next_sim->set_state(p, s);
      }
    }
    sim_ = std::move(next_sim);    // old simulator (and its graph refs) die first
    graph_ = std::move(next_graph);
    sim_->add_probe(&clock_);
    if (wave_ != nullptr) {
      sim_->add_probe(wave_.get());  // survives rebuilds: monotone span clock
    }
    pif::attach(*sim_, tracker_);
  }

  void kill_links(std::uint32_t magnitude, CampaignResult& result) {
    std::uint32_t killed = 0;
    for (std::uint32_t i = 0; i < magnitude; ++i) {
      if (present_.size() <= 1) {
        break;
      }
      std::vector<std::size_t> order(present_.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      rng_.shuffle(std::span<std::size_t>(order));
      bool removed_one = false;
      for (std::size_t idx : order) {
        std::vector<graph::Edge> candidate;
        candidate.reserve(present_.size() - 1);
        for (std::size_t j = 0; j < present_.size(); ++j) {
          if (j != idx) {
            candidate.push_back(present_[j]);
          }
        }
        if (graph::is_connected(graph::Graph::from_edges(n_, candidate))) {
          removed_.push_back(present_[idx]);
          present_ = std::move(candidate);
          removed_one = true;
          break;
        }
      }
      if (!removed_one) {
        break;  // every remaining edge is a bridge
      }
      ++killed;
    }
    if (killed == 0) {
      ++result.events_skipped;
      return;
    }
    result.links_killed += killed;
    ++result.events_applied;
    rebuild(&result);
  }

  void restore_links(std::uint32_t magnitude, CampaignResult& result) {
    std::uint32_t restored = 0;
    while (restored < magnitude && !removed_.empty()) {
      const std::size_t idx = rng_.below(removed_.size());
      present_.push_back(removed_[idx]);
      removed_[idx] = removed_.back();
      removed_.pop_back();
      ++restored;
    }
    if (restored == 0) {
      ++result.events_skipped;
      return;
    }
    result.links_restored += restored;
    ++result.events_applied;
    rebuild(&result);
  }

  void apply_event(const FaultEvent& ev, CampaignResult& result) {
    switch (ev.kind) {
      case EventKind::kBurst: {
        const auto hit = std::min<std::uint32_t>(ev.magnitude, n_);
        sim::inject_burst(*sim_, ev.magnitude, rng_);
        result.faults_injected += hit;
        ++result.events_applied;
        return;
      }
      case EventKind::kCorrupt:
        pif::apply_corruption(*sim_, ev.corruption, rng_);
        result.faults_injected += n_;
        ++result.events_applied;
        return;
      case EventKind::kDaemonSwap:
        daemon_ = sim::make_daemon(ev.daemon);
        ++result.events_applied;
        return;
      case EventKind::kLinkKill:
        kill_links(ev.magnitude, result);
        return;
      case EventKind::kLinkRestore:
        restore_links(ev.magnitude, result);
        return;
      case EventKind::kMpLoss:
      case EventKind::kMpDuplicate:
      case EventKind::kMpReorder:
      case EventKind::kCrash:
      case EventKind::kTransportLoss:
      case EventKind::kTransportDuplicate:
      case EventKind::kTransportReorder:
      case EventKind::kTransportDelay:
      case EventKind::kTransportPartition:
        ++result.events_skipped;  // mp substrate events; see mp_campaign.hpp
        return;
    }
    SNAPPIF_ASSERT_MSG(false, "unknown fault event kind");
  }

  // --- recovery oracle -----------------------------------------------------

  /// Def. 8 (all-Normal) read off the engine's cached action masks instead of
  /// re-walking every neighborhood: a processor is abnormal iff one of its
  /// correction guards is enabled.  (Non-root: AbnormalB/AbnormalF are exactly
  /// ¬Normal ∧ Pif∈{B,F}, and a non-root processor with Pif=C is always
  /// Normal.  Root: B-correction's guard is ¬Normal itself.)  The equivalence
  /// against Checker::all_normal is asserted over random configurations in
  /// tests/sim/test_mask_differential.cpp.
  [[nodiscard]] bool all_normal_via_masks() const {
    constexpr sim::ActionMask kCorrections =
        (sim::ActionMask{1} << pif::kBCorrection) |
        (sim::ActionMask{1} << pif::kFCorrection);
    for (sim::ProcessorId p = 0; p < n_; ++p) {
      if ((sim_->enabled_mask_of(p) & kCorrections) != 0) {
        return false;
      }
    }
    return true;
  }

  void run_oracle(CampaignResult& result) {
    const std::uint32_t l_max = sim_->protocol().params().l_max;
    const std::uint64_t budget = opts_.recovery_round_budget != 0
                                     ? opts_.recovery_round_budget
                                     : 20ull * l_max + 50;
    const std::uint64_t quiet = clock_.rounds();
    const std::uint64_t cycles_at_quiet = tracker_.cycles_completed();
    const bool in_flight = tracker_.cycle_active();

    // Milestone 1 (Theorem 1): all-Normal closure.
    const auto r1 = sim_->run_until(
        *daemon_,
        [&](const PifSim::Config&) { return all_normal_via_masks(); },
        sim::RunLimits{.max_steps = remaining_steps(result),
                       .max_rounds = budget});
    result.steps += r1.steps;
    if (r1.reason != sim::StopReason::kPredicate) {
      result.failure = "no all-Normal closure within " + std::to_string(budget) +
                       " post-quiet rounds (" + stop_name(r1.reason) + ")";
      return;
    }
    result.rounds_to_normal = clock_.rounds() - quiet;

    // Milestone 2 (snap property): the first cycle the root initiates after
    // the quiet point closes and is correct.  A cycle already in flight at
    // quiet started under faults and is excused — skip its verdict.
    const std::uint64_t target_idx = cycles_at_quiet + (in_flight ? 1 : 0);
    const auto r2 = sim_->run_until(
        *daemon_,
        [&](const PifSim::Config&) {
          return tracker_.cycles_completed() > target_idx;
        },
        sim::RunLimits{.max_steps = remaining_steps(result),
                       .max_rounds = budget});
    result.steps += r2.steps;
    if (r2.reason != sim::StopReason::kPredicate) {
      result.failure = "first post-quiet cycle did not close within " +
                       std::to_string(budget) + " post-quiet rounds (" +
                       stop_name(r2.reason) + ")";
      return;
    }
    result.recovered = true;
    result.rounds_to_cycle_close = clock_.rounds() - quiet;

    const pif::CycleVerdict& verdict = tracker_.verdicts().at(target_idx);
    result.pif1 = verdict.pif1;
    result.pif2 = verdict.pif2;
    result.aborted = verdict.aborted;
    result.snap_ok = verdict.ok();
    if (!result.snap_ok) {
      result.failure = std::string("snap violation on first post-quiet cycle:") +
                       (verdict.pif1 ? "" : " !pif1") +
                       (verdict.pif2 ? "" : " !pif2") +
                       (verdict.aborted ? " aborted" : "");
    }
  }

  // --- bookkeeping ---------------------------------------------------------

  [[nodiscard]] std::uint64_t remaining_steps(const CampaignResult& result) const {
    return result.steps >= opts_.max_steps ? 0 : opts_.max_steps - result.steps;
  }

  [[nodiscard]] static const char* stop_name(sim::StopReason reason) {
    switch (reason) {
      case sim::StopReason::kPredicate:
        return "predicate";
      case sim::StopReason::kTerminal:
        return "terminal configuration";
      case sim::StopReason::kStepLimit:
        return "step limit";
      case sim::StopReason::kRoundLimit:
        return "round limit";
    }
    return "?";
  }

  void record_telemetry(const CampaignResult& result) const {
    if (opts_.registry == nullptr) {
      return;
    }
    obs::Registry& reg = *opts_.registry;
    reg.counter("chaos.campaigns").inc();
    if (!result.ok()) {
      reg.counter("chaos.campaigns_failed").inc();
    }
    reg.counter("chaos.events_applied").inc(result.events_applied);
    reg.counter("chaos.events_skipped").inc(result.events_skipped);
    reg.counter("chaos.faults_injected").inc(result.faults_injected);
    reg.counter("chaos.links_killed").inc(result.links_killed);
    reg.counter("chaos.links_restored").inc(result.links_restored);
    if (result.recovered) {
      reg.histogram("chaos.recovery_rounds", 32, 4.0)
          .add(static_cast<double>(result.rounds_to_cycle_close));
      reg.stats("chaos.rounds_to_normal")
          .add(static_cast<double>(result.rounds_to_normal));
      obs::Gauge& worst = reg.gauge("chaos.worst_recovery_rounds");
      worst.set(std::max(worst.value(),
                         static_cast<double>(result.rounds_to_cycle_close)));
    }
  }

  /// Closes open spans and, on failure, stamps the diagnosis + packed final
  /// configuration into the flight recorder (the artifact snappif_chaos
  /// dumps and `snappif_trace --flight` renders).
  void record_flight(const CampaignResult& result) {
    if (opts_.flight == nullptr) {
      return;
    }
    wave_->finish();
    if (result.ok()) {
      return;
    }
    obs::FlightContext& ctx = opts_.flight->context();
    if (ctx.failure.empty()) {
      ctx.failure = result.failure.empty() ? "campaign failed" : result.failure;
    }
    const pif::StateCodec codec(*graph_, sim_->protocol().params());
    std::vector<std::uint64_t> words;
    words.reserve(n_);
    for (sim::ProcessorId p = 0; p < n_; ++p) {
      words.push_back(codec.encode(sim_->config().state(p)));
    }
    opts_.flight->set_snapshot("pif.codec.v1", std::move(words));
  }

  CampaignOptions opts_;
  util::Rng rng_;
  graph::NodeId n_;
  std::vector<graph::Edge> present_;
  std::vector<graph::Edge> removed_;
  std::unique_ptr<graph::Graph> graph_;
  std::unique_ptr<PifEngine> sim_;
  std::unique_ptr<sim::IDaemon> daemon_;
  RoundClock clock_;
  pif::GhostTracker tracker_;
  std::unique_ptr<pif::WaveTraceProbe> wave_;
};

}  // namespace

CampaignResult run_campaign(const graph::Graph& g, const FaultSchedule& schedule,
                            const CampaignOptions& opts) {
  CampaignEngine engine(g, opts);
  return engine.run(schedule);
}

}  // namespace snappif::chaos
