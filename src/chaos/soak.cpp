#include "chaos/soak.hpp"

#include <memory>
#include <utility>

#include "chaos/emulation_campaign.hpp"
#include "chaos/mp_campaign.hpp"
#include "par/shard.hpp"
#include "util/rng.hpp"

namespace snappif::chaos {

SoakJob soak_job(const SoakOptions& opts, std::uint64_t index) {
  // Schedule first, then run seed, from one index-derived stream (the same
  // draw order the rolling-RNG tool used per campaign).
  util::Rng rng(par::shard_seed(opts.master_seed, index));
  SoakJob job;
  job.schedule = random_schedule(opts.shape, rng);
  job.seed = rng();
  return job;
}

SoakOutcome run_soak_campaign(const graph::Graph& g, const SoakOptions& opts,
                              const SoakJob& job, std::uint64_t index,
                              obs::Registry* registry) {
  SoakOutcome outcome;
  outcome.index = index;
  outcome.schedule = job.schedule;
  outcome.seed = job.seed;

  // Always-on flight recording: every campaign streams spans into a bounded
  // ring while it runs; the recorder is kept on the outcome only when the
  // campaign failed (successes drop it below to keep soak memory flat).
  auto flight = std::make_shared<obs::FlightRecorder>();
  flight->context().scenario = "chaos.soak";
  flight->context().seed = job.seed;
  flight->context().shard = index;

  CampaignOptions copts = opts.campaign;
  copts.seed = job.seed;
  copts.registry = registry;
  copts.flight = flight.get();
  outcome.shared = run_campaign(g, job.schedule, copts);

  if (opts.run_mp) {
    outcome.mp_run = true;
    // Crash events need processor fault semantics, and transport events an
    // ImpairmentShim under the link — both exist only in the emulation
    // campaign; --emulate forces that runner for everything.
    if (opts.emulate || job.schedule.contains(EventKind::kCrash) ||
        job.schedule.contains_transport()) {
      outcome.used_emulation = true;
      EmulationCampaignOptions emu_opts;
      emu_opts.root = copts.root;
      emu_opts.seed = job.seed;
      emu_opts.registry = registry;
      emu_opts.flight = flight.get();
      const EmulationCampaignResult er =
          run_emulation_campaign(g, job.schedule, emu_opts);
      outcome.mp_ok = er.ok();
      outcome.mp_failure = er.failure;
    } else {
      MpCampaignOptions mp_opts;
      mp_opts.root = copts.root;
      mp_opts.seed = job.seed;
      mp_opts.registry = registry;
      const MpCampaignResult mr = run_mp_campaign(g, job.schedule, mp_opts);
      outcome.mp_ok = mr.ok();
      outcome.mp_failure = mr.failure;
    }
    if (!outcome.mp_ok && !flight->failed()) {
      // mp runner without its own flight hookup (repeated-PIF leg): stamp
      // the diagnosis so the dump still names the failing oracle.
      flight->context().failure =
          outcome.mp_failure.empty() ? "mp campaign failed"
                                     : outcome.mp_failure;
    }
  }
  if (!outcome.ok()) {
    outcome.flight = std::move(flight);
  }
  return outcome;
}

SoakReport run_soak(const graph::Graph& g, const SoakOptions& opts,
                    par::ThreadPool* pool) {
  struct ShardOut {
    SoakOutcome outcome;
    obs::Registry metrics;
  };
  auto shards = par::run_shards(
      opts.master_seed, static_cast<std::size_t>(opts.campaigns),
      [&](par::ShardContext& ctx) {
        ShardOut out;
        out.outcome = run_soak_campaign(g, opts, soak_job(opts, ctx.index),
                                        ctx.index, &out.metrics);
        return out;
      },
      pool);

  SoakReport report;
  report.outcomes.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (!report.first_failure.has_value() && !shards[i].outcome.ok()) {
      report.first_failure = i;
    }
    report.metrics.merge(shards[i].metrics);
    if (shards[i].outcome.flight != nullptr) {
      // Index-order merge: span ids re-base deterministically and the
      // LOWEST failing campaign's context/snapshot win.
      report.flight.merge(*shards[i].outcome.flight);
    }
    report.outcomes.push_back(std::move(shards[i].outcome));
  }
  return report;
}

}  // namespace snappif::chaos
