// Coverage-guided chaos fuzzing: the consumer obs::fingerprint was built
// for (ROADMAP item 5(a)).
//
// Random soaks sample the adversary space thinly.  The guided engine runs
// *generations* of campaigns instead: each generation mutates schedules
// drawn from a corpus (chaos/mutate.hpp), runs every mutant through the
// same runners the soak uses (run_soak_campaign — shared-memory campaign
// plus the optional mp / emulation leg), and keys each outcome by
// obs::fingerprint of the campaign's own registry.  That fingerprint
// digests exactly the recovery signals the ROADMAP names — phase-occupancy
// and recovery-round histograms, correction counts, link kill/restore
// counters — so two campaigns share a key iff the protocol *behaved* the
// same way, not iff the schedules look alike.  A mutant whose fingerprint
// was never seen before joins the corpus; the search therefore climbs
// toward schedules that provoke novel recovery behavior, which is where
// the E19-style failures live.
//
// Determinism contract (mirrors chaos/soak.hpp): generation g's master
// seed is par::shard_seed(master_seed, g); population slot i derives its
// parent/mate picks, its mutation draws, and its campaign seed from an Rng
// seeded with par::shard_seed(gen_master, i); the generation fans out over
// par::run_shards and folds in index order.  The discovered corpus, the
// coverage map, every merged metric, and the first failing (generation,
// slot) pair are bit-identical for any worker count.
//
// Corpus file format (corpus_to_text / corpus_from_text): plain text, one
// fault-schedule grammar line per entry, '-' for the empty schedule, '#'
// comments and blank lines ignored — so corpora replay with --schedule,
// accumulate across runs, and diff cleanly in review.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chaos/soak.hpp"
#include "graph/graph.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "par/pool.hpp"

namespace snappif::chaos {

struct GuidedOptions {
  std::uint64_t master_seed = 1;
  /// Mutation generations run after the seed-corpus evaluation pass.
  std::uint64_t generations = 8;
  /// Mutants per generation.
  std::uint32_t population = 16;
  /// Envelope mutants must stay inside (must validate()).
  CampaignShape shape;
  /// Shared-memory campaign settings, forwarded like SoakOptions::campaign.
  CampaignOptions campaign;
  /// Also run each schedule against the message-passing runner.
  bool run_mp = false;
  /// Force the GuardedEmulation runner for the mp leg.
  bool emulate = false;
  /// Seed corpus.  Empty means the trivial corpus: one empty schedule,
  /// which the first generation mutates into fresh random draws.
  std::vector<FaultSchedule> corpus_in;
  /// Hard cap on corpus growth; novel-fingerprint schedules beyond it are
  /// counted in GuidedReport::corpus_overflow instead of kept.
  std::size_t max_corpus = 512;
};

/// A schedule retained because its campaign produced a never-seen
/// registry fingerprint.
struct CorpusEntry {
  FaultSchedule schedule;
  std::uint64_t fingerprint = 0;
  std::uint64_t generation = 0;  // generation that discovered it (0 = seed)
  std::uint64_t slot = 0;        // population slot within that generation
};

struct GenerationStats {
  std::uint64_t generation = 0;
  std::uint64_t campaigns = 0;
  std::uint64_t novel = 0;     // never-seen fingerprints this generation
  std::uint64_t failures = 0;  // campaigns whose oracle failed
};

/// THE deterministic first failure: lowest (generation, slot).
struct GuidedFailure {
  std::uint64_t generation = 0;
  std::uint64_t slot = 0;
  /// Full outcome, including the failing schedule, its campaign seed, the
  /// oracle diagnosis, and the retained flight recorder.
  SoakOutcome outcome;
};

struct GuidedReport {
  /// Discovery order = fold order: deterministic for any worker count.
  std::vector<CorpusEntry> corpus;
  std::vector<GenerationStats> generations;
  /// Per-campaign registries merged in (generation, slot) order.
  obs::Registry metrics;
  /// Failing campaigns' flight recorders merged in (generation, slot)
  /// order (lowest failure's context/snapshot win, as in SoakReport).
  obs::FlightRecorder flight;
  std::optional<GuidedFailure> first_failure;
  std::uint64_t campaigns_run = 0;
  /// Distinct registry fingerprints observed — the coverage count the E21
  /// bench compares against a random soak at equal campaign budget.
  std::uint64_t unique_fingerprints = 0;
  /// Novel schedules dropped because the corpus hit max_corpus.
  std::uint64_t corpus_overflow = 0;

  [[nodiscard]] bool ok() const noexcept { return !first_failure.has_value(); }
};

/// Runs the guided search on `g`.  Evaluates the seed corpus as generation
/// 0, then opts.generations mutation generations; stops after the
/// generation containing the first failure.  Deterministic in (g, opts)
/// for any `pool`, including none.
[[nodiscard]] GuidedReport run_guided(const graph::Graph& g,
                                      const GuidedOptions& opts,
                                      par::ThreadPool* pool = nullptr);

/// Serializes corpus entries as grammar lines (with '#' provenance
/// comments); inverse of corpus_from_text modulo comments.
[[nodiscard]] std::string corpus_to_text(const std::vector<CorpusEntry>& corpus);

/// Parses a corpus file: one grammar line per schedule, '-' for the empty
/// schedule, '#' comments and blank lines skipped.  nullopt on the first
/// malformed line; `error` (when non-null) then reads
/// "line 7: offset 3: unknown event kind 'boom'".
[[nodiscard]] std::optional<std::vector<FaultSchedule>> corpus_from_text(
    std::string_view text, std::string* error = nullptr);

}  // namespace snappif::chaos
