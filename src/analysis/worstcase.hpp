// Randomized worst-case schedule search.
//
// The paper's bounds quantify over every weakly fair daemon; fixed daemon
// strategies only sample that space.  This searcher hunts for bad schedules
// with random restarts: each trial runs under a freshly seeded randomized
// daemon (and randomized action-choice policy) and keeps the worst metric
// observed.  It is how the test suite gains confidence that the observed
// maxima in E1/E3 are near the adversarial optimum rather than artifacts of
// one scheduler.
#pragma once

#include <cstdint>

#include "analysis/runners.hpp"
#include "graph/graph.hpp"

namespace snappif::analysis {

enum class WorstCaseMetric {
  kRoundsToNormal,   // Theorem 1 milestone
  kRoundsToSbn,      // Theorem 2/3 milestone
  kCycleRounds,      // Theorem 4 milestone (from SBN)
};

struct WorstCaseResult {
  std::uint64_t worst = 0;       // worst metric value found
  std::uint64_t trials = 0;
  std::uint64_t failures = 0;    // runs that hit limits (should be 0)
  std::uint64_t worst_seed = 0;  // reproduce with this seed
  sim::DaemonKind worst_daemon = sim::DaemonKind::kDistributedRandom;
};

/// Runs `trials` randomized schedules of `metric` on `g` and returns the
/// worst value found.  Every trial rotates daemon kind, action policy and
/// corruption recipe (for the stabilization metrics).
[[nodiscard]] WorstCaseResult find_worst_case(const graph::Graph& g,
                                              WorstCaseMetric metric,
                                              std::uint64_t trials,
                                              std::uint64_t seed);

/// Greedy lookahead adversary: a central schedule that, at every step, tries
/// each enabled singleton on a copy of the simulator and commits the one
/// keeping the most processors abnormal (weak fairness enforced by an aging
/// bound).  Returns rounds until every processor is Normal (0 on failure).
///
/// Empirical note (E9): this maximizes the *duration in steps* of
/// abnormality, but a one-move-per-step central schedule completes rounds
/// slowly, so its rounds-to-normal comes out LOWER than the randomized
/// search over synchronous/distributed daemons — a nice illustration that
/// the paper's round measure charges the adversary for stalling.  It is
/// kept as an independent probe: its results must (and do) respect
/// Theorem 1 like every other schedule.
[[nodiscard]] std::uint64_t greedy_delay_rounds_to_normal(
    const graph::Graph& g, pif::CorruptionKind corruption, std::uint64_t seed,
    std::uint64_t max_steps = 200'000);

}  // namespace snappif::analysis
