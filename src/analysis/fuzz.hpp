// Randomized snap-property fuzzing as a library (the engine behind the
// snappif_fuzz tool and its determinism tests).
//
// The instance for iteration i is a PURE FUNCTION of (master_seed, i): the
// iteration draws everything from an RNG seeded with
// par::shard_seed(master_seed, i).  That is what makes the parallel run a
// refactoring-invariant of the sequential one — shards own disjoint index
// ranges, every index computes the same instance and verdict everywhere, and
// "first failure" is simply the lowest failing index.  (The pre-parallel
// tool threaded one rolling RNG through all iterations, so replaying run k
// required re-running 1..k-1; the index-seeded scheme replays any iteration
// in isolation: snappif_fuzz --seed=M --only=I.)
//
// run_fuzz processes indices in fixed WAVES (kWaveIterations each, cut into
// kShardsPerWave shards) regardless of worker count, and stops after the
// first wave that contains a failure.  Fixed wave boundaries mean the set of
// reported failures — every failure in that wave, sorted by index — is
// identical for 1, 2, or 8 workers.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/runners.hpp"
#include "graph/graph.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "par/pool.hpp"

namespace snappif::analysis {

struct FuzzOptions {
  std::uint64_t master_seed = 1;
  /// Random instances use n in [3, max_n].
  graph::NodeId max_n = 24;
  /// Execution engine for every iteration.  Not drawn from the instance RNG
  /// (and default mask) so existing (master_seed, index) -> verdict mappings
  /// and metric fingerprints are unchanged; the engines are trajectory-
  /// equivalent, so either engine finds the same violations.
  sim::EngineKind engine = sim::EngineKind::kMask;
  /// Broken-variant hook forwarded to RunConfig::tweak_params (tests use a
  /// guard ablation to make violations reachable).
  std::function<void(pif::Params&)> tweak_params;
};

/// The fully derived random instance of one iteration (everything needed to
/// print a human-readable reproduction recipe).
struct FuzzInstance {
  graph::NodeId n = 0;
  std::uint64_t extra_edges = 0;
  std::uint64_t graph_seed = 0;
  sim::DaemonKind daemon = sim::DaemonKind::kDistributedRandom;
  pif::CorruptionKind corruption = pif::CorruptionKind::kUniformRandom;
  sim::ActionPolicy policy = sim::ActionPolicy::kFirstEnabled;
  sim::ProcessorId root = 0;
  std::uint64_t run_seed = 0;
};

struct FuzzFailure {
  std::uint64_t index = 0;  // iteration index (0-based)
  FuzzInstance instance;
  SnapResult result;
};

/// Derives iteration `index`'s instance without running it.
[[nodiscard]] FuzzInstance fuzz_instance(const FuzzOptions& opts,
                                         std::uint64_t index);

/// Runs exactly one iteration; a failure reports the violated snap check.
[[nodiscard]] std::optional<FuzzFailure> run_fuzz_iteration(
    const FuzzOptions& opts, std::uint64_t index);

/// Same, recording telemetry into `registry` (nullable): counters
/// fuzz.iterations / fuzz.violations, the fuzz.instance.n histogram, and
/// fuzz.rounds_to_start / fuzz.rounds_to_close / fuzz.steps statistics.
/// Only registry-order-invariant content is recorded, so merged fuzz metrics
/// fingerprint identically for any worker count.
[[nodiscard]] std::optional<FuzzFailure> run_fuzz_iteration(
    const FuzzOptions& opts, std::uint64_t index, obs::Registry* registry);

/// Replays `failure`'s iteration with a pif::WaveTraceProbe streaming into
/// `flight` and stamps the flight context (scenario "analysis.fuzz", the
/// master seed, shard = failing index, the violated-check diagnosis) plus a
/// packed pif.codec.v1 snapshot of the final configuration.  The tracing
/// probes attach AFTER corruption — identical trajectory to the plain run,
/// verified by the determinism tests.  The caller stamps tool/replay.
void record_fuzz_flight(const FuzzOptions& opts, const FuzzFailure& failure,
                        obs::FlightRecorder& flight);

/// Human-readable diagnosis of a failed SnapResult ("first cycle violated
/// [PIF1]" etc.); used for flight contexts and tool output.
[[nodiscard]] std::string snap_failure_text(const SnapResult& result);

struct FuzzReport {
  std::uint64_t iterations_run = 0;
  /// All failures of the first failing wave, sorted by index; empty on a
  /// clean run.  failures.front() is THE deterministic first failure.
  std::vector<FuzzFailure> failures;
  /// Per-shard registries merged in shard (= index) order: bit-identical for
  /// any worker count, so obs::fingerprint(metrics) is a regression-stable
  /// run digest (the --metrics-out payload).
  obs::Registry metrics;
};

/// Wave shape: fixed so results cannot depend on worker count.
inline constexpr std::uint64_t kFuzzIterationsPerShard = 16;
inline constexpr std::uint64_t kFuzzShardsPerWave = 16;
inline constexpr std::uint64_t kFuzzWaveIterations =
    kFuzzIterationsPerShard * kFuzzShardsPerWave;

/// Runs iterations [0, iterations) — 0 means unbounded, which requires a
/// failure (or an external SIGKILL) to stop, exactly like the tool's soak
/// mode.  `progress` (optional) is called after each wave with the total
/// number of iterations completed.  Deterministic in (opts, iterations) for
/// any `pool`, including none.
[[nodiscard]] FuzzReport run_fuzz(
    const FuzzOptions& opts, std::uint64_t iterations,
    par::ThreadPool* pool = nullptr,
    const std::function<void(std::uint64_t, const FuzzInstance&)>& progress =
        {});

}  // namespace snappif::analysis
