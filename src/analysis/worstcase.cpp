#include "analysis/worstcase.hpp"

#include "pif/checker.hpp"
#include "pif/faults.hpp"
#include "util/rng.hpp"

namespace snappif::analysis {

WorstCaseResult find_worst_case(const graph::Graph& g, WorstCaseMetric metric,
                                std::uint64_t trials, std::uint64_t seed) {
  WorstCaseResult result;
  util::Rng rng(seed);
  const auto daemons = sim::standard_daemon_kinds();
  const auto corruptions = pif::all_corruption_kinds();

  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    RunConfig rc;
    rc.daemon = daemons[trial % daemons.size()];
    rc.policy = (trial / daemons.size()) % 2 == 0
                    ? sim::ActionPolicy::kFirstEnabled
                    : sim::ActionPolicy::kRandomEnabled;
    rc.corruption = corruptions[trial % corruptions.size()];
    rc.seed = rng();
    ++result.trials;

    std::uint64_t value = 0;
    bool ok = false;
    switch (metric) {
      case WorstCaseMetric::kRoundsToNormal: {
        const auto r = measure_stabilization(g, rc);
        ok = r.ok;
        value = r.rounds_to_all_normal;
        break;
      }
      case WorstCaseMetric::kRoundsToSbn: {
        const auto r = measure_stabilization(g, rc);
        ok = r.ok;
        value = r.rounds_to_sbn;
        break;
      }
      case WorstCaseMetric::kCycleRounds: {
        const auto r = run_cycle_from_sbn(g, rc);
        ok = r.ok;
        value = r.rounds;
        break;
      }
    }
    if (!ok) {
      ++result.failures;
      continue;
    }
    if (value > result.worst) {
      result.worst = value;
      result.worst_seed = rc.seed;
      result.worst_daemon = rc.daemon;
    }
  }
  return result;
}

namespace {

/// Central daemon that executes one pre-chosen processor.
class FixedChoiceDaemon final : public sim::IDaemon {
 public:
  void choose(sim::ProcessorId p) noexcept { choice_ = p; }
  void select(std::span<const sim::ProcessorId> enabled,
              const sim::DaemonContext&, util::Rng&,
              std::vector<sim::ProcessorId>& out) override {
    for (sim::ProcessorId p : enabled) {
      if (p == choice_) {
        out.push_back(p);
        return;
      }
    }
    out.push_back(enabled.front());  // defensive; should not happen
  }
  [[nodiscard]] std::string_view name() const override { return "fixed"; }

 private:
  sim::ProcessorId choice_ = 0;
};

}  // namespace

std::uint64_t greedy_delay_rounds_to_normal(const graph::Graph& g,
                                            pif::CorruptionKind corruption,
                                            std::uint64_t seed,
                                            std::uint64_t max_steps) {
  util::Rng rng(seed);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, rng());
  pif::apply_corruption(sim, corruption, rng);
  pif::Checker checker(sim.protocol());

  // Fairness bookkeeping: never let a processor stay enabled-but-unchosen
  // for more than 4n consecutive steps.
  std::vector<std::uint32_t> ages(g.n(), 0);
  const std::uint32_t fairness_bound = 4 * g.n();
  FixedChoiceDaemon daemon;

  std::uint64_t steps = 0;
  while (!checker.all_normal(sim.config())) {
    if (steps++ >= max_steps) {
      return 0;
    }
    const auto enabled = sim.enabled_processors();
    if (enabled.empty()) {
      return 0;  // terminal before normality: should be impossible
    }
    // Forced pick if someone is starving (weak fairness).
    sim::ProcessorId pick = enabled.front();
    bool forced = false;
    for (sim::ProcessorId p : enabled) {
      if (ages[p] >= fairness_bound) {
        pick = p;
        forced = true;
        break;
      }
    }
    if (!forced) {
      // One-step lookahead: keep the network sick as long as possible —
      // maximize the number of abnormal processors after the step, and
      // among ties prefer completing rounds (burning the round budget).
      // The copied probe carries the cached action masks, so the step costs
      // only the dirty-neighborhood refresh; count_abnormal is the
      // allocation-free GuardEval sweep.
      std::int64_t best_score = -1;
      for (sim::ProcessorId p : enabled) {
        sim::Simulator<pif::PifProtocol> probe = sim;  // value copy
        daemon.choose(p);
        probe.step(daemon);
        const auto abnormal =
            static_cast<std::int64_t>(checker.count_abnormal(probe.config()));
        const auto rounds_delta =
            static_cast<std::int64_t>(probe.rounds() - sim.rounds());
        const std::int64_t score = abnormal * 4 + rounds_delta;
        if (score > best_score) {
          best_score = score;
          pick = p;
        }
      }
    }
    daemon.choose(pick);
    sim.step(daemon);
    for (sim::ProcessorId p = 0; p < g.n(); ++p) {
      if (!sim.is_enabled(p)) {
        ages[p] = 0;
      } else if (p == pick) {
        ages[p] = 0;
      } else {
        ++ages[p];
      }
    }
  }
  return sim.rounds();
}

}  // namespace snappif::analysis
