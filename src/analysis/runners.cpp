#include "analysis/runners.hpp"

#include <memory>

#include "baselines/selfstab_pif.hpp"
#include "pif/soa_engine.hpp"
#include "baselines/tree_pif.hpp"
#include "graph/properties.hpp"
#include "pif/instrument.hpp"
#include "util/assert.hpp"

namespace snappif::analysis {

namespace {

using PifEngine = sim::IEngine<pif::PifProtocol>;

/// Builds a corrupted, ready-to-run PIF engine per the RunConfig.  This is
/// the single choke point where RunConfig::engine picks the implementation:
/// every runner drives the type-erased IEngine from here on.
struct Bench {
  std::unique_ptr<PifEngine> sim;
  std::unique_ptr<sim::IDaemon> daemon;
  util::Rng rng;

  Bench(const graph::Graph& g, const RunConfig& rc, bool corrupt)
      : rng(rc.seed) {
    sim = pif::make_engine(rc.engine, g, params_for(g, rc), rng());
    sim->set_action_policy(rc.policy);
    sim->set_score([](const pif::State& s) {
      return static_cast<std::int64_t>(s.level);
    });
    daemon = sim::make_daemon(rc.daemon);
    if (corrupt) {
      pif::apply_corruption(*sim, rc.corruption, rng);
    }
  }
};

}  // namespace

pif::Params params_for(const graph::Graph& g, const RunConfig& rc) {
  pif::Params params = pif::Params::for_graph(g, rc.root);
  if (rc.l_max_override != 0) {
    SNAPPIF_ASSERT(g.n() <= 1 || rc.l_max_override >= g.n() - 1);
    params.l_max = rc.l_max_override;
  }
  params.min_level_potential = rc.min_level_potential;
  if (rc.tweak_params) {
    rc.tweak_params(params);
  }
  return params;
}

StabilizationResult measure_stabilization(const graph::Graph& g,
                                          const RunConfig& rc) {
  Bench bench(g, rc, /*corrupt=*/true);
  pif::Checker checker(bench.sim->protocol());
  StabilizationResult result;
  result.l_max = bench.sim->protocol().params().l_max;

  sim::RunLimits limits;
  limits.max_steps = rc.max_steps;

  // Milestone 1 (Theorem 1): every processor Normal.
  auto r1 = bench.sim->run_until(
      *bench.daemon,
      [&](const pif::Config& c) { return checker.all_normal(c); }, limits);
  if (r1.reason != sim::StopReason::kPredicate) {
    return result;  // ok stays false
  }
  result.rounds_to_all_normal = r1.rounds;
  result.steps = r1.steps;

  // Milestone 2: first SBN configuration.  (Composing Theorem 2's cases
  // bounds this by 9*Lmax + 8 from any start; see EXPERIMENTS.md E2.)
  auto r2 = bench.sim->run_until(
      *bench.daemon,
      [&](const pif::Config& c) { return checker.classify(c).sbn; }, limits);
  if (r2.reason != sim::StopReason::kPredicate) {
    return result;
  }
  result.rounds_to_sbn = result.rounds_to_all_normal + r2.rounds;
  result.steps += r2.steps;
  result.ok = true;
  return result;
}

namespace {

CycleResult run_one_cycle(PifEngine& sim, sim::IDaemon& daemon,
                          pif::GhostTracker& tracker, pif::Checker& checker,
                          std::uint64_t max_steps) {
  CycleResult result;
  const std::uint64_t cycles_before = tracker.cycles_completed();
  bool chordless_checked = false;
  bool chordless_ok = true;

  sim::RunLimits limits;
  limits.max_steps = max_steps;

  // Phase A: run until the root's F-action closes the cycle, checking the
  // chordless-parent-path property once the full tree is assembled (first
  // observation of Fok_r).
  auto ra = sim.run_until(
      daemon,
      [&](const pif::Config& c) {
        if (!chordless_checked) {
          const pif::State& sr = c.state(checker.protocol().root());
          if (sr.pif == pif::Phase::kB && sr.fok) {
            chordless_ok = checker.parent_paths_chordless(c);
            chordless_checked = true;
          }
        }
        return tracker.cycles_completed() > cycles_before;
      },
      limits);
  if (ra.reason != sim::StopReason::kPredicate) {
    return result;  // ok = false
  }
  result.rounds_to_feedback = ra.rounds;
  result.steps = ra.steps;

  const pif::CycleVerdict& verdict = tracker.last_cycle();
  result.pif1 = verdict.pif1;
  result.pif2 = verdict.pif2;
  result.height = verdict.tree_height;
  result.chordless = chordless_ok;

  // Phase B: cleaning back to the normal starting configuration.
  auto rb = sim.run_until(
      daemon, [&](const pif::Config& c) { return checker.all_c(c); }, limits);
  if (rb.reason != sim::StopReason::kPredicate) {
    return result;
  }
  result.rounds = result.rounds_to_feedback + rb.rounds;
  result.steps += rb.steps;
  result.ok = verdict.ok();
  return result;
}

}  // namespace

CycleResult run_cycle_from_sbn(const graph::Graph& g, const RunConfig& rc) {
  auto cycles = run_cycles_from_sbn(g, rc, 1);
  return cycles.at(0);
}

std::vector<CycleResult> run_cycles_from_sbn(const graph::Graph& g,
                                             const RunConfig& rc,
                                             std::size_t cycles) {
  Bench bench(g, rc, /*corrupt=*/false);
  pif::Checker checker(bench.sim->protocol());
  pif::GhostTracker tracker(g, bench.sim->protocol().root());
  pif::attach(*bench.sim, tracker);

  std::vector<CycleResult> results;
  for (std::size_t i = 0; i < cycles; ++i) {
    results.push_back(run_one_cycle(*bench.sim, *bench.daemon, tracker, checker,
                                    rc.max_steps));
    if (!results.back().ok) {
      break;
    }
  }
  return results;
}

SnapResult check_snap_first_cycle(const graph::Graph& g, const RunConfig& rc) {
  Bench bench(g, rc, /*corrupt=*/true);
  pif::GhostTracker tracker(g, bench.sim->protocol().root());
  pif::attach(*bench.sim, tracker);

  SnapResult result;
  sim::RunLimits limits;
  limits.max_steps = rc.max_steps;

  // Wait for the root to initiate a broadcast (its B-action).
  auto ra = bench.sim->run_until(
      *bench.daemon,
      [&](const pif::Config&) {
        return tracker.cycle_active() || tracker.cycles_completed() > 0;
      },
      limits);
  if (ra.reason != sim::StopReason::kPredicate) {
    return result;
  }
  result.rounds_to_start = ra.rounds;
  result.steps = ra.steps;

  // Run that first cycle to its close.
  auto rb = bench.sim->run_until(
      *bench.daemon,
      [&](const pif::Config&) { return tracker.cycles_completed() > 0; },
      limits);
  if (rb.reason != sim::StopReason::kPredicate) {
    return result;
  }
  result.rounds_to_close = rb.rounds;
  result.steps += rb.steps;

  const pif::CycleVerdict& verdict = tracker.verdicts().front();
  result.cycle_completed = true;
  result.pif1 = verdict.pif1;
  result.pif2 = verdict.pif2;
  result.aborted = verdict.aborted;
  return result;
}

SelfStabResult check_selfstab_first_cycles(const graph::Graph& g,
                                           const RunConfig& rc) {
  util::Rng rng(rc.seed);
  baselines::SelfStabPifProtocol protocol(g, rc.root);
  sim::Simulator<baselines::SelfStabPifProtocol> sim(std::move(protocol), g,
                                                     rng());
  sim.set_action_policy(rc.policy);
  auto daemon = sim::make_daemon(rc.daemon);
  baselines::SelfStabGhost ghost(g, rc.root);
  sim.set_apply_hook(
      [&ghost](sim::ProcessorId p, sim::ActionId a,
               const sim::Configuration<baselines::SelfStabState>& before,
               const baselines::SelfStabState& after) {
        ghost.on_apply(p, a, before, after);
      });
  sim.randomize(rng);

  SelfStabResult result;
  sim::RunLimits limits;
  limits.max_steps = rc.max_steps;
  auto r = sim.run_until(
      *daemon,
      [&](const sim::Configuration<baselines::SelfStabState>&) {
        return ghost.first_ok_wave() != 0;
      },
      limits);
  if (r.reason != sim::StopReason::kPredicate) {
    return result;
  }
  result.ok = true;
  result.failed_waves = ghost.first_ok_wave() - 1;
  result.rounds_to_first_ok = r.rounds;
  result.steps = r.steps;
  return result;
}

TreePifResult measure_tree_pif(const graph::Graph& g, const RunConfig& rc) {
  util::Rng rng(rc.seed);
  const auto tree = graph::bfs_tree(g, rc.root);
  TreePifResult result;

  // Steady-state cost from a clean start: measure the second cycle (the
  // first includes the initial B-action's round alignment).
  {
    baselines::TreePifProtocol protocol(g, rc.root, tree.parent);
    sim::Simulator<baselines::TreePifProtocol> sim(protocol, g, rng());
    sim.set_action_policy(rc.policy);
    auto daemon = sim::make_daemon(rc.daemon);
    baselines::TreePifGhost ghost(g, rc.root);
    sim.set_apply_hook(
        [&ghost, &protocol](sim::ProcessorId p, sim::ActionId a,
                            const sim::Configuration<baselines::TreePifState>& before,
                            const baselines::TreePifState& after) {
          ghost.on_apply(p, a, before, after, protocol);
        });
    sim::RunLimits limits;
    limits.max_steps = rc.max_steps;
    auto warm = sim.run_until(
        *daemon,
        [&](const auto&) { return ghost.cycles_completed() >= 1; }, limits);
    if (warm.reason != sim::StopReason::kPredicate) {
      return result;
    }
    // Cleaning back to all-C, then one measured cycle.
    auto clean = sim.run_until(
        *daemon,
        [&](const sim::Configuration<baselines::TreePifState>& c) {
          for (sim::ProcessorId p = 0; p < c.n(); ++p) {
            if (c.state(p).pif != baselines::TreePhase::kC) {
              return false;
            }
          }
          return true;
        },
        limits);
    if (clean.reason != sim::StopReason::kPredicate) {
      return result;
    }
    auto measured = sim.run_until(
        *daemon,
        [&](const sim::Configuration<baselines::TreePifState>& c) {
          if (ghost.cycles_completed() < 2) {
            return false;
          }
          for (sim::ProcessorId p = 0; p < c.n(); ++p) {
            if (c.state(p).pif != baselines::TreePhase::kC) {
              return false;
            }
          }
          return true;
        },
        limits);
    if (measured.reason != sim::StopReason::kPredicate) {
      return result;
    }
    result.rounds_per_cycle = measured.rounds;
    result.steps_per_cycle = measured.steps;
  }

  // Snap check from a corrupted start: is the first completed cycle a
  // correct PIF cycle?  (For the fixed-tree baseline it often is not.)
  {
    baselines::TreePifProtocol protocol(g, rc.root, tree.parent);
    sim::Simulator<baselines::TreePifProtocol> sim(protocol, g, rng());
    sim.set_action_policy(rc.policy);
    auto daemon = sim::make_daemon(rc.daemon);
    baselines::TreePifGhost ghost(g, rc.root);
    sim.set_apply_hook(
        [&ghost, &protocol](sim::ProcessorId p, sim::ActionId a,
                            const sim::Configuration<baselines::TreePifState>& before,
                            const baselines::TreePifState& after) {
          ghost.on_apply(p, a, before, after, protocol);
        });
    sim.randomize(rng);
    sim::RunLimits limits;
    limits.max_steps = rc.max_steps;
    auto r = sim.run_until(
        *daemon,
        [&](const auto&) { return ghost.cycles_completed() >= 1; }, limits);
    if (r.reason == sim::StopReason::kPredicate) {
      result.first_cycle_ok = ghost.last_ok();
      result.ok = true;
    }
  }
  return result;
}

}  // namespace snappif::analysis
