// Reusable experiment runners: every bench binary and most integration tests
// drive the simulator through these, so benches and tests measure the same
// thing.  Each runner builds a fresh simulator, applies the requested
// corruption, runs under the requested daemon, and reports the milestones the
// paper's theorems bound.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "pif/checker.hpp"
#include "pif/faults.hpp"
#include "pif/ghost.hpp"
#include "pif/protocol.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"
#include "sim/simulator.hpp"

namespace snappif::analysis {

/// Common experiment knobs.
struct RunConfig {
  /// Which execution engine to drive (mask oracle or the SoA engine).  The
  /// engines are bit-for-bit equivalent, so this changes throughput only;
  /// every runner below honors it through one build choke point.
  sim::EngineKind engine = sim::EngineKind::kMask;
  sim::DaemonKind daemon = sim::DaemonKind::kDistributedRandom;
  pif::CorruptionKind corruption = pif::CorruptionKind::kUniformRandom;
  std::uint64_t seed = 1;
  sim::ActionPolicy policy = sim::ActionPolicy::kFirstEnabled;
  std::uint64_t max_steps = 4'000'000;
  /// The initiator r (any processor may be the root; Section 2).
  sim::ProcessorId root = 0;
  /// Overrides for the protocol parameters; 0 = canonical (for_graph).
  std::uint32_t l_max_override = 0;
  bool min_level_potential = true;  // E7 ablation switch
  /// Hook for deliberately broken protocol variants (guard ablations);
  /// applied by params_for after the overrides above.  Used by the fuzz
  /// harness and its determinism tests to make violations findable.
  std::function<void(pif::Params&)> tweak_params;
};

/// Milestones of error correction / tree formation (Theorems 1 and 3).
struct StabilizationResult {
  bool ok = false;                       // all milestones reached within limits
  std::uint64_t rounds_to_all_normal = 0;  // Theorem 1: <= 3*Lmax + 3
  std::uint64_t rounds_to_sbn = 0;         // Theorem 3-ish: <= 8*Lmax + 7
  std::uint64_t steps = 0;
  std::uint32_t l_max = 0;
};

/// From a corrupted configuration, measures rounds until every processor is
/// normal and until the first SBN configuration.
[[nodiscard]] StabilizationResult measure_stabilization(const graph::Graph& g,
                                                        const RunConfig& rc);

/// One full PIF cycle from the normal starting configuration (Theorem 4).
struct CycleResult {
  bool ok = false;            // cycle completed and returned to SBN
  std::uint64_t rounds = 0;   // SBN -> ... -> SBN (one full cycle)
  std::uint64_t rounds_to_feedback = 0;  // SBN -> root F-action
  std::uint64_t steps = 0;
  std::uint32_t height = 0;   // h: height of the constructed broadcast tree
  bool chordless = true;      // all parent paths chordless at full-tree time
  bool pif1 = false;
  bool pif2 = false;
};

[[nodiscard]] CycleResult run_cycle_from_sbn(const graph::Graph& g,
                                             const RunConfig& rc);

/// Runs `cycles` back-to-back cycles from SBN; returns per-cycle results.
[[nodiscard]] std::vector<CycleResult> run_cycles_from_sbn(const graph::Graph& g,
                                                           const RunConfig& rc,
                                                           std::size_t cycles);

/// The snap-stabilization experiment (E4): corrupt, run until the root
/// initiates a broadcast and that first cycle closes, and report whether the
/// first cycle satisfied [PIF1] and [PIF2].
struct SnapResult {
  bool cycle_completed = false;
  bool pif1 = false;
  bool pif2 = false;
  bool aborted = false;       // root B-correction mid-cycle (must not happen)
  std::uint64_t rounds_to_start = 0;  // corruption -> root B-action
  std::uint64_t rounds_to_close = 0;  // root B-action -> root F-action
  std::uint64_t steps = 0;

  [[nodiscard]] bool ok() const noexcept {
    return cycle_completed && pif1 && pif2 && !aborted;
  }
};

[[nodiscard]] SnapResult check_snap_first_cycle(const graph::Graph& g,
                                                const RunConfig& rc);

/// Baseline counterpart of check_snap_first_cycle for the self-stabilizing
/// PIF: from a corrupted configuration, how many waves does the root
/// spuriously complete before the first wave that actually reached everyone?
struct SelfStabResult {
  bool ok = false;                  // a correct wave eventually happened
  std::uint64_t failed_waves = 0;   // completed waves before the first correct one
  std::uint64_t rounds_to_first_ok = 0;
  std::uint64_t steps = 0;
};

[[nodiscard]] SelfStabResult check_selfstab_first_cycles(const graph::Graph& g,
                                                         const RunConfig& rc);

/// Baseline counterpart for the fixed-tree PIF (E8 cost + E5 failure rate).
struct TreePifResult {
  bool ok = false;
  std::uint64_t rounds_per_cycle = 0;  // steady-state cycle cost (clean start)
  std::uint64_t steps_per_cycle = 0;
  bool first_cycle_ok = false;         // from corrupted start
};

[[nodiscard]] TreePifResult measure_tree_pif(const graph::Graph& g,
                                             const RunConfig& rc);

/// Helper: canonical protocol parameters for `g` honoring RunConfig
/// overrides.
[[nodiscard]] pif::Params params_for(const graph::Graph& g, const RunConfig& rc);

}  // namespace snappif::analysis
