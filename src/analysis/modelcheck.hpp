// Exhaustive model checking of the PIF protocol on tiny instances.
//
// For graphs small enough that a processor state fits in a few bits, we can
// do what randomized testing cannot: *prove* properties over every initial
// configuration and every daemon choice.
//
//   * check_no_deadlock — enumerates ALL configurations (the full product of
//     the variable domains of Section 3) and verifies at least one action is
//     enabled in each.  Snap-stabilization would be vacuous if an arbitrary
//     initial configuration could freeze the network.
//
//   * exhaustive_snap_check — BFS over (configuration x ghost) states, seeded
//     with every configuration, exploring every non-empty subset of enabled
//     processors and every enabled-action choice (the full distributed
//     daemon).  Verifies that every root F-action closing a root-initiated
//     cycle has delivered the message to all and collected every
//     acknowledgment ([PIF1] and [PIF2] of Definition 2), and that the root
//     never aborts an initiated cycle.
//
// States are packed losslessly into 64 bits (widths derived from the
// domains), so the visited set is exact — no hash-collision soundness hole.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "par/pool.hpp"
#include "pif/protocol.hpp"

namespace snappif::analysis {

struct DeadlockReport {
  std::uint64_t configurations = 0;
  std::uint64_t deadlocks = 0;
  /// A packed witness of the first deadlock (valid iff deadlocks > 0).
  std::uint64_t witness = 0;
};

/// Enumerates every configuration of `protocol` on its graph and counts
/// configurations with no enabled processor.  Feasible up to ~40M
/// configurations (n = 4 with canonical parameters).
///
/// With a pool, the packed-configuration space is partitioned into
/// contiguous index ranges checked concurrently; counts are sums and the
/// witness is the first deadlock in enumeration order (lowest range wins),
/// so the report is bit-identical for any worker count, including none.
[[nodiscard]] DeadlockReport check_no_deadlock(const graph::Graph& g,
                                               const pif::PifProtocol& protocol,
                                               par::ThreadPool* pool = nullptr);

struct SnapCheckReport {
  bool complete = false;          // false if the state cap was hit
  std::uint64_t states = 0;       // distinct (config, ghost) states visited
  std::uint64_t transitions = 0;
  std::uint64_t cycle_closures = 0;  // root F-actions closing tracked cycles
  std::uint64_t violations = 0;   // closures with PIF1 or PIF2 violated
  std::uint64_t aborts = 0;       // root B-corrections inside tracked cycles
  std::uint64_t deadlocks = 0;
};

/// Exhaustive snap-stabilization check; see header comment.  `max_states`
/// caps exploration (report.complete tells whether the proof finished).
/// With `normal_starts_only` the BFS is seeded from every all-Normal
/// configuration instead of every configuration — a weaker statement
/// ("snap from any post-correction state", the regime Theorem 1 guarantees
/// within 3·Lmax+3 rounds) that stays tractable one network size further
/// (n = 4: the full space has ~36M configurations; the normal slice is
/// small enough to explore).
/// The exploration is level-synchronous: each BFS frontier is cut into
/// fixed-size chunks expanded concurrently (when a pool is given), and the
/// per-chunk counter deltas and successor lists are folded in chunk order.
/// Every visited state is expanded exactly once and all report fields are
/// order-independent sums, so the report is bit-identical for any worker
/// count.  The `max_states` cap is checked between levels (a capped report
/// may overshoot by up to one frontier's insertions, as report.states
/// always told callers how far it got).
[[nodiscard]] SnapCheckReport exhaustive_snap_check(
    const graph::Graph& g, const pif::PifProtocol& protocol,
    std::uint64_t max_states = 200'000'000, bool normal_starts_only = false,
    par::ThreadPool* pool = nullptr);

/// Number of bits needed to pack one full (config, ghost) state; the checks
/// above require this to be <= 64.
[[nodiscard]] unsigned packed_state_bits(const graph::Graph& g,
                                         const pif::PifProtocol& protocol);

struct LivenessReport {
  bool complete = false;          // false if the step cap was hit somewhere
  std::uint64_t start_configs = 0;
  std::uint64_t memo_states = 0;
  /// Max steps from any start configuration to the first completed
  /// root-initiated cycle (the root's F-action closing a tracked cycle).
  std::uint64_t max_steps_to_closure = 0;
  /// Configurations from which the deterministic schedule never closes a
  /// cycle (loops or exceeds the cap) — must be zero.
  std::uint64_t stuck = 0;
};

/// Liveness complement to exhaustive_snap_check: the BFS proves safety over
/// every schedule; this proves progress over one concrete weakly fair
/// schedule — the deterministic synchronous daemon with first-enabled
/// action choice.  From EVERY initial configuration the execution must
/// complete a root-initiated PIF cycle within finitely many steps (detected
/// by memoized walking of the deterministic successor chain; a cycle in the
/// state graph before closure counts as stuck).
[[nodiscard]] LivenessReport synchronous_liveness_check(
    const graph::Graph& g, const pif::PifProtocol& protocol,
    std::uint64_t step_cap = 100'000);

}  // namespace snappif::analysis
