#include "analysis/atomicity.hpp"

#include <deque>
#include <vector>

#include "pif/ghost.hpp"
#include "pif/protocol.hpp"
#include "sim/configuration.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace snappif::analysis {

namespace {

using pif::PifProtocol;
using pif::State;
using sim::ActionId;
using sim::ProcessorId;

struct PendingWrite {
  std::uint64_t commit_step;
  ProcessorId processor;
  ActionId action;
  State next;
};

}  // namespace

AtomicityResult check_snap_with_delayed_commits(const graph::Graph& g,
                                                pif::CorruptionKind corruption,
                                                double delay_probability,
                                                std::uint64_t seed,
                                                std::uint64_t max_steps) {
  util::Rng rng(seed);
  PifProtocol protocol(g, pif::Params::for_graph(g));
  // Reuse the Simulator only to produce the corrupted starting
  // configuration with the exact same recipes as every other experiment.
  sim::Simulator<PifProtocol> seeder(protocol, g, rng());
  pif::apply_corruption(seeder, corruption, rng);
  sim::Configuration<State> c = seeder.config();

  pif::GhostTracker tracker(g, protocol.root());
  std::deque<PendingWrite> pending;
  std::vector<bool> write_in_flight(g.n(), false);

  AtomicityResult result;
  for (std::uint64_t step = 0; step < max_steps; ++step) {
    tracker.note_step(step);
    result.steps = step;

    // Commit due writes (oldest first).
    while (!pending.empty() && pending.front().commit_step <= step) {
      const PendingWrite write = pending.front();
      pending.pop_front();
      c.state(write.processor) = write.next;
      write_in_flight[write.processor] = false;
      // Acknowledgments (and phase bookkeeping) fire when the write lands.
      // Receipt (B-action) already fired at read time.
      if (write.action != pif::kBAction) {
        tracker.on_apply(write.processor, write.action,
                         c.state(write.processor));
      }
      if (tracker.cycles_completed() > 0) {
        break;
      }
    }
    if (tracker.cycles_completed() > 0) {
      break;
    }

    // Central schedule: pick one enabled processor without an in-flight
    // write (its own pending write would otherwise race with itself).
    std::vector<std::pair<ProcessorId, ActionId>> enabled;
    for (ProcessorId p = 0; p < g.n(); ++p) {
      if (write_in_flight[p]) {
        continue;
      }
      const sim::ActionMask mask = protocol.enabled_mask(c, p);
      if (mask != 0) {
        enabled.emplace_back(p, sim::first_action(mask));
      }
    }
    if (enabled.empty()) {
      if (pending.empty()) {
        return result;  // genuine deadlock under this model
      }
      continue;  // wait for a commit to unblock someone
    }
    const auto [p, a] = enabled[rng.below(enabled.size())];
    const State next = protocol.apply(c, p, a);
    if (a == pif::kBAction) {
      // The read happens now: the processor receives the broadcast (or
      // mints the message, at the root) regardless of when the write lands.
      tracker.on_apply(p, a, next);
      if (tracker.cycles_completed() > 0) {
        break;
      }
    }
    if (delay_probability > 0.0 && rng.chance(delay_probability)) {
      pending.push_back({step + 1 + rng.below(3), p, a, next});
      write_in_flight[p] = true;
    } else {
      c.state(p) = next;
      if (a != pif::kBAction) {
        tracker.on_apply(p, a, c.state(p));
        if (tracker.cycles_completed() > 0) {
          break;
        }
      }
    }
  }

  if (tracker.cycles_completed() == 0) {
    return result;  // never closed a cycle: not completed
  }
  const pif::CycleVerdict& verdict = tracker.verdicts().front();
  result.cycle_completed = true;
  result.pif1 = verdict.pif1;
  result.pif2 = verdict.pif2;
  result.aborted = verdict.aborted;
  return result;
}

}  // namespace snappif::analysis
