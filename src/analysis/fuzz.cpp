#include "analysis/fuzz.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "graph/generators.hpp"
#include "par/shard.hpp"
#include "pif/codec.hpp"
#include "pif/faults.hpp"
#include "pif/ghost.hpp"
#include "pif/instrument.hpp"
#include "pif/soa_engine.hpp"
#include "pif/wave_trace.hpp"
#include "util/rng.hpp"

namespace snappif::analysis {

FuzzInstance fuzz_instance(const FuzzOptions& opts, std::uint64_t index) {
  util::Rng rng(par::shard_seed(opts.master_seed, index));
  const auto daemons = sim::standard_daemon_kinds();
  const auto corruptions = pif::all_corruption_kinds();

  FuzzInstance inst;
  inst.n = static_cast<graph::NodeId>(3 + rng.below(opts.max_n - 2));
  inst.extra_edges = rng.below(2 * inst.n);
  inst.graph_seed = rng();
  inst.daemon = daemons[rng.below(daemons.size())];
  inst.corruption = corruptions[rng.below(corruptions.size())];
  inst.policy = rng.chance(0.5) ? sim::ActionPolicy::kFirstEnabled
                                : sim::ActionPolicy::kRandomEnabled;
  inst.root = static_cast<sim::ProcessorId>(rng.below(inst.n));
  inst.run_seed = rng();
  return inst;
}

namespace {

RunConfig run_config_of(const FuzzOptions& opts, const FuzzInstance& inst) {
  RunConfig rc;
  rc.engine = opts.engine;
  rc.daemon = inst.daemon;
  rc.corruption = inst.corruption;
  rc.policy = inst.policy;
  rc.root = inst.root;
  rc.seed = inst.run_seed;
  rc.tweak_params = opts.tweak_params;
  return rc;
}

}  // namespace

std::optional<FuzzFailure> run_fuzz_iteration(const FuzzOptions& opts,
                                              std::uint64_t index) {
  return run_fuzz_iteration(opts, index, nullptr);
}

std::optional<FuzzFailure> run_fuzz_iteration(const FuzzOptions& opts,
                                              std::uint64_t index,
                                              obs::Registry* registry) {
  const FuzzInstance inst = fuzz_instance(opts, index);
  const graph::Graph g = graph::make_random_connected(
      inst.n, inst.extra_edges, inst.graph_seed);
  const RunConfig rc = run_config_of(opts, inst);
  const SnapResult result = check_snap_first_cycle(g, rc);

  if (registry != nullptr) {
    registry->counter("fuzz.iterations").inc();
    registry->histogram("fuzz.instance.n", 32, 1.0)
        .add(static_cast<double>(inst.n));
    if (result.cycle_completed) {
      registry->stats("fuzz.rounds_to_start")
          .add(static_cast<double>(result.rounds_to_start));
      registry->stats("fuzz.rounds_to_close")
          .add(static_cast<double>(result.rounds_to_close));
    }
    registry->stats("fuzz.steps").add(static_cast<double>(result.steps));
  }
  if (result.cycle_completed && result.ok()) {
    return std::nullopt;
  }
  if (registry != nullptr) {
    registry->counter("fuzz.violations").inc();
  }
  return FuzzFailure{index, inst, result};
}

std::string snap_failure_text(const SnapResult& result) {
  if (!result.cycle_completed) {
    return "first cycle did not complete within the step budget";
  }
  std::string text = "first cycle violated";
  if (!result.pif1) {
    text += " [PIF1]";
  }
  if (!result.pif2) {
    text += " [PIF2]";
  }
  if (result.aborted) {
    text += " (aborted by a root B-correction)";
  }
  return text;
}

void record_fuzz_flight(const FuzzOptions& opts, const FuzzFailure& failure,
                        obs::FlightRecorder& flight) {
  const FuzzInstance& inst = failure.instance;
  const graph::Graph g = graph::make_random_connected(
      inst.n, inst.extra_edges, inst.graph_seed);
  const RunConfig rc = run_config_of(opts, inst);

  // Inline replica of check_snap_first_cycle's Bench: seed draw order must
  // match exactly (sim seed is the FIRST rng() draw, corruption uses the
  // same stream afterwards) so the traced trajectory is the failing one.
  util::Rng rng(rc.seed);
  auto engine = pif::make_engine(rc.engine, g, params_for(g, rc), rng());
  sim::IEngine<pif::PifProtocol>& sim = *engine;
  sim.set_action_policy(rc.policy);
  sim.set_score(
      [](const pif::State& s) { return static_cast<std::int64_t>(s.level); });
  auto daemon = sim::make_daemon(rc.daemon);
  pif::apply_corruption(sim, rc.corruption, rng);

  // Tracing attaches AFTER corruption: probes are pure observers, and
  // skipping the per-set_state on_attach churn keeps the ring to real spans.
  pif::GhostTracker tracker(g, sim.protocol().root());
  pif::attach(sim, tracker);
  pif::WaveTraceProbe wave(rc.root, flight.spans());
  sim.add_probe(&wave);

  sim::RunLimits limits;
  limits.max_steps = rc.max_steps;
  auto ra = sim.run_until(
      *daemon,
      [&](const pif::Config&) {
        return tracker.cycle_active() || tracker.cycles_completed() > 0;
      },
      limits);
  if (ra.reason == sim::StopReason::kPredicate) {
    (void)sim.run_until(
        *daemon,
        [&](const pif::Config&) { return tracker.cycles_completed() > 0; },
        limits);
  }
  wave.finish();
  sim.remove_probe(&wave);

  obs::FlightContext& ctx = flight.context();
  ctx.scenario = "analysis.fuzz";
  ctx.seed = opts.master_seed;
  ctx.shard = failure.index;
  if (ctx.failure.empty()) {
    ctx.failure = snap_failure_text(failure.result);
  }
  const pif::StateCodec codec(g, sim.protocol().params());
  std::vector<std::uint64_t> words;
  words.reserve(g.n());
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    words.push_back(codec.encode(sim.config().state(p)));
  }
  flight.set_snapshot("pif.codec.v1", std::move(words));
}

FuzzReport run_fuzz(
    const FuzzOptions& opts, std::uint64_t iterations, par::ThreadPool* pool,
    const std::function<void(std::uint64_t, const FuzzInstance&)>& progress) {
  FuzzReport report;
  std::uint64_t next = 0;
  while (iterations == 0 || next < iterations) {
    const std::uint64_t wave_begin = next;
    std::uint64_t wave_len = kFuzzWaveIterations;
    if (iterations != 0) {
      wave_len = std::min(wave_len, iterations - wave_begin);
    }
    // Shard boundaries depend only on the wave shape, never on the pool.
    const std::size_t shards = static_cast<std::size_t>(
        (wave_len + kFuzzIterationsPerShard - 1) / kFuzzIterationsPerShard);
    struct ShardOut {
      std::vector<FuzzFailure> failures;
      obs::Registry metrics;
    };
    auto shard_out = par::run_shards(
        opts.master_seed, shards,
        [&](par::ShardContext& ctx) {
          ShardOut out;
          const std::uint64_t lo =
              wave_begin + ctx.index * kFuzzIterationsPerShard;
          const std::uint64_t hi = std::min(
              wave_begin + wave_len, lo + kFuzzIterationsPerShard);
          for (std::uint64_t i = lo; i < hi; ++i) {
            if (auto failure = run_fuzz_iteration(opts, i, &out.metrics)) {
              out.failures.push_back(std::move(*failure));
            }
          }
          return out;
        },
        pool);
    next = wave_begin + wave_len;
    report.iterations_run = next;
    for (auto& out : shard_out) {  // shard order == index order
      report.metrics.merge(out.metrics);
      for (auto& f : out.failures) {
        report.failures.push_back(std::move(f));
      }
    }
    if (!report.failures.empty()) {
      return report;  // first failing wave; failures already index-sorted
    }
    if (progress) {
      progress(next, fuzz_instance(opts, next - 1));
    }
  }
  return report;
}

}  // namespace snappif::analysis
