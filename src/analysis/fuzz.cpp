#include "analysis/fuzz.hpp"

#include <algorithm>

#include "graph/generators.hpp"
#include "par/shard.hpp"
#include "pif/faults.hpp"
#include "util/rng.hpp"

namespace snappif::analysis {

FuzzInstance fuzz_instance(const FuzzOptions& opts, std::uint64_t index) {
  util::Rng rng(par::shard_seed(opts.master_seed, index));
  const auto daemons = sim::standard_daemon_kinds();
  const auto corruptions = pif::all_corruption_kinds();

  FuzzInstance inst;
  inst.n = static_cast<graph::NodeId>(3 + rng.below(opts.max_n - 2));
  inst.extra_edges = rng.below(2 * inst.n);
  inst.graph_seed = rng();
  inst.daemon = daemons[rng.below(daemons.size())];
  inst.corruption = corruptions[rng.below(corruptions.size())];
  inst.policy = rng.chance(0.5) ? sim::ActionPolicy::kFirstEnabled
                                : sim::ActionPolicy::kRandomEnabled;
  inst.root = static_cast<sim::ProcessorId>(rng.below(inst.n));
  inst.run_seed = rng();
  return inst;
}

std::optional<FuzzFailure> run_fuzz_iteration(const FuzzOptions& opts,
                                              std::uint64_t index) {
  const FuzzInstance inst = fuzz_instance(opts, index);
  const graph::Graph g = graph::make_random_connected(
      inst.n, inst.extra_edges, inst.graph_seed);

  RunConfig rc;
  rc.daemon = inst.daemon;
  rc.corruption = inst.corruption;
  rc.policy = inst.policy;
  rc.root = inst.root;
  rc.seed = inst.run_seed;
  rc.tweak_params = opts.tweak_params;

  const SnapResult result = check_snap_first_cycle(g, rc);
  if (result.cycle_completed && result.ok()) {
    return std::nullopt;
  }
  return FuzzFailure{index, inst, result};
}

FuzzReport run_fuzz(
    const FuzzOptions& opts, std::uint64_t iterations, par::ThreadPool* pool,
    const std::function<void(std::uint64_t, const FuzzInstance&)>& progress) {
  FuzzReport report;
  std::uint64_t next = 0;
  while (iterations == 0 || next < iterations) {
    const std::uint64_t wave_begin = next;
    std::uint64_t wave_len = kFuzzWaveIterations;
    if (iterations != 0) {
      wave_len = std::min(wave_len, iterations - wave_begin);
    }
    // Shard boundaries depend only on the wave shape, never on the pool.
    const std::size_t shards = static_cast<std::size_t>(
        (wave_len + kFuzzIterationsPerShard - 1) / kFuzzIterationsPerShard);
    auto shard_failures = par::run_shards(
        opts.master_seed, shards,
        [&](par::ShardContext& ctx) {
          std::vector<FuzzFailure> found;
          const std::uint64_t lo =
              wave_begin + ctx.index * kFuzzIterationsPerShard;
          const std::uint64_t hi = std::min(
              wave_begin + wave_len, lo + kFuzzIterationsPerShard);
          for (std::uint64_t i = lo; i < hi; ++i) {
            if (auto failure = run_fuzz_iteration(opts, i)) {
              found.push_back(std::move(*failure));
            }
          }
          return found;
        },
        pool);
    next = wave_begin + wave_len;
    report.iterations_run = next;
    for (auto& failures : shard_failures) {  // shard order == index order
      for (auto& f : failures) {
        report.failures.push_back(std::move(f));
      }
    }
    if (!report.failures.empty()) {
      return report;  // first failing wave; failures already index-sorted
    }
    if (progress) {
      progress(next, fuzz_instance(opts, next - 1));
    }
  }
  return report;
}

}  // namespace snappif::analysis
