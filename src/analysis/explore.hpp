// Generic exhaustive exploration utilities for protocols with small finite
// state domains.
//
// check_no_deadlock_generic enumerates the FULL configuration space (the
// product of per-processor state domains supplied by the caller) and counts
// configurations in which no action is enabled anywhere.  Snap- and
// self-stabilization both implicitly assume the system can always move from
// any configuration; this check proves it for concrete tiny instances of ANY
// protocol implementing the sim::Protocol concept — it is how the
// Pre_Potential deadlock (DESIGN.md §2 item 4) was found, and how the
// baselines are certified deadlock-free too.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/configuration.hpp"
#include "sim/protocol.hpp"
#include "util/assert.hpp"

namespace snappif::analysis {

struct GenericDeadlockReport {
  std::uint64_t configurations = 0;
  std::uint64_t deadlocks = 0;
  /// First deadlocked configuration found (states per processor), empty if
  /// none.
  std::vector<std::uint64_t> witness_indices;
};

/// Enumerates every configuration of the product space described by
/// `domains` (domains[p] = all possible states of processor p) and invokes
/// `fn(states)` for each.  The callback receives a scratch vector reused
/// across calls.
template <typename S, typename Fn>
void enumerate_product(const std::vector<std::vector<S>>& domains, Fn&& fn) {
  const std::size_t n = domains.size();
  std::vector<std::size_t> index(n, 0);
  std::vector<S> states(n);
  for (std::size_t p = 0; p < n; ++p) {
    SNAPPIF_ASSERT_MSG(!domains[p].empty(), "empty state domain");
    states[p] = domains[p][0];
  }
  while (true) {
    fn(const_cast<const std::vector<S>&>(states));
    std::size_t p = 0;
    for (; p < n; ++p) {
      if (++index[p] < domains[p].size()) {
        states[p] = domains[p][index[p]];
        break;
      }
      index[p] = 0;
      states[p] = domains[p][0];
    }
    if (p == n) {
      return;
    }
  }
}

/// Exhaustive deadlock check over the full product space.
template <sim::Protocol P>
[[nodiscard]] GenericDeadlockReport check_no_deadlock_generic(
    const graph::Graph& g, const P& protocol,
    const std::vector<std::vector<typename P::State>>& domains) {
  SNAPPIF_ASSERT(domains.size() == g.n());
  GenericDeadlockReport report;
  sim::Configuration<typename P::State> scratch(g, domains[0][0]);
  std::vector<std::size_t> index(g.n(), 0);

  enumerate_product(domains, [&](const std::vector<typename P::State>& states) {
    ++report.configurations;
    for (sim::ProcessorId p = 0; p < g.n(); ++p) {
      scratch.state(p) = states[p];
    }
    bool any = false;
    for (sim::ProcessorId p = 0; p < g.n() && !any; ++p) {
      any = sim::enabled_mask(protocol, scratch, p) != 0;
    }
    if (!any) {
      ++report.deadlocks;
      if (report.witness_indices.empty()) {
        // Reconstruct the per-processor domain indices of the witness.
        report.witness_indices.resize(g.n());
        for (sim::ProcessorId p = 0; p < g.n(); ++p) {
          for (std::size_t i = 0; i < domains[p].size(); ++i) {
            if (domains[p][i] == states[p]) {
              report.witness_indices[p] = i;
              break;
            }
          }
        }
      }
    }
  });
  return report;
}

/// Total size of the product space (for sanity checks / feasibility gates).
template <typename S>
[[nodiscard]] std::uint64_t product_space_size(
    const std::vector<std::vector<S>>& domains) {
  std::uint64_t total = 1;
  for (const auto& domain : domains) {
    total *= domain.size();
  }
  return total;
}

}  // namespace snappif::analysis
