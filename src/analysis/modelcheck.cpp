#include "analysis/modelcheck.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "par/shard.hpp"
#include "sim/configuration.hpp"
#include "sim/protocol.hpp"
#include "util/assert.hpp"

namespace snappif::analysis {

namespace {

using pif::Phase;
using pif::PifProtocol;
using pif::State;
using sim::ActionId;
using sim::ProcessorId;
using Config = sim::Configuration<State>;

[[nodiscard]] unsigned bits_for_values(std::uint64_t values) {
  // Number of bits to store a value in [0, values).
  if (values <= 1) {
    return 0;
  }
  return std::bit_width(values - 1);
}

/// Lossless 64-bit packing of a configuration plus ghost bits.
class Packer {
 public:
  Packer(const graph::Graph& g, const PifProtocol& protocol)
      : g_(&g), protocol_(&protocol) {
    const auto& params = protocol.params();
    n_ = g.n();
    pif_bits_ = 2;
    fok_bits_ = 1;
    count_bits_ = bits_for_values(params.n_upper);  // count-1 in [0, N'-1]
    level_bits_ = bits_for_values(params.l_max);    // level-1 in [0, Lmax-1]
    total_bits_ = 0;
    for (ProcessorId p = 0; p < n_; ++p) {
      total_bits_ += pif_bits_ + fok_bits_ + count_bits_;
      if (!protocol.is_root(p)) {
        total_bits_ += level_bits_ + bits_for_values(g.degree(p));
      }
    }
    // Ghost: active bit + (received, holds, acked) per non-root processor.
    ghost_offset_ = total_bits_;
    total_bits_ += 1 + 3 * (n_ - 1);
  }

  [[nodiscard]] unsigned total_bits() const noexcept { return total_bits_; }

  struct Ghost {
    bool active = false;
    // Bit i refers to the i-th non-root processor (root implicit).
    std::uint32_t received = 0;
    std::uint32_t holds = 0;
    std::uint32_t acked = 0;

    [[nodiscard]] bool operator==(const Ghost&) const noexcept = default;
  };

  [[nodiscard]] std::uint64_t pack(const std::vector<State>& states,
                                   const Ghost& ghost) const {
    std::uint64_t word = 0;
    unsigned pos = 0;
    auto put = [&](std::uint64_t value, unsigned bits) {
      SNAPPIF_ASSERT(bits == 64 || value < (std::uint64_t{1} << bits));
      word |= value << pos;
      pos += bits;
    };
    for (ProcessorId p = 0; p < n_; ++p) {
      const State& s = states[p];
      put(static_cast<std::uint64_t>(s.pif), pif_bits_);
      put(s.fok ? 1 : 0, fok_bits_);
      put(s.count - 1, count_bits_);
      if (!protocol_->is_root(p)) {
        put(s.level - 1, level_bits_);
        put(neighbor_index(p, s.parent), bits_for_values(g_->degree(p)));
      }
    }
    put(ghost.active ? 1 : 0, 1);
    std::uint32_t non_root = 0;
    for (ProcessorId p = 0; p < n_; ++p) {
      if (protocol_->is_root(p)) {
        continue;
      }
      put((ghost.received >> non_root) & 1, 1);
      put((ghost.holds >> non_root) & 1, 1);
      put((ghost.acked >> non_root) & 1, 1);
      ++non_root;
    }
    SNAPPIF_ASSERT(pos == total_bits_);
    return word;
  }

  void unpack(std::uint64_t word, std::vector<State>& states,
              Ghost& ghost) const {
    unsigned pos = 0;
    auto take = [&](unsigned bits) -> std::uint64_t {
      const std::uint64_t mask =
          bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
      const std::uint64_t value = (word >> pos) & mask;
      pos += bits;
      return value;
    };
    states.resize(n_);
    for (ProcessorId p = 0; p < n_; ++p) {
      State& s = states[p];
      s.pif = static_cast<Phase>(take(pif_bits_));
      s.fok = take(fok_bits_) != 0;
      s.count = static_cast<std::uint32_t>(take(count_bits_)) + 1;
      if (protocol_->is_root(p)) {
        s.level = 0;
        s.parent = pif::kNoParent;
      } else {
        s.level = static_cast<std::uint32_t>(take(level_bits_)) + 1;
        s.parent =
            g_->neighbors(p)[take(bits_for_values(g_->degree(p)))];
      }
    }
    ghost = Ghost{};
    ghost.active = take(1) != 0;
    std::uint32_t non_root = 0;
    for (ProcessorId p = 0; p < n_; ++p) {
      if (protocol_->is_root(p)) {
        continue;
      }
      ghost.received |= static_cast<std::uint32_t>(take(1)) << non_root;
      ghost.holds |= static_cast<std::uint32_t>(take(1)) << non_root;
      ghost.acked |= static_cast<std::uint32_t>(take(1)) << non_root;
      ++non_root;
    }
  }

  /// Index of processor p among non-root processors (for ghost bits).
  [[nodiscard]] std::uint32_t non_root_index(ProcessorId p) const {
    SNAPPIF_ASSERT(!protocol_->is_root(p));
    return p < protocol_->root() ? p : p - 1;
  }

 private:
  [[nodiscard]] std::uint64_t neighbor_index(ProcessorId p,
                                             ProcessorId parent) const {
    const auto nbrs = g_->neighbors(p);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), parent);
    SNAPPIF_ASSERT(it != nbrs.end() && *it == parent);
    return static_cast<std::uint64_t>(it - nbrs.begin());
  }

  const graph::Graph* g_;
  const PifProtocol* protocol_;
  ProcessorId n_ = 0;
  unsigned pif_bits_ = 0, fok_bits_ = 0, count_bits_ = 0, level_bits_ = 0;
  unsigned total_bits_ = 0;
  unsigned ghost_offset_ = 0;
};

/// The full product of the variable domains of Section 3 as a mixed-radix
/// number, range-enumerable so contiguous index ranges can be handed to
/// shards.  fields_[0] is the LEAST significant digit; enumeration order is
/// therefore identical to the pre-parallel odometer, and the configuration
/// at linear index i is a pure function of i.
class ConfigSpace {
 public:
  ConfigSpace(const graph::Graph& g, const PifProtocol& protocol)
      : g_(&g), protocol_(&protocol) {
    const auto& params = protocol.params();
    for (ProcessorId p = 0; p < g.n(); ++p) {
      fields_.push_back({p, 0, 3});
      fields_.push_back({p, 1, 2});
      fields_.push_back({p, 2, params.n_upper});
      if (!protocol.is_root(p)) {
        fields_.push_back({p, 3, params.l_max});
        fields_.push_back({p, 4, g.degree(p)});
      }
    }
    total_ = 1;
    for (const auto& f : fields_) {
      SNAPPIF_ASSERT_MSG(
          f.radix != 0 && total_ <= ~std::uint64_t{0} / f.radix,
          "configuration space exceeds 2^64 linear indices");
      total_ *= f.radix;
    }
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Calls `fn(states)` for the configurations with linear indices in
  /// [lo, hi).  Decodes `lo` into mixed-radix digits, then runs the
  /// odometer — O(digits) startup, O(1) amortized per configuration.
  /// Thread-safe: all mutable state is local to the call.
  template <typename Fn>
  void enumerate_range(std::uint64_t lo, std::uint64_t hi, Fn&& fn) const {
    if (lo >= hi) {
      return;
    }
    const ProcessorId n = g_->n();
    std::vector<State> states(n);
    for (ProcessorId p = 0; p < n; ++p) {
      states[p] = protocol_->initial_state(p);
    }
    std::vector<std::uint64_t> value(fields_.size(), 0);
    std::uint64_t rem = lo;
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      value[i] = rem % fields_[i].radix;
      rem /= fields_[i].radix;
    }
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      materialize(i, value[i], states);
    }
    for (std::uint64_t index = lo; index < hi; ++index) {
      fn(const_cast<const std::vector<State>&>(states));
      // Odometer increment.
      std::size_t i = 0;
      for (; i < fields_.size(); ++i) {
        if (++value[i] < fields_[i].radix) {
          materialize(i, value[i], states);
          break;
        }
        value[i] = 0;
        materialize(i, 0, states);
      }
      if (i == fields_.size()) {
        return;  // wrapped past the last configuration (hi == total)
      }
    }
  }

  /// Splits [0, total) into up to `want` contiguous ranges of near-equal
  /// length (a pure function of (total, want) — never of worker count).
  struct Range {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
  };
  [[nodiscard]] std::vector<Range> split(std::size_t want) const {
    const std::uint64_t shards =
        std::max<std::uint64_t>(1, std::min<std::uint64_t>(want, total_));
    const std::uint64_t base = total_ / shards;
    const std::uint64_t rem = total_ % shards;
    std::vector<Range> out;
    out.reserve(shards);
    std::uint64_t lo = 0;
    for (std::uint64_t i = 0; i < shards; ++i) {
      const std::uint64_t len = base + (i < rem ? 1 : 0);
      out.push_back({lo, lo + len});
      lo += len;
    }
    return out;
  }

 private:
  struct Field {
    ProcessorId p;
    int kind;  // 0=pif 1=fok 2=count 3=level 4=parent
    std::uint64_t radix;
  };

  void materialize(std::size_t i, std::uint64_t v,
                   std::vector<State>& states) const {
    const Field& f = fields_[i];
    State& s = states[f.p];
    switch (f.kind) {
      case 0:
        s.pif = static_cast<Phase>(v);
        break;
      case 1:
        s.fok = v != 0;
        break;
      case 2:
        s.count = static_cast<std::uint32_t>(v) + 1;
        break;
      case 3:
        s.level = static_cast<std::uint32_t>(v) + 1;
        break;
      case 4:
        s.parent = g_->neighbors(f.p)[v];
        break;
      default:
        SNAPPIF_ASSERT(false);
    }
  }

  const graph::Graph* g_;
  const PifProtocol* protocol_;
  std::vector<Field> fields_;
  std::uint64_t total_ = 1;
};

/// How many ranges the packed-configuration space is cut into.  Fixed (not
/// worker-derived) so shard boundaries — and thus per-shard results — are
/// invariants of the workload.
constexpr std::size_t kConfigShards = 64;

/// All (processor, enabled-action-list) pairs of a configuration.
struct EnabledInfo {
  ProcessorId p;
  std::vector<ActionId> actions;
};

std::vector<EnabledInfo> enabled_info(const Config& c,
                                      const PifProtocol& protocol) {
  std::vector<EnabledInfo> out;
  for (ProcessorId p = 0; p < c.n(); ++p) {
    EnabledInfo info;
    info.p = p;
    for (sim::ActionMask m = protocol.enabled_mask(c, p); m != 0; m &= m - 1) {
      info.actions.push_back(sim::first_action(m));
    }
    if (!info.actions.empty()) {
      out.push_back(std::move(info));
    }
  }
  return out;
}

/// Per-chunk counter deltas plus the successors discovered, in generation
/// order.  Folding deltas in chunk order reconstructs exactly the sequential
/// totals: every visited state is expanded exactly once and all counters are
/// order-independent sums over expanded states.
struct ExpandDelta {
  std::uint64_t transitions = 0;
  std::uint64_t cycle_closures = 0;
  std::uint64_t violations = 0;
  std::uint64_t aborts = 0;
  std::uint64_t deadlocks = 0;
  std::vector<std::uint64_t> successors;
};

/// Expands packed (config, ghost) states: every non-empty subset of enabled
/// processors x every enabled-action choice (the full distributed daemon).
/// One instance per chunk task — all scratch is owned, the protocol and
/// packer are shared read-only.
class Expander {
 public:
  Expander(const graph::Graph& g, const PifProtocol& protocol,
           const Packer& packer)
      : protocol_(&protocol),
        packer_(&packer),
        n_(g.n()),
        root_(protocol.root()),
        all_non_root_mask_(
            g.n() >= 2 ? (std::uint32_t{1} << (g.n() - 1)) - 1 : 0),
        c_(g, protocol.initial_state(0)) {}

  void expand(std::uint64_t packed, ExpandDelta& delta) {
    packer_->unpack(packed, states_, ghost_);
    for (ProcessorId p = 0; p < n_; ++p) {
      c_.state(p) = states_[p];
    }

    const auto enabled = enabled_info(c_, *protocol_);
    if (enabled.empty()) {
      ++delta.deadlocks;
      return;
    }

    // Every non-empty subset of enabled processors...
    const std::size_t k = enabled.size();
    SNAPPIF_ASSERT_MSG(k <= 20, "too many enabled processors for subset loop");
    for (std::uint32_t subset = 1; subset < (std::uint32_t{1} << k);
         ++subset) {
      // ... and every combination of enabled-action choices.
      std::vector<std::size_t> idx;  // positions of set bits
      for (std::size_t i = 0; i < k; ++i) {
        if (subset & (std::uint32_t{1} << i)) {
          idx.push_back(i);
        }
      }
      std::vector<std::size_t> choice(idx.size(), 0);
      while (true) {
        // Apply this step.
        std::vector<State> next = states_;
        Packer::Ghost next_ghost = ghost_;
        bool closed_cycle = false;
        bool closed_ok = true;
        for (std::size_t j = 0; j < idx.size(); ++j) {
          const EnabledInfo& info = enabled[idx[j]];
          const ActionId a = info.actions[choice[j]];
          next[info.p] = protocol_->apply(c_, info.p, a);
          // Ghost transition (mirrors pif::GhostTracker with a "holds
          // current message" abstraction instead of unbounded ids).
          if (info.p == root_) {
            if (a == pif::kBAction) {
              next_ghost.active = true;
              next_ghost.received = 0;
              next_ghost.holds = 0;
              next_ghost.acked = 0;
            } else if (a == pif::kFAction && ghost_.active) {
              closed_cycle = true;
              closed_ok = ghost_.received == all_non_root_mask_ &&
                          ghost_.acked == all_non_root_mask_;
              next_ghost = Packer::Ghost{};
            } else if (a == pif::kBCorrection && ghost_.active) {
              ++delta.aborts;
              next_ghost = Packer::Ghost{};
            }
          } else {
            const std::uint32_t bit = std::uint32_t{1}
                                      << packer_->non_root_index(info.p);
            if (a == pif::kBAction) {
              // Reads the parent's pre-step ghost (order-independent; the
              // chosen parent cannot execute B-action in the same step).
              const ProcessorId parent = next[info.p].parent;
              const bool parent_holds =
                  parent == root_
                      ? ghost_.active
                      : (ghost_.holds &
                         (std::uint32_t{1}
                          << packer_->non_root_index(parent))) != 0;
              if (parent_holds && ghost_.active) {
                next_ghost.holds |= bit;
                next_ghost.received |= bit;
              } else {
                next_ghost.holds &= ~bit;
              }
            } else if (a == pif::kFAction && ghost_.active) {
              if ((ghost_.holds & bit) != 0) {
                next_ghost.acked |= bit;
              }
            }
          }
        }
        if (closed_cycle) {
          ++delta.cycle_closures;
          if (!closed_ok) {
            ++delta.violations;
          }
        }
        ++delta.transitions;
        const std::uint64_t next_packed = packer_->pack(next, next_ghost);
        // Chunk-local dedup (memory bound); the global visited set at the
        // join is still authoritative.  First-occurrence order within a
        // chunk is fixed by the chunk content, so this preserves the
        // worker-count invariance of the fold.
        if (seen_.insert(next_packed).second) {
          delta.successors.push_back(next_packed);
        }

        // Odometer over action choices.
        std::size_t j = 0;
        for (; j < idx.size(); ++j) {
          if (++choice[j] < enabled[idx[j]].actions.size()) {
            break;
          }
          choice[j] = 0;
        }
        if (j == idx.size()) {
          break;
        }
      }
    }
  }

 private:
  const PifProtocol* protocol_;
  const Packer* packer_;
  ProcessorId n_;
  ProcessorId root_;
  std::uint32_t all_non_root_mask_;
  Config c_;
  std::vector<State> states_;
  Packer::Ghost ghost_;
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace

unsigned packed_state_bits(const graph::Graph& g, const PifProtocol& protocol) {
  return Packer(g, protocol).total_bits();
}

DeadlockReport check_no_deadlock(const graph::Graph& g,
                                 const PifProtocol& protocol,
                                 par::ThreadPool* pool) {
  const ConfigSpace space(g, protocol);
  const Packer packer(g, protocol);
  const auto ranges = space.split(kConfigShards);

  struct ShardResult {
    std::uint64_t configurations = 0;
    std::uint64_t deadlocks = 0;
    std::uint64_t witness = 0;
  };
  auto results = par::run_shards(
      /*master_seed=*/0, ranges.size(),
      [&](par::ShardContext& ctx) {
        ShardResult r;
        Config scratch(g, protocol.initial_state(0));
        space.enumerate_range(
            ranges[ctx.index].lo, ranges[ctx.index].hi,
            [&](const std::vector<State>& states) {
              ++r.configurations;
              for (ProcessorId p = 0; p < g.n(); ++p) {
                scratch.state(p) = states[p];
              }
              bool any = false;
              for (ProcessorId p = 0; p < g.n() && !any; ++p) {
                any = protocol.enabled_mask(scratch, p) != 0;
              }
              if (!any) {
                if (r.deadlocks == 0) {
                  r.witness = packer.pack(states, {});
                }
                ++r.deadlocks;
              }
            });
        return r;
      },
      pool);

  // Shard order == enumeration order, so the first deadlock of the lowest
  // deadlocked shard IS the sequential first deadlock.
  DeadlockReport report;
  for (const auto& r : results) {
    if (report.deadlocks == 0 && r.deadlocks != 0) {
      report.witness = r.witness;
    }
    report.configurations += r.configurations;
    report.deadlocks += r.deadlocks;
  }
  return report;
}

SnapCheckReport exhaustive_snap_check(const graph::Graph& g,
                                      const PifProtocol& protocol,
                                      std::uint64_t max_states,
                                      bool normal_starts_only,
                                      par::ThreadPool* pool) {
  SnapCheckReport report;
  Packer packer(g, protocol);
  SNAPPIF_ASSERT_MSG(packer.total_bits() <= 64,
                     "instance too large for 64-bit lossless packing");
  const ConfigSpace space(g, protocol);
  const ProcessorId n = g.n();

  std::unordered_set<std::uint64_t> visited;
  visited.reserve(1 << 20);
  std::vector<std::uint64_t> frontier;

  // Seed with every configuration (or every all-Normal one), ghost inactive.
  // Shards enumerate disjoint index ranges; packing is injective, so the
  // per-shard lists are globally duplicate-free and the fold in shard order
  // reproduces the sequential seeding order exactly.
  {
    const auto ranges = space.split(kConfigShards);
    auto seed_lists = par::run_shards(
        /*master_seed=*/0, ranges.size(),
        [&](par::ShardContext& ctx) {
          std::vector<std::uint64_t> seeds;
          Config seed_config(g, protocol.initial_state(0));
          space.enumerate_range(
              ranges[ctx.index].lo, ranges[ctx.index].hi,
              [&](const std::vector<State>& states) {
                if (normal_starts_only) {
                  for (ProcessorId p = 0; p < n; ++p) {
                    seed_config.state(p) = states[p];
                  }
                  for (ProcessorId p = 0; p < n; ++p) {
                    if (!pif::GuardEval(protocol, seed_config, p).normal) {
                      return;
                    }
                  }
                }
                seeds.push_back(packer.pack(states, {}));
              });
          return seeds;
        },
        pool);
    for (const auto& seeds : seed_lists) {
      for (const std::uint64_t packed : seeds) {
        if (visited.insert(packed).second) {
          frontier.push_back(packed);
        }
      }
    }
  }

  // Level-synchronous BFS.  Each frontier is cut into fixed-size chunks
  // (a function of the frontier alone, never of worker count); chunk deltas
  // and successor lists are folded in chunk order, so visited content,
  // frontier order, and every counter are bit-identical for any pool.
  constexpr std::size_t kChunk = 512;
  while (!frontier.empty()) {
    if (visited.size() > max_states) {
      report.states = visited.size();
      report.complete = false;
      return report;
    }
    const std::size_t chunks = (frontier.size() + kChunk - 1) / kChunk;
    auto deltas = par::run_shards(
        /*master_seed=*/0, chunks,
        [&](par::ShardContext& ctx) {
          ExpandDelta delta;
          Expander expander(g, protocol, packer);
          const std::size_t lo = ctx.index * kChunk;
          const std::size_t hi = std::min(frontier.size(), lo + kChunk);
          for (std::size_t i = lo; i < hi; ++i) {
            expander.expand(frontier[i], delta);
          }
          return delta;
        },
        pool);
    std::vector<std::uint64_t> next_frontier;
    for (auto& delta : deltas) {
      report.transitions += delta.transitions;
      report.cycle_closures += delta.cycle_closures;
      report.violations += delta.violations;
      report.aborts += delta.aborts;
      report.deadlocks += delta.deadlocks;
      for (const std::uint64_t packed : delta.successors) {
        if (visited.insert(packed).second) {
          next_frontier.push_back(packed);
        }
      }
    }
    frontier = std::move(next_frontier);
  }
  report.states = visited.size();
  report.complete = true;
  return report;
}

LivenessReport synchronous_liveness_check(const graph::Graph& g,
                                          const PifProtocol& protocol,
                                          std::uint64_t step_cap) {
  LivenessReport report;
  Packer packer(g, protocol);
  SNAPPIF_ASSERT_MSG(packer.total_bits() <= 64,
                     "instance too large for 64-bit lossless packing");
  const ConfigSpace space(g, protocol);
  const ProcessorId n = g.n();
  const ProcessorId root = protocol.root();

  Config c(g, protocol.initial_state(0));
  std::vector<State> states;
  Packer::Ghost ghost;

  constexpr std::uint64_t kUnknown = ~std::uint64_t{0};
  constexpr std::uint64_t kStuck = kUnknown - 1;
  // distance-to-first-closure per packed state (kStuck = never closes).
  std::unordered_map<std::uint64_t, std::uint64_t> memo;
  memo.reserve(1 << 18);

  // Deterministic synchronous successor; sets `closed` if the transition
  // completes a tracked cycle.  The memoized chain walk is inherently
  // sequential (each start reuses distances discovered by earlier starts),
  // so this check stays single-threaded.
  auto successor = [&](std::uint64_t packed, bool& closed,
                       bool& terminal) -> std::uint64_t {
    packer.unpack(packed, states, ghost);
    for (ProcessorId p = 0; p < n; ++p) {
      c.state(p) = states[p];
    }
    closed = false;
    terminal = true;
    std::vector<State> next = states;
    Packer::Ghost next_ghost = ghost;
    for (ProcessorId p = 0; p < n; ++p) {
      const sim::ActionMask mask = protocol.enabled_mask(c, p);
      if (mask == 0) {
        continue;
      }
      const ActionId chosen = sim::first_action(mask);
      terminal = false;
      next[p] = protocol.apply(c, p, chosen);
      if (p == root) {
        if (chosen == pif::kBAction) {
          next_ghost.active = true;
          next_ghost.received = 0;
          next_ghost.holds = 0;
          next_ghost.acked = 0;
        } else if (chosen == pif::kFAction && ghost.active) {
          closed = true;
          next_ghost = Packer::Ghost{};
        } else if (chosen == pif::kBCorrection && ghost.active) {
          next_ghost = Packer::Ghost{};
        }
      } else {
        const std::uint32_t bit = std::uint32_t{1}
                                  << packer.non_root_index(p);
        if (chosen == pif::kBAction) {
          const ProcessorId parent = next[p].parent;
          const bool parent_holds =
              parent == root
                  ? ghost.active
                  : (ghost.holds &
                     (std::uint32_t{1} << packer.non_root_index(parent))) != 0;
          if (parent_holds && ghost.active) {
            next_ghost.holds |= bit;
            next_ghost.received |= bit;
          } else {
            next_ghost.holds &= ~bit;
          }
        } else if (chosen == pif::kFAction && ghost.active) {
          if ((ghost.holds & bit) != 0) {
            next_ghost.acked |= bit;
          }
        }
      }
    }
    return packer.pack(next, next_ghost);
  };

  report.complete = true;
  space.enumerate_range(0, space.total(), [&](const std::vector<State>& start) {
    ++report.start_configs;
    const std::uint64_t start_packed = packer.pack(start, {});
    if (memo.count(start_packed) != 0) {
      const auto d = memo[start_packed];
      if (d == kStuck) {
        ++report.stuck;
      } else {
        report.max_steps_to_closure = std::max(report.max_steps_to_closure, d);
      }
      return;
    }
    // Walk the deterministic chain, recording the path.
    std::vector<std::uint64_t> path;
    std::unordered_map<std::uint64_t, std::size_t> on_path;
    std::uint64_t cur = start_packed;
    std::uint64_t verdict = kStuck;  // distance of the path's LAST node
    while (true) {
      const auto it = memo.find(cur);
      if (it != memo.end()) {
        verdict = it->second;
        break;
      }
      if (on_path.count(cur) != 0) {
        verdict = kStuck;  // cycle before any closure
        break;
      }
      if (path.size() >= step_cap) {
        report.complete = false;
        verdict = kStuck;
        break;
      }
      on_path[cur] = path.size();
      path.push_back(cur);
      bool closed = false, terminal = false;
      const std::uint64_t nxt = successor(cur, closed, terminal);
      if (terminal) {
        verdict = kStuck;  // deadlock (separately proven impossible)
        break;
      }
      if (closed) {
        // The node `cur` closes in 1 step; everything before chains up.
        memo[cur] = 1;
        path.pop_back();
        verdict = 1;
        break;
      }
      cur = nxt;
    }
    // Backfill the path.
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      verdict = verdict == kStuck ? kStuck
                                  : verdict + 1;
      memo[*it] = verdict;
    }
    const auto d = memo[start_packed];
    if (d == kStuck) {
      ++report.stuck;
    } else {
      report.max_steps_to_closure = std::max(report.max_steps_to_closure, d);
    }
  });
  report.memo_states = memo.size();
  return report;
}

}  // namespace snappif::analysis
