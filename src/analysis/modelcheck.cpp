#include "analysis/modelcheck.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/configuration.hpp"
#include "sim/protocol.hpp"
#include "util/assert.hpp"

namespace snappif::analysis {

namespace {

using pif::Phase;
using pif::PifProtocol;
using pif::State;
using sim::ActionId;
using sim::ProcessorId;
using Config = sim::Configuration<State>;

[[nodiscard]] unsigned bits_for_values(std::uint64_t values) {
  // Number of bits to store a value in [0, values).
  if (values <= 1) {
    return 0;
  }
  return std::bit_width(values - 1);
}

/// Lossless 64-bit packing of a configuration plus ghost bits.
class Packer {
 public:
  Packer(const graph::Graph& g, const PifProtocol& protocol)
      : g_(&g), protocol_(&protocol) {
    const auto& params = protocol.params();
    n_ = g.n();
    pif_bits_ = 2;
    fok_bits_ = 1;
    count_bits_ = bits_for_values(params.n_upper);  // count-1 in [0, N'-1]
    level_bits_ = bits_for_values(params.l_max);    // level-1 in [0, Lmax-1]
    total_bits_ = 0;
    for (ProcessorId p = 0; p < n_; ++p) {
      total_bits_ += pif_bits_ + fok_bits_ + count_bits_;
      if (!protocol.is_root(p)) {
        total_bits_ += level_bits_ + bits_for_values(g.degree(p));
      }
    }
    // Ghost: active bit + (received, holds, acked) per non-root processor.
    ghost_offset_ = total_bits_;
    total_bits_ += 1 + 3 * (n_ - 1);
  }

  [[nodiscard]] unsigned total_bits() const noexcept { return total_bits_; }

  struct Ghost {
    bool active = false;
    // Bit i refers to the i-th non-root processor (root implicit).
    std::uint32_t received = 0;
    std::uint32_t holds = 0;
    std::uint32_t acked = 0;

    [[nodiscard]] bool operator==(const Ghost&) const noexcept = default;
  };

  [[nodiscard]] std::uint64_t pack(const std::vector<State>& states,
                                   const Ghost& ghost) const {
    std::uint64_t word = 0;
    unsigned pos = 0;
    auto put = [&](std::uint64_t value, unsigned bits) {
      SNAPPIF_ASSERT(bits == 64 || value < (std::uint64_t{1} << bits));
      word |= value << pos;
      pos += bits;
    };
    for (ProcessorId p = 0; p < n_; ++p) {
      const State& s = states[p];
      put(static_cast<std::uint64_t>(s.pif), pif_bits_);
      put(s.fok ? 1 : 0, fok_bits_);
      put(s.count - 1, count_bits_);
      if (!protocol_->is_root(p)) {
        put(s.level - 1, level_bits_);
        put(neighbor_index(p, s.parent), bits_for_values(g_->degree(p)));
      }
    }
    put(ghost.active ? 1 : 0, 1);
    std::uint32_t non_root = 0;
    for (ProcessorId p = 0; p < n_; ++p) {
      if (protocol_->is_root(p)) {
        continue;
      }
      put((ghost.received >> non_root) & 1, 1);
      put((ghost.holds >> non_root) & 1, 1);
      put((ghost.acked >> non_root) & 1, 1);
      ++non_root;
    }
    SNAPPIF_ASSERT(pos == total_bits_);
    return word;
  }

  void unpack(std::uint64_t word, std::vector<State>& states,
              Ghost& ghost) const {
    unsigned pos = 0;
    auto take = [&](unsigned bits) -> std::uint64_t {
      const std::uint64_t mask =
          bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
      const std::uint64_t value = (word >> pos) & mask;
      pos += bits;
      return value;
    };
    states.resize(n_);
    for (ProcessorId p = 0; p < n_; ++p) {
      State& s = states[p];
      s.pif = static_cast<Phase>(take(pif_bits_));
      s.fok = take(fok_bits_) != 0;
      s.count = static_cast<std::uint32_t>(take(count_bits_)) + 1;
      if (protocol_->is_root(p)) {
        s.level = 0;
        s.parent = pif::kNoParent;
      } else {
        s.level = static_cast<std::uint32_t>(take(level_bits_)) + 1;
        s.parent =
            g_->neighbors(p)[take(bits_for_values(g_->degree(p)))];
      }
    }
    ghost = Ghost{};
    ghost.active = take(1) != 0;
    std::uint32_t non_root = 0;
    for (ProcessorId p = 0; p < n_; ++p) {
      if (protocol_->is_root(p)) {
        continue;
      }
      ghost.received |= static_cast<std::uint32_t>(take(1)) << non_root;
      ghost.holds |= static_cast<std::uint32_t>(take(1)) << non_root;
      ghost.acked |= static_cast<std::uint32_t>(take(1)) << non_root;
      ++non_root;
    }
  }

  /// Index of processor p among non-root processors (for ghost bits).
  [[nodiscard]] std::uint32_t non_root_index(ProcessorId p) const {
    SNAPPIF_ASSERT(!protocol_->is_root(p));
    return p < protocol_->root() ? p : p - 1;
  }

 private:
  [[nodiscard]] std::uint64_t neighbor_index(ProcessorId p,
                                             ProcessorId parent) const {
    const auto nbrs = g_->neighbors(p);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), parent);
    SNAPPIF_ASSERT(it != nbrs.end() && *it == parent);
    return static_cast<std::uint64_t>(it - nbrs.begin());
  }

  const graph::Graph* g_;
  const PifProtocol* protocol_;
  ProcessorId n_ = 0;
  unsigned pif_bits_ = 0, fok_bits_ = 0, count_bits_ = 0, level_bits_ = 0;
  unsigned total_bits_ = 0;
  unsigned ghost_offset_ = 0;
};

/// Calls `fn(states)` for every configuration of the full variable domains.
template <typename Fn>
void enumerate_configs(const graph::Graph& g, const PifProtocol& protocol,
                       Fn&& fn) {
  const auto& params = protocol.params();
  const ProcessorId n = g.n();
  std::vector<State> states(n);
  for (ProcessorId p = 0; p < n; ++p) {
    states[p] = protocol.initial_state(p);
  }

  // Mixed-radix odometer over (pif, fok, count, level, parent) per processor.
  struct Field {
    ProcessorId p;
    int kind;  // 0=pif 1=fok 2=count 3=level 4=parent
    std::uint64_t radix;
    std::uint64_t value = 0;
  };
  std::vector<Field> fields;
  for (ProcessorId p = 0; p < n; ++p) {
    fields.push_back({p, 0, 3, 0});
    fields.push_back({p, 1, 2, 0});
    fields.push_back({p, 2, params.n_upper, 0});
    if (!protocol.is_root(p)) {
      fields.push_back({p, 3, params.l_max, 0});
      fields.push_back({p, 4, g.degree(p), 0});
    }
  }
  auto materialize = [&](const Field& f) {
    State& s = states[f.p];
    switch (f.kind) {
      case 0:
        s.pif = static_cast<Phase>(f.value);
        break;
      case 1:
        s.fok = f.value != 0;
        break;
      case 2:
        s.count = static_cast<std::uint32_t>(f.value) + 1;
        break;
      case 3:
        s.level = static_cast<std::uint32_t>(f.value) + 1;
        break;
      case 4:
        s.parent = g.neighbors(f.p)[f.value];
        break;
      default:
        SNAPPIF_ASSERT(false);
    }
  };
  for (auto& f : fields) {
    materialize(f);
  }
  while (true) {
    fn(const_cast<const std::vector<State>&>(states));
    // Odometer increment.
    std::size_t i = 0;
    for (; i < fields.size(); ++i) {
      if (++fields[i].value < fields[i].radix) {
        materialize(fields[i]);
        break;
      }
      fields[i].value = 0;
      materialize(fields[i]);
    }
    if (i == fields.size()) {
      return;
    }
  }
}

/// All (processor, enabled-action-list) pairs of a configuration.
struct EnabledInfo {
  ProcessorId p;
  std::vector<ActionId> actions;
};

std::vector<EnabledInfo> enabled_info(const Config& c,
                                      const PifProtocol& protocol) {
  std::vector<EnabledInfo> out;
  for (ProcessorId p = 0; p < c.n(); ++p) {
    EnabledInfo info;
    info.p = p;
    for (sim::ActionMask m = protocol.enabled_mask(c, p); m != 0; m &= m - 1) {
      info.actions.push_back(sim::first_action(m));
    }
    if (!info.actions.empty()) {
      out.push_back(std::move(info));
    }
  }
  return out;
}

}  // namespace

unsigned packed_state_bits(const graph::Graph& g, const PifProtocol& protocol) {
  return Packer(g, protocol).total_bits();
}

DeadlockReport check_no_deadlock(const graph::Graph& g,
                                 const PifProtocol& protocol) {
  DeadlockReport report;
  Packer packer(g, protocol);
  Config scratch(g, protocol.initial_state(0));
  enumerate_configs(g, protocol, [&](const std::vector<State>& states) {
    ++report.configurations;
    for (ProcessorId p = 0; p < g.n(); ++p) {
      scratch.state(p) = states[p];
    }
    bool any = false;
    for (ProcessorId p = 0; p < g.n() && !any; ++p) {
      any = protocol.enabled_mask(scratch, p) != 0;
    }
    if (!any) {
      if (report.deadlocks == 0) {
        report.witness = packer.pack(states, {});
      }
      ++report.deadlocks;
    }
  });
  return report;
}

SnapCheckReport exhaustive_snap_check(const graph::Graph& g,
                                      const PifProtocol& protocol,
                                      std::uint64_t max_states,
                                      bool normal_starts_only) {
  SnapCheckReport report;
  Packer packer(g, protocol);
  SNAPPIF_ASSERT_MSG(packer.total_bits() <= 64,
                     "instance too large for 64-bit lossless packing");
  const ProcessorId n = g.n();
  const ProcessorId root = protocol.root();
  const std::uint32_t all_non_root_mask =
      n >= 2 ? (std::uint32_t{1} << (n - 1)) - 1 : 0;

  std::unordered_set<std::uint64_t> visited;
  std::deque<std::uint64_t> queue;
  visited.reserve(1 << 20);

  // Seed with every configuration (or every all-Normal one), ghost inactive.
  {
    Config seed_config(g, protocol.initial_state(0));
    enumerate_configs(g, protocol, [&](const std::vector<State>& states) {
      if (normal_starts_only) {
        for (ProcessorId p = 0; p < n; ++p) {
          seed_config.state(p) = states[p];
        }
        for (ProcessorId p = 0; p < n; ++p) {
          if (!pif::GuardEval(protocol, seed_config, p).normal) {
            return;
          }
        }
      }
      const std::uint64_t packed = packer.pack(states, {});
      if (visited.insert(packed).second) {
        queue.push_back(packed);
      }
    });
  }

  Config c(g, protocol.initial_state(0));
  std::vector<State> states;
  Packer::Ghost ghost;

  while (!queue.empty()) {
    if (visited.size() > max_states) {
      report.states = visited.size();
      report.complete = false;
      return report;
    }
    const std::uint64_t packed = queue.front();
    queue.pop_front();
    packer.unpack(packed, states, ghost);
    for (ProcessorId p = 0; p < n; ++p) {
      c.state(p) = states[p];
    }

    const auto enabled = enabled_info(c, protocol);
    if (enabled.empty()) {
      ++report.deadlocks;
      continue;
    }

    // Every non-empty subset of enabled processors...
    const std::size_t k = enabled.size();
    SNAPPIF_ASSERT_MSG(k <= 20, "too many enabled processors for subset loop");
    for (std::uint32_t subset = 1; subset < (std::uint32_t{1} << k); ++subset) {
      // ... and every combination of enabled-action choices.
      std::vector<std::size_t> idx;       // positions of set bits
      for (std::size_t i = 0; i < k; ++i) {
        if (subset & (std::uint32_t{1} << i)) {
          idx.push_back(i);
        }
      }
      std::vector<std::size_t> choice(idx.size(), 0);
      while (true) {
        // Apply this step.
        std::vector<State> next = states;
        Packer::Ghost next_ghost = ghost;
        bool closed_cycle = false;
        bool closed_ok = true;
        for (std::size_t j = 0; j < idx.size(); ++j) {
          const EnabledInfo& info = enabled[idx[j]];
          const ActionId a = info.actions[choice[j]];
          next[info.p] = protocol.apply(c, info.p, a);
          // Ghost transition (mirrors pif::GhostTracker with a "holds
          // current message" abstraction instead of unbounded ids).
          if (info.p == root) {
            if (a == pif::kBAction) {
              next_ghost.active = true;
              next_ghost.received = 0;
              next_ghost.holds = 0;
              next_ghost.acked = 0;
            } else if (a == pif::kFAction && ghost.active) {
              closed_cycle = true;
              closed_ok = ghost.received == all_non_root_mask &&
                          ghost.acked == all_non_root_mask;
              next_ghost = Packer::Ghost{};
            } else if (a == pif::kBCorrection && ghost.active) {
              ++report.aborts;
              next_ghost = Packer::Ghost{};
            }
          } else {
            const std::uint32_t bit = std::uint32_t{1}
                                      << packer.non_root_index(info.p);
            if (a == pif::kBAction) {
              // Reads the parent's pre-step ghost (order-independent; the
              // chosen parent cannot execute B-action in the same step).
              const ProcessorId parent = next[info.p].parent;
              const bool parent_holds =
                  parent == root
                      ? ghost.active
                      : (ghost.holds &
                         (std::uint32_t{1} << packer.non_root_index(parent))) != 0;
              if (parent_holds && ghost.active) {
                next_ghost.holds |= bit;
                next_ghost.received |= bit;
              } else {
                next_ghost.holds &= ~bit;
              }
            } else if (a == pif::kFAction && ghost.active) {
              if ((ghost.holds & bit) != 0) {
                next_ghost.acked |= bit;
              }
            }
          }
        }
        if (closed_cycle) {
          ++report.cycle_closures;
          if (!closed_ok) {
            ++report.violations;
          }
        }
        ++report.transitions;
        const std::uint64_t next_packed = packer.pack(next, next_ghost);
        if (visited.insert(next_packed).second) {
          queue.push_back(next_packed);
        }

        // Odometer over action choices.
        std::size_t j = 0;
        for (; j < idx.size(); ++j) {
          if (++choice[j] < enabled[idx[j]].actions.size()) {
            break;
          }
          choice[j] = 0;
        }
        if (j == idx.size()) {
          break;
        }
      }
    }
  }
  report.states = visited.size();
  report.complete = true;
  return report;
}

LivenessReport synchronous_liveness_check(const graph::Graph& g,
                                          const PifProtocol& protocol,
                                          std::uint64_t step_cap) {
  LivenessReport report;
  Packer packer(g, protocol);
  SNAPPIF_ASSERT_MSG(packer.total_bits() <= 64,
                     "instance too large for 64-bit lossless packing");
  const ProcessorId n = g.n();
  const ProcessorId root = protocol.root();
  const std::uint32_t all_non_root_mask =
      n >= 2 ? (std::uint32_t{1} << (n - 1)) - 1 : 0;
  (void)all_non_root_mask;

  Config c(g, protocol.initial_state(0));
  std::vector<State> states;
  Packer::Ghost ghost;

  constexpr std::uint64_t kUnknown = ~std::uint64_t{0};
  constexpr std::uint64_t kStuck = kUnknown - 1;
  // distance-to-first-closure per packed state (kStuck = never closes).
  std::unordered_map<std::uint64_t, std::uint64_t> memo;
  memo.reserve(1 << 18);

  // Deterministic synchronous successor; sets `closed` if the transition
  // completes a tracked cycle.
  auto successor = [&](std::uint64_t packed, bool& closed,
                       bool& terminal) -> std::uint64_t {
    packer.unpack(packed, states, ghost);
    for (ProcessorId p = 0; p < n; ++p) {
      c.state(p) = states[p];
    }
    closed = false;
    terminal = true;
    std::vector<State> next = states;
    Packer::Ghost next_ghost = ghost;
    for (ProcessorId p = 0; p < n; ++p) {
      const sim::ActionMask mask = protocol.enabled_mask(c, p);
      if (mask == 0) {
        continue;
      }
      const ActionId chosen = sim::first_action(mask);
      terminal = false;
      next[p] = protocol.apply(c, p, chosen);
      if (p == root) {
        if (chosen == pif::kBAction) {
          next_ghost.active = true;
          next_ghost.received = 0;
          next_ghost.holds = 0;
          next_ghost.acked = 0;
        } else if (chosen == pif::kFAction && ghost.active) {
          closed = true;
          next_ghost = Packer::Ghost{};
        } else if (chosen == pif::kBCorrection && ghost.active) {
          next_ghost = Packer::Ghost{};
        }
      } else {
        const std::uint32_t bit = std::uint32_t{1}
                                  << packer.non_root_index(p);
        if (chosen == pif::kBAction) {
          const ProcessorId parent = next[p].parent;
          const bool parent_holds =
              parent == root
                  ? ghost.active
                  : (ghost.holds &
                     (std::uint32_t{1} << packer.non_root_index(parent))) != 0;
          if (parent_holds && ghost.active) {
            next_ghost.holds |= bit;
            next_ghost.received |= bit;
          } else {
            next_ghost.holds &= ~bit;
          }
        } else if (chosen == pif::kFAction && ghost.active) {
          if ((ghost.holds & bit) != 0) {
            next_ghost.acked |= bit;
          }
        }
      }
    }
    return packer.pack(next, next_ghost);
  };

  report.complete = true;
  enumerate_configs(g, protocol, [&](const std::vector<State>& start) {
    ++report.start_configs;
    const std::uint64_t start_packed = packer.pack(start, {});
    if (memo.count(start_packed) != 0) {
      const auto d = memo[start_packed];
      if (d == kStuck) {
        ++report.stuck;
      } else {
        report.max_steps_to_closure = std::max(report.max_steps_to_closure, d);
      }
      return;
    }
    // Walk the deterministic chain, recording the path.
    std::vector<std::uint64_t> path;
    std::unordered_map<std::uint64_t, std::size_t> on_path;
    std::uint64_t cur = start_packed;
    std::uint64_t verdict = kStuck;  // distance of the path's LAST node
    while (true) {
      const auto it = memo.find(cur);
      if (it != memo.end()) {
        verdict = it->second;
        break;
      }
      if (on_path.count(cur) != 0) {
        verdict = kStuck;  // cycle before any closure
        break;
      }
      if (path.size() >= step_cap) {
        report.complete = false;
        verdict = kStuck;
        break;
      }
      on_path[cur] = path.size();
      path.push_back(cur);
      bool closed = false, terminal = false;
      const std::uint64_t nxt = successor(cur, closed, terminal);
      if (terminal) {
        verdict = kStuck;  // deadlock (separately proven impossible)
        break;
      }
      if (closed) {
        // The node `cur` closes in 1 step; everything before chains up.
        memo[cur] = 1;
        path.pop_back();
        verdict = 1;
        break;
      }
      cur = nxt;
    }
    // Backfill the path.
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      verdict = verdict == kStuck ? kStuck
                                  : verdict + 1;
      memo[*it] = verdict;
    }
    const auto d = memo[start_packed];
    if (d == kStuck) {
      ++report.stuck;
    } else {
      report.max_steps_to_closure = std::max(report.max_steps_to_closure, d);
    }
  });
  report.memo_states = memo.size();
  return report;
}

}  // namespace snappif::analysis
