// Model-assumption robustness: composite vs read/write atomicity.
//
// The paper's model executes guard evaluation and statement atomically
// (composite atomicity).  Under the weaker read/write atomicity of
// Dolev-Israeli-Moran, a processor may act on a STALE view: neighbors move
// between its reads and its write.  The algorithm is NOT claimed correct in
// that model — this module measures how it actually degrades, by emulating
// staleness with delayed commits: a selected processor computes its new
// state from the current configuration, but the write lands a few scheduler
// steps later, after other processors have moved.
//
// Expected (and measured, E16): with zero delay the behavior is exactly the
// central daemon (always correct); with increasing delay probability the
// first-cycle guarantee erodes — a quantified reminder that the composite-
// atomicity assumption is load-bearing.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "pif/faults.hpp"

namespace snappif::analysis {

struct AtomicityResult {
  bool cycle_completed = false;
  bool pif1 = false;
  bool pif2 = false;
  bool aborted = false;
  std::uint64_t steps = 0;

  [[nodiscard]] bool ok() const noexcept {
    return cycle_completed && pif1 && pif2 && !aborted;
  }
};

/// From a corrupted configuration, runs a central schedule in which each
/// selected processor's write commits `1 + (0..2)` steps late with
/// probability `delay_probability` (0 = exact composite atomicity), until
/// the first root-initiated cycle closes.  Ghost receipt fires at read time
/// (receiving the broadcast IS the read), acknowledgments at the F-commit.
[[nodiscard]] AtomicityResult check_snap_with_delayed_commits(
    const graph::Graph& g, pif::CorruptionKind corruption,
    double delay_probability, std::uint64_t seed,
    std::uint64_t max_steps = 500'000);

}  // namespace snappif::analysis
