#include "graph/dot.hpp"

#include "util/assert.hpp"

namespace snappif::graph {

std::string to_dot(const Graph& g, const std::vector<NodeId>& tree_parent,
                   const std::vector<std::string>& labels) {
  SNAPPIF_ASSERT(tree_parent.empty() || tree_parent.size() == g.n());
  SNAPPIF_ASSERT(labels.empty() || labels.size() == g.n());
  std::string out = "graph G {\n  node [shape=circle];\n";
  char buf[160];
  for (NodeId v = 0; v < g.n(); ++v) {
    if (!labels.empty()) {
      std::snprintf(buf, sizeof(buf), "  %u [label=\"%u\\n%s\"];\n", v, v,
                    labels[v].c_str());
      out += buf;
    }
  }
  auto is_tree_edge = [&](NodeId u, NodeId v) {
    if (tree_parent.empty()) {
      return false;
    }
    return (tree_parent[u] == v && u != v) || (tree_parent[v] == u && v != u);
  };
  for (const auto& [u, v] : g.edges()) {
    if (is_tree_edge(u, v)) {
      std::snprintf(buf, sizeof(buf), "  %u -- %u [penwidth=3];\n", u, v);
    } else {
      std::snprintf(buf, sizeof(buf), "  %u -- %u [style=dashed, color=gray];\n", u, v);
    }
    out += buf;
  }
  out += "}\n";
  return out;
}

}  // namespace snappif::graph
