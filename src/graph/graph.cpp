#include "graph/graph.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace snappif::graph {

Graph::Graph(NodeId n) : offsets_(static_cast<std::size_t>(n) + 1, 0) {}

Graph Graph::from_edges(NodeId n, std::span<const Edge> edges) {
  // Normalize: orient (min, max), drop self-loops (asserted), dedupe.
  std::vector<Edge> normalized;
  normalized.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    SNAPPIF_ASSERT_MSG(u != v, "self-loops are not allowed");
    SNAPPIF_ASSERT_MSG(u < n && v < n, "edge endpoint out of range");
    normalized.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(normalized.begin(), normalized.end());
  normalized.erase(std::unique(normalized.begin(), normalized.end()),
                   normalized.end());

  Graph g(n);
  std::vector<std::size_t> deg(n, 0);
  for (const auto& [u, v] : normalized) {
    ++deg[u];
    ++deg[v];
  }
  for (NodeId v = 0; v < n; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + deg[v];
  }
  g.adjacency_.resize(g.offsets_[n]);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : normalized) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  for (NodeId v = 0; v < n; ++v) {
    auto row = g.adjacency_.begin();
    std::sort(row + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              row + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }
  return g;
}

Graph Graph::from_edges(NodeId n, std::initializer_list<Edge> edges) {
  return from_edges(n, std::span<const Edge>(edges.begin(), edges.size()));
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  SNAPPIF_ASSERT(v < n());
  return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::size_t Graph::degree(NodeId v) const {
  SNAPPIF_ASSERT(v < n());
  return offsets_[v + 1] - offsets_[v];
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(m());
  for (NodeId v = 0; v < n(); ++v) {
    for (NodeId w : neighbors(v)) {
      if (v < w) {
        out.emplace_back(v, w);
      }
    }
  }
  return out;
}

}  // namespace snappif::graph
