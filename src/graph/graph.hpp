// Undirected graph substrate.
//
// The paper's network is an arbitrary connected undirected graph of N
// processors with bidirectional links; each processor reads only its
// neighbors' variables.  Graph stores the topology in compressed sparse row
// form with neighbor lists sorted ascending — the sorted order doubles as the
// paper's arbitrary local total order `≻_p` on Neig_p (used by B-action's
// min(Potential_p) tie-break).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

namespace snappif::graph {

using NodeId = std::uint32_t;
using Edge = std::pair<NodeId, NodeId>;

/// Immutable undirected simple graph (no self-loops, no parallel edges).
class Graph {
 public:
  /// Empty graph of `n` isolated vertices.
  explicit Graph(NodeId n = 0);

  /// Builds from an edge list.  Self-loops are rejected; duplicate edges
  /// (in either orientation) are collapsed.
  static Graph from_edges(NodeId n, std::span<const Edge> edges);
  static Graph from_edges(NodeId n, std::initializer_list<Edge> edges);

  /// Number of vertices.
  [[nodiscard]] NodeId n() const noexcept { return static_cast<NodeId>(offsets_.size() - 1); }
  /// Number of undirected edges.
  [[nodiscard]] std::size_t m() const noexcept { return adjacency_.size() / 2; }

  /// Neighbors of `v`, sorted ascending (this order is the local order ≻_v).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const;
  [[nodiscard]] std::size_t degree(NodeId v) const;
  /// O(log deg) membership test.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// All edges, each once, with first < second, sorted.
  [[nodiscard]] std::vector<Edge> edges() const;

  [[nodiscard]] bool operator==(const Graph& other) const noexcept = default;

 private:
  // CSR: adjacency_[offsets_[v] .. offsets_[v+1]) are v's neighbors.
  std::vector<std::size_t> offsets_;
  std::vector<NodeId> adjacency_;
};

}  // namespace snappif::graph
