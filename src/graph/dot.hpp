// Graphviz DOT export, used by examples to visualize the constructed
// broadcast tree over the network.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace snappif::graph {

/// Renders g in DOT format.  `tree_parent`, if non-empty (size n), highlights
/// the tree edges (v, tree_parent[v]) in bold; `labels`, if non-empty,
/// annotates vertices.
[[nodiscard]] std::string to_dot(const Graph& g,
                                 const std::vector<NodeId>& tree_parent = {},
                                 const std::vector<std::string>& labels = {});

}  // namespace snappif::graph
