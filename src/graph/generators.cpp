#include "graph/generators.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace snappif::graph {

namespace {
using util::Rng;

/// Open-addressing set of undirected edges keyed by (min << 32) | max.
/// Replaces the std::set<Edge> the random generators used to dedupe with:
/// one up-front allocation sized for the target edge count instead of a
/// red-black node per edge, and O(1) membership instead of O(log m) — the
/// difference between minutes and milliseconds at n = 10^6.  Membership
/// answers are exactly set semantics, so the generators' draw/accept
/// sequences (and therefore their outputs) are unchanged.
class FlatEdgeSet {
 public:
  explicit FlatEdgeSet(std::size_t expected_edges) {
    std::size_t cap = std::bit_ceil(std::max<std::size_t>(16, 2 * expected_edges));
    slots_.assign(cap, kEmpty);
    mask_ = cap - 1;
  }

  /// True iff the edge was newly inserted.
  bool insert(NodeId u, NodeId v) {
    if (u > v) {
      std::swap(u, v);
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
    if (size_ * 4 >= slots_.size() * 3) {
      grow();
    }
    std::size_t i = probe_start(key);
    while (slots_[i] != kEmpty) {
      if (slots_[i] == key) {
        return false;
      }
      i = (i + 1) & mask_;
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  // A key never equals the sentinel: it would need u = v = 0xffffffff, and
  // inserted endpoints are distinct vertex ids.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  [[nodiscard]] std::size_t probe_start(std::uint64_t key) const noexcept {
    std::uint64_t h = key;
    return static_cast<std::size_t>(util::splitmix64(h)) & mask_;
  }

  void grow() {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmpty);
    mask_ = slots_.size() - 1;
    for (std::uint64_t key : old) {
      if (key == kEmpty) {
        continue;
      }
      std::size_t i = probe_start(key);
      while (slots_[i] != kEmpty) {
        i = (i + 1) & mask_;
      }
      slots_[i] = key;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};
}  // namespace

Graph make_path(NodeId n) {
  SNAPPIF_ASSERT(n >= 1);
  std::vector<Edge> edges;
  edges.reserve(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    edges.emplace_back(v, v + 1);
  }
  return Graph::from_edges(n, edges);
}

Graph make_cycle(NodeId n) {
  SNAPPIF_ASSERT(n >= 3);
  std::vector<Edge> edges;
  edges.reserve(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    edges.emplace_back(v, v + 1);
  }
  edges.emplace_back(n - 1, 0);
  return Graph::from_edges(n, edges);
}

Graph make_star(NodeId n) {
  SNAPPIF_ASSERT(n >= 2);
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (NodeId v = 1; v < n; ++v) {
    edges.emplace_back(0, v);
  }
  return Graph::from_edges(n, edges);
}

Graph make_complete(NodeId n) {
  SNAPPIF_ASSERT(n >= 1);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph make_complete_bipartite(NodeId a, NodeId b) {
  SNAPPIF_ASSERT(a >= 1 && b >= 1);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(a) * b);
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) {
      edges.emplace_back(u, a + v);
    }
  }
  return Graph::from_edges(a + b, edges);
}

Graph make_grid(NodeId rows, NodeId cols) {
  SNAPPIF_ASSERT(rows >= 1 && cols >= 1);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  std::vector<Edge> edges;
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.emplace_back(id(r, c), id(r, c + 1));
      }
      if (r + 1 < rows) {
        edges.emplace_back(id(r, c), id(r + 1, c));
      }
    }
  }
  return Graph::from_edges(rows * cols, edges);
}

Graph make_torus(NodeId rows, NodeId cols) {
  SNAPPIF_ASSERT(rows >= 3 && cols >= 3);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  std::vector<Edge> edges;
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      edges.emplace_back(id(r, c), id(r, (c + 1) % cols));
      edges.emplace_back(id(r, c), id((r + 1) % rows, c));
    }
  }
  return Graph::from_edges(rows * cols, edges);
}

Graph make_binary_tree(NodeId n) {
  SNAPPIF_ASSERT(n >= 1);
  std::vector<Edge> edges;
  edges.reserve(n);
  for (NodeId v = 1; v < n; ++v) {
    edges.emplace_back((v - 1) / 2, v);
  }
  return Graph::from_edges(n, edges);
}

Graph make_hypercube(unsigned d) {
  SNAPPIF_ASSERT(d >= 1 && d <= 20);
  const NodeId n = NodeId{1} << d;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * d / 2);
  for (NodeId v = 0; v < n; ++v) {
    for (unsigned bit = 0; bit < d; ++bit) {
      const NodeId w = v ^ (NodeId{1} << bit);
      if (v < w) {
        edges.emplace_back(v, w);
      }
    }
  }
  return Graph::from_edges(n, edges);
}

Graph make_wheel(NodeId n) {
  SNAPPIF_ASSERT(n >= 4);
  std::vector<Edge> edges;
  const NodeId rim = n - 1;
  for (NodeId v = 1; v <= rim; ++v) {
    edges.emplace_back(0, v);
    const NodeId next = (v == rim) ? 1 : v + 1;
    edges.emplace_back(v, next);
  }
  return Graph::from_edges(n, edges);
}

Graph make_lollipop(NodeId k, NodeId tail) {
  SNAPPIF_ASSERT(k >= 2);
  std::vector<Edge> edges;
  for (NodeId u = 0; u < k; ++u) {
    for (NodeId v = u + 1; v < k; ++v) {
      edges.emplace_back(u, v);
    }
  }
  for (NodeId t = 0; t < tail; ++t) {
    const NodeId from = (t == 0) ? k - 1 : k + t - 1;
    edges.emplace_back(from, k + t);
  }
  return Graph::from_edges(k + tail, edges);
}

Graph make_caterpillar(NodeId spine, NodeId legs) {
  SNAPPIF_ASSERT(spine >= 1);
  std::vector<Edge> edges;
  const NodeId n = spine + spine * legs;
  for (NodeId s = 0; s + 1 < spine; ++s) {
    edges.emplace_back(s, s + 1);
  }
  NodeId next = spine;
  for (NodeId s = 0; s < spine; ++s) {
    for (NodeId l = 0; l < legs; ++l) {
      edges.emplace_back(s, next++);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph make_random_tree(NodeId n, std::uint64_t seed) {
  SNAPPIF_ASSERT(n >= 1);
  if (n == 1) {
    return Graph(1);
  }
  if (n == 2) {
    return Graph::from_edges(2, {{0, 1}});
  }
  // Decode a uniformly random Prüfer sequence of length n-2.
  Rng rng(seed);
  std::vector<NodeId> prufer(n - 2);
  for (auto& x : prufer) {
    x = static_cast<NodeId>(rng.below(n));
  }
  std::vector<NodeId> degree(n, 1);
  for (NodeId x : prufer) {
    ++degree[x];
  }
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  // Min-leaf decoding with the O(n) pointer scan: the smallest current leaf
  // is either a vertex the scan pointer already passed that just turned into
  // a leaf (in which case it is the *only* leaf below the pointer, and is
  // consumed in the very next step) or the first degree-1 vertex at or after
  // the pointer.  The pointer only ever advances, so the whole decode is
  // O(n) with zero per-step allocation — yet it pops leaves in exactly the
  // ascending order the old std::set decode did, so every seed keeps
  // producing the same tree (pinned by golden hashes in the tests).
  NodeId ptr = 0;
  while (degree[ptr] != 1) {
    ++ptr;
  }
  NodeId leaf = ptr;
  for (NodeId x : prufer) {
    edges.emplace_back(leaf, x);
    --degree[leaf];
    if (--degree[x] == 1 && x < ptr) {
      leaf = x;
    } else {
      ++ptr;
      while (degree[ptr] != 1) {
        ++ptr;
      }
      leaf = ptr;
    }
  }
  // Exactly two leaves remain; join them (ascending, as the set decode did).
  constexpr NodeId kNone = ~NodeId{0};
  NodeId a = kNone;
  NodeId b = kNone;
  for (NodeId v = 0; v < n; ++v) {
    if (degree[v] == 1) {
      (a == kNone ? a : b) = v;
    }
  }
  SNAPPIF_ASSERT(a != kNone && b != kNone);
  edges.emplace_back(a, b);
  return Graph::from_edges(n, edges);
}

Graph make_random_connected(NodeId n, std::size_t extra_edges, std::uint64_t seed) {
  SNAPPIF_ASSERT(n >= 1);
  Rng rng(seed);
  const Graph tree = make_random_tree(n, rng());
  std::vector<Edge> edges = tree.edges();
  const std::size_t tree_edges = edges.size();
  const std::size_t max_extra =
      static_cast<std::size_t>(n) * (n - 1) / 2 - tree_edges;
  const std::size_t want = std::min(extra_edges, max_extra);
  // Rejection-sample distinct non-tree chords.  The flat set preserves the
  // old std::set draw/accept sequence exactly (membership is membership),
  // so every seed keeps its graph; Graph::from_edges sorts, so collecting
  // accepted edges in draw order instead of set order changes nothing.
  FlatEdgeSet present(tree_edges + want);
  for (const Edge& e : edges) {
    present.insert(e.first, e.second);
  }
  edges.reserve(tree_edges + want);
  while (present.size() < tree_edges + want) {
    const auto u = static_cast<NodeId>(rng.below(n));
    const auto v = static_cast<NodeId>(rng.below(n));
    if (u == v) {
      continue;
    }
    if (present.insert(u, v)) {
      edges.emplace_back(std::min(u, v), std::max(u, v));
    }
  }
  return Graph::from_edges(n, edges);
}

std::vector<NamedGraph> standard_suite(NodeId n, std::uint64_t seed) {
  SNAPPIF_ASSERT(n >= 4);
  std::vector<NamedGraph> suite;
  suite.push_back({"line", make_path(n)});
  suite.push_back({"ring", make_cycle(n)});
  suite.push_back({"star", make_star(n)});
  suite.push_back({"complete", make_complete(n)});
  {
    // Near-square grid.
    NodeId rows = 2;
    while ((rows + 1) * (rows + 1) <= n) {
      ++rows;
    }
    const NodeId cols = std::max<NodeId>(2, n / rows);
    suite.push_back({"grid", make_grid(rows, cols)});
  }
  suite.push_back({"bintree", make_binary_tree(n)});
  suite.push_back({"lollipop", make_lollipop(std::max<NodeId>(3, n / 2),
                                             n - std::max<NodeId>(3, n / 2))});
  suite.push_back({"random", make_random_connected(n, n, seed)});
  return suite;
}

std::vector<NamedGraph> tiny_suite() {
  std::vector<NamedGraph> suite;
  suite.push_back({"single", Graph(1)});
  suite.push_back({"edge", make_path(2)});
  suite.push_back({"path3", make_path(3)});
  suite.push_back({"triangle", make_cycle(3)});
  suite.push_back({"path4", make_path(4)});
  suite.push_back({"star4", make_star(4)});
  suite.push_back({"cycle4", make_cycle(4)});
  suite.push_back({"k4", make_complete(4)});
  suite.push_back({"paw", Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}})});
  suite.push_back({"diamond", Graph::from_edges(4, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}})});
  return suite;
}

std::optional<Graph> make_by_name(std::string_view name, NodeId n,
                                  std::uint64_t seed) {
  if (name == "line" || name == "path") {
    return make_path(n);
  }
  if (name == "ring" || name == "cycle") {
    return make_cycle(std::max<NodeId>(3, n));
  }
  if (name == "star") {
    return make_star(std::max<NodeId>(2, n));
  }
  if (name == "complete") {
    return make_complete(n);
  }
  if (name == "grid") {
    NodeId rows = 2;
    while ((rows + 1) * (rows + 1) <= n) {
      ++rows;
    }
    return make_grid(rows, std::max<NodeId>(2, n / rows));
  }
  if (name == "torus") {
    NodeId rows = 3;
    while ((rows + 1) * (rows + 1) <= n) {
      ++rows;
    }
    return make_torus(rows, std::max<NodeId>(3, n / rows));
  }
  if (name == "bintree" || name == "tree") {
    return make_binary_tree(n);
  }
  if (name == "hypercube") {
    unsigned d = 1;
    while ((NodeId{1} << (d + 1)) <= n && d < 20) {
      ++d;
    }
    return make_hypercube(d);
  }
  if (name == "wheel") {
    return make_wheel(std::max<NodeId>(4, n));
  }
  if (name == "lollipop") {
    const NodeId k = std::max<NodeId>(3, n / 2);
    return make_lollipop(k, n > k ? n - k : 1);
  }
  if (name == "caterpillar") {
    const NodeId spine = std::max<NodeId>(1, n / 3);
    const NodeId legs = std::max<NodeId>(1, (n - spine) / spine);
    return make_caterpillar(spine, legs);
  }
  if (name == "random") {
    return make_random_connected(n, n, seed);
  }
  if (name == "random-tree") {
    return make_random_tree(n, seed);
  }
  return std::nullopt;
}

std::string_view topology_names() {
  return "line, ring, star, complete, grid, torus, bintree, hypercube, wheel, "
         "lollipop, caterpillar, random, random-tree";
}

}  // namespace snappif::graph
