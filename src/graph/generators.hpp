// Topology generators for the benchmark and test workloads.
//
// The paper's evaluation claims are stated over *arbitrary* connected
// networks, so the harness exercises the algorithm on topologies spanning the
// extremes the bounds depend on: diameter (line/ring vs star/complete),
// branching (star, tree), chords (complete, lollipop), and irregular random
// graphs.  All generators produce connected graphs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace snappif::graph {

/// Path 0-1-2-...-(n-1).  Requires n >= 1.
[[nodiscard]] Graph make_path(NodeId n);
/// Cycle of n vertices.  Requires n >= 3.
[[nodiscard]] Graph make_cycle(NodeId n);
/// Star: vertex 0 adjacent to all others.  Requires n >= 2.
[[nodiscard]] Graph make_star(NodeId n);
/// Complete graph K_n.  Requires n >= 1.
[[nodiscard]] Graph make_complete(NodeId n);
/// Complete bipartite K_{a,b} (parts [0,a) and [a,a+b)).  Requires a,b >= 1.
[[nodiscard]] Graph make_complete_bipartite(NodeId a, NodeId b);
/// rows x cols grid.  Requires rows, cols >= 1 and rows*cols >= 1.
[[nodiscard]] Graph make_grid(NodeId rows, NodeId cols);
/// rows x cols torus (grid with wraparound).  Requires rows, cols >= 3.
[[nodiscard]] Graph make_torus(NodeId rows, NodeId cols);
/// Complete binary tree with n vertices (heap indexing).  Requires n >= 1.
[[nodiscard]] Graph make_binary_tree(NodeId n);
/// d-dimensional hypercube (2^d vertices).  Requires 1 <= d <= 20.
[[nodiscard]] Graph make_hypercube(unsigned d);
/// Wheel: cycle of n-1 vertices plus hub 0.  Requires n >= 4.
[[nodiscard]] Graph make_wheel(NodeId n);
/// Lollipop: K_k (vertices [0,k)) with a path of `tail` extra vertices
/// attached to vertex k-1.  High chordal part + long induced path.
[[nodiscard]] Graph make_lollipop(NodeId k, NodeId tail);
/// Caterpillar: spine path of `spine` vertices, each with `legs` pendant
/// leaves.  Requires spine >= 1.
[[nodiscard]] Graph make_caterpillar(NodeId spine, NodeId legs);
/// Random connected graph: uniform random spanning tree (via random Prüfer
/// sequence) plus `extra_edges` additional distinct random edges.
/// O(n + m) expected — flat-hash dedup, no ordered containers — so n = 10^6
/// builds in seconds; output per seed is unchanged from the O(m log m)
/// implementation (golden-hash pinned in tests/graph/test_generators.cpp).
[[nodiscard]] Graph make_random_connected(NodeId n, std::size_t extra_edges,
                                          std::uint64_t seed);
/// Random tree via Prüfer sequence, decoded with the O(n) min-leaf pointer
/// scan.  Requires n >= 1.  Output per seed matches the previous ordered-set
/// decode exactly.
[[nodiscard]] Graph make_random_tree(NodeId n, std::uint64_t seed);

/// A named topology instance, the unit of the benchmark sweeps.
struct NamedGraph {
  std::string name;
  Graph graph;
};

/// The standard suite used across benches/tests: one instance per family,
/// scaled near `n` vertices (exact vertex counts vary per family).
[[nodiscard]] std::vector<NamedGraph> standard_suite(NodeId n, std::uint64_t seed);

/// Small graphs (n <= 5) for exhaustive model checking.
[[nodiscard]] std::vector<NamedGraph> tiny_suite();

/// Builds a topology from a family name and target size — the CLI-facing
/// factory ("line", "ring", "star", "complete", "grid", "torus", "bintree",
/// "hypercube", "wheel", "lollipop", "caterpillar", "random", "random-tree").
/// `seed` only affects the random families.  Returns nullopt for unknown
/// names; size constraints of the family are asserted.
[[nodiscard]] std::optional<Graph> make_by_name(std::string_view name, NodeId n,
                                                std::uint64_t seed);
/// Comma-separated list of the family names make_by_name accepts.
[[nodiscard]] std::string_view topology_names();

}  // namespace snappif::graph
