#include "graph/properties.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace snappif::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  SNAPPIF_ASSERT(source < g.n());
  std::vector<std::uint32_t> dist(g.n(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId w : g.neighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        frontier.push(w);
      }
    }
  }
  return dist;
}

BfsTree bfs_tree(const Graph& g, NodeId source) {
  SNAPPIF_ASSERT(source < g.n());
  BfsTree tree;
  tree.parent.resize(g.n());
  for (NodeId v = 0; v < g.n(); ++v) {
    tree.parent[v] = v;
  }
  tree.depth.assign(g.n(), kUnreachable);
  tree.depth[source] = 0;
  std::queue<NodeId> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    tree.height = std::max(tree.height, tree.depth[v]);
    for (NodeId w : g.neighbors(v)) {
      if (tree.depth[w] == kUnreachable) {
        tree.depth[w] = tree.depth[v] + 1;
        tree.parent[w] = v;
        frontier.push(w);
      }
    }
  }
  return tree;
}

bool is_connected(const Graph& g) {
  if (g.n() == 0) {
    return true;
  }
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::uint32_t eccentricity(const Graph& g, NodeId v) {
  const auto dist = bfs_distances(g, v);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    SNAPPIF_ASSERT_MSG(d != kUnreachable, "eccentricity requires a connected graph");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter(const Graph& g) {
  std::uint32_t diam = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    diam = std::max(diam, eccentricity(g, v));
  }
  return diam;
}

namespace {

void chordless_dfs(const Graph& g, std::vector<NodeId>& path,
                   std::vector<bool>& on_path, std::uint32_t& best) {
  best = std::max(best, static_cast<std::uint32_t>(path.size() - 1));
  const NodeId tip = path.back();
  for (NodeId w : g.neighbors(tip)) {
    if (on_path[w]) {
      continue;
    }
    // Chordless: w may be adjacent only to the current tip among path
    // members.
    bool chord = false;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (g.has_edge(w, path[i])) {
        chord = true;
        break;
      }
    }
    if (chord) {
      continue;
    }
    path.push_back(w);
    on_path[w] = true;
    chordless_dfs(g, path, on_path, best);
    on_path[w] = false;
    path.pop_back();
  }
}

}  // namespace

std::uint32_t longest_chordless_path_from(const Graph& g, NodeId source, NodeId max_n) {
  SNAPPIF_ASSERT_MSG(g.n() <= max_n,
                     "exhaustive chordless-path search is exponential; graph too large");
  SNAPPIF_ASSERT(source < g.n());
  std::vector<NodeId> path{source};
  std::vector<bool> on_path(g.n(), false);
  on_path[source] = true;
  std::uint32_t best = 0;
  chordless_dfs(g, path, on_path, best);
  return best;
}

bool is_chordless_path(const Graph& g, std::span<const NodeId> path) {
  if (path.empty()) {
    return false;
  }
  std::vector<bool> seen(g.n(), false);
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (path[i] >= g.n() || seen[path[i]]) {
      return false;
    }
    seen[path[i]] = true;
    if (i + 1 < path.size() && !g.has_edge(path[i], path[i + 1])) {
      return false;
    }
  }
  for (std::size_t i = 0; i < path.size(); ++i) {
    for (std::size_t j = i + 2; j < path.size(); ++j) {
      if (g.has_edge(path[i], path[j])) {
        return false;
      }
    }
  }
  return true;
}

std::optional<std::uint32_t> spanning_tree_height(const Graph& g, NodeId root,
                                                  std::span<const NodeId> parent) {
  if (parent.size() != g.n() || root >= g.n() || parent[root] != root) {
    return std::nullopt;
  }
  std::vector<std::uint32_t> depth(g.n(), kUnreachable);
  depth[root] = 0;
  std::uint32_t height = 0;
  for (NodeId start = 0; start < g.n(); ++start) {
    // Walk up to a vertex of known depth, recording the chain.
    std::vector<NodeId> chain;
    NodeId v = start;
    while (depth[v] == kUnreachable) {
      chain.push_back(v);
      const NodeId p = parent[v];
      if (p == v || p >= g.n() || !g.has_edge(v, p)) {
        return std::nullopt;  // non-root fixpoint, bad id, or non-edge parent
      }
      if (chain.size() > g.n()) {
        return std::nullopt;  // cycle
      }
      v = p;
    }
    std::uint32_t d = depth[v];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth[*it] = ++d;
    }
    height = std::max(height, d);
  }
  return height;
}

}  // namespace snappif::graph
