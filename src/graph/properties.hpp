// Structural graph properties used by the experiment harness.
//
// The paper's complexity bounds are phrased in terms of the network diameter,
// the height `h` of the dynamically constructed broadcast tree, and the
// length of the longest elementary *chordless* path (Theorem 4's remark).
// This module computes those quantities on the workload graphs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace snappif::graph {

/// Distance (in hops) of unreachable vertices.
inline constexpr std::uint32_t kUnreachable = 0xffffffffU;

/// BFS distances from `source` (kUnreachable where disconnected).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// BFS tree parents from `source`; parent of source and of unreachable
/// vertices is the vertex itself.
struct BfsTree {
  std::vector<NodeId> parent;
  std::vector<std::uint32_t> depth;
  std::uint32_t height = 0;  // max depth over reachable vertices
};
[[nodiscard]] BfsTree bfs_tree(const Graph& g, NodeId source);

[[nodiscard]] bool is_connected(const Graph& g);

/// Eccentricity of v: max distance to any vertex.  Graph must be connected.
[[nodiscard]] std::uint32_t eccentricity(const Graph& g, NodeId v);
/// Diameter (max eccentricity).  Graph must be connected.
[[nodiscard]] std::uint32_t diameter(const Graph& g);

/// Length (edge count) of the longest elementary chordless path starting at
/// `source`, computed by exhaustive DFS.  Exponential — intended for graphs
/// with <= ~20 vertices; asserts if n exceeds `max_n`.
[[nodiscard]] std::uint32_t longest_chordless_path_from(const Graph& g, NodeId source,
                                                        NodeId max_n = 20);

/// Checks whether the vertex sequence `path` is an elementary chordless path
/// in g: consecutive vertices adjacent, all distinct, and no edge between
/// non-consecutive members.
[[nodiscard]] bool is_chordless_path(const Graph& g, std::span<const NodeId> path);

/// Validates that `parent` encodes a spanning tree of g rooted at `root`:
/// parent[root] == root, every other vertex's parent is a neighbor, and
/// following parents reaches the root without cycles.  Returns tree height,
/// or nullopt if invalid.
[[nodiscard]] std::optional<std::uint32_t> spanning_tree_height(
    const Graph& g, NodeId root, std::span<const NodeId> parent);

}  // namespace snappif::graph
