// Segall-style repeated PIF with sequence numbers (reference [21]).
//
// Chang's echo handles one wave; Segall's propagation of information with
// feedback runs an unbounded sequence of waves, distinguished by sequence
// numbers: the root numbers each broadcast; a processor joins wave k when it
// first sees a token numbered k > its highest seen, and the usual echo
// bookkeeping runs per wave.
//
// This is the message-passing state of the art the self-/snap-stabilizing
// line of work starts from, and it exhibits the classic limitation the
// shared-memory reformulation addresses: sequence numbers survive crashes of
// *waves* (a new wave supersedes a broken one) but NOT arbitrary state
// corruption — a single phantom token carrying a future sequence number
// makes every receiver deaf to legitimate waves until the root's counter
// catches up (tests demonstrate the lost waves).  With bounded counters the
// adversary can even wrap them; unbounded counters are un-implementable —
// the impossibility folklore motivating snap-stabilization's different
// route (exact N + local checking instead of unbounded names).
#pragma once

#include <cstdint>
#include <vector>

#include "mp/network.hpp"

namespace snappif::mp {

class RepeatedPifProtocol final : public IMpProtocol {
 public:
  static constexpr std::uint8_t kToken = 1;  // a = seq, b = payload
  static constexpr std::uint8_t kEcho = 2;   // a = seq

  RepeatedPifProtocol(const graph::Graph& g, ProcessorId root);

  void on_start(ProcessorId p, Mailer& mailer) override;
  void on_message(ProcessorId p, ProcessorId from, const Message& m,
                  Mailer& mailer) override;

  /// Starts wave `waves_started()+1` carrying `payload` (root only; call
  /// only when the previous wave completed — the classic usage).
  void start_wave(Mailer& mailer, std::uint64_t payload);

  [[nodiscard]] std::uint64_t waves_started() const noexcept { return seq_; }
  [[nodiscard]] std::uint64_t waves_completed() const noexcept {
    return completed_;
  }
  /// Waves whose completion was observed with every processor having
  /// received that wave's payload.
  [[nodiscard]] std::uint64_t waves_ok() const noexcept { return ok_; }
  [[nodiscard]] std::uint64_t highest_seq_seen(ProcessorId p) const {
    return seen_.at(p);
  }
  [[nodiscard]] std::uint64_t payload_of(ProcessorId p) const {
    return payload_.at(p);
  }

 private:
  void maybe_ack(ProcessorId p, Mailer& mailer);

  const graph::Graph* graph_;
  ProcessorId root_;
  std::uint64_t seq_ = 0;        // root's wave counter
  std::uint64_t completed_ = 0;
  std::uint64_t ok_ = 0;
  std::vector<std::uint64_t> seen_;     // highest sequence number seen
  std::vector<std::uint64_t> payload_;  // payload of that wave
  std::vector<ProcessorId> parent_;
  std::vector<std::uint32_t> pending_;  // outstanding edges, current wave
  std::vector<bool> acked_;
};

}  // namespace snappif::mp
