// Shared-memory emulation over the message-passing substrate.
//
// The paper proves its PIF in the locally-shared-memory model: every guard
// reads the neighbors' variables directly.  GuardedEmulation runs the SAME
// protocol object — guards, statements, one-pass mask evaluation, all of it
// — over lossy, duplicating, reordering, crashing channels, by giving each
// processor a private cached view of its neighborhood:
//
//   * each processor owns one sim::Configuration in which only its own row
//     is authoritative; neighbor rows are snapshots received over the link;
//   * after every state change the processor publishes its new state to all
//     neighbors via LinkProtocol::send_latest (only the latest snapshot is
//     worth bandwidth — intermediate values are superseded, not queued);
//   * each emulated round, every live processor evaluates its guard mask
//     against its cached view and applies at most its first enabled action —
//     a synchronous daemon over stale-but-per-view-consistent data.
//
// Staleness is the point: the E16 experiment shows the snap property needs
// per-step consistency, not freshness, and the link layer's exactly-once
// in-order delivery keeps every cached row a value the neighbor really had.
// The result is the paper's algorithm — not its message-passing ancestors —
// degrading gracefully where Chang's echo deadlocks.
//
// Crash-recover faults: crash(p) silences p at the network layer (inbound
// channel content dies with it).  recover(p, mode) restarts it with either
// freshly-initialized state (kReset) or adversarially corrupted state
// (kCorrupt) — in both modes its cached neighbor views are rebuilt from the
// same mode, its link endpoint draws new incarnations, and the first frame
// it sends makes every neighbor's link report on_link_peer_reset, which we
// answer by re-publishing toward the rebooted processor.  Re-synchronization
// is therefore a protocol of the resilience layer itself, not of the tests.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "mp/impairment.hpp"
#include "mp/link.hpp"
#include "mp/network.hpp"
#include "sim/codec.hpp"
#include "sim/configuration.hpp"
#include "sim/protocol.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace snappif::mp {

template <sim::Protocol P, sim::StateCodec<typename P::State> C>
class GuardedEmulation final : public LinkClient {
 public:
  using State = typename P::State;
  /// Observes every applied action (processor, action, new state) — wire a
  /// pif::GhostTracker here to judge cycles.
  using ApplyHook =
      std::function<void(sim::ProcessorId, sim::ActionId, const State&)>;

  enum class Recovery {
    kReset,    // reboot with initial_state (clean NVRAM-less restart)
    kCorrupt,  // reboot with random_state (adversarial residue)
  };

  GuardedEmulation(const graph::Graph& g, const P& proto, C codec,
                   const sim::Configuration<State>& initial,
                   std::uint64_t seed, LinkConfig link_cfg = LinkConfig{})
      : graph_(&g),
        proto_(&proto),
        codec_(std::move(codec)),
        link_(g, *this, link_cfg, seed ^ 0x9e3779b97f4a7c15ULL),
        shim_(link_, g.n(), seed ^ 0xd1b54a32d192ed03ULL),
        net_(g, shim_, Delivery::kSynchronous, seed),
        gates_(g.n(), 0) {
    SNAPPIF_ASSERT_MSG(link_cfg.data_kind < 64 && link_cfg.ack_kind < 64,
                       "link kinds must fit the allowed-kinds mask");
    net_.set_allowed_kinds((1ULL << link_cfg.data_kind) |
                           (1ULL << link_cfg.ack_kind));
    // The shim interposes on both planes but stays a zero-RNG pass-through
    // until an impairment is armed — every pre-existing suite over this
    // emulation is bit-identical to the shimless stack.
    shim_.bind(net_);
    views_.reserve(g.n());
    for (sim::ProcessorId p = 0; p < g.n(); ++p) {
      views_.emplace_back(g, proto.initial_state(p));
      // Own row authoritative; neighbor rows seeded from the same global
      // snapshot — a consistent initial estimate (consistency, not
      // freshness, is what the snap property needs; see E16).
      views_[p].state(p) = initial.state(p);
      for (sim::ProcessorId q : g.neighbors(p)) {
        views_[p].state(q) = initial.state(q);
      }
    }
  }

  [[nodiscard]] Network& network() noexcept { return net_; }
  [[nodiscard]] LinkProtocol& link() noexcept { return link_; }
  [[nodiscard]] const LinkProtocol& link() const noexcept { return link_; }
  /// Socket-level impairment layer between the link and the network —
  /// loss/dup/reorder/delay/partition injection below the ARQ, plus
  /// bounded-mailbox shedding.  Disarmed (pass-through) by default.
  [[nodiscard]] ImpairmentShim& impairment() noexcept { return shim_; }
  [[nodiscard]] const ImpairmentShim& impairment() const noexcept {
    return shim_;
  }

  void set_apply_hook(ApplyHook hook) { hook_ = std::move(hook); }

  /// Blocks the given action bits at p (guards still evaluate; the actions
  /// just never fire).  The recovery oracle gates the root's B-action to
  /// find a settle point before judging the first released cycle.
  void set_action_gate(sim::ProcessorId p, sim::ActionMask blocked) {
    gates_.at(p) = blocked;
  }

  /// Publishes every processor's initial snapshot (via the link start hook).
  void start() { shim_.start(); }

  /// One emulated round: release due impaired frames and deliver all
  /// in-flight ones, run retransmission timers, then let every live
  /// processor apply at most one enabled action against its cached view and
  /// publish the result.
  void round() {
    shim_.step();
    link_.tick();
    for (sim::ProcessorId p = 0; p < graph_->n(); ++p) {
      if (net_.crashed(p)) {
        continue;
      }
      const sim::ActionMask mask =
          sim::enabled_mask(*proto_, views_[p], p) & ~gates_[p];
      if (mask == 0) {
        continue;
      }
      const sim::ActionId a = sim::first_action(mask);
      const State next = proto_->apply(views_[p], p, a);
      views_[p].state(p) = next;
      ++actions_applied_;
      if (hook_) {
        hook_(p, a, next);
      }
      publish(p);
    }
    ++rounds_;
  }

  void crash(sim::ProcessorId p) { net_.crash(p); }

  void recover(sim::ProcessorId p, Recovery mode, util::Rng& rng) {
    net_.recover(p);
    link_.reset_endpoint(p);
    // Volatile memory is gone: rebuild p's own row AND its cached neighbor
    // views from the recovery mode.  Neighbors re-sync us via the
    // peer-reset handshake our first outgoing frame triggers.
    views_[p].state(p) = mode == Recovery::kReset
                             ? proto_->initial_state(p)
                             : proto_->random_state(p, rng);
    for (sim::ProcessorId q : graph_->neighbors(p)) {
      views_[p].state(q) = mode == Recovery::kReset
                               ? proto_->initial_state(q)
                               : proto_->random_state(q, rng);
    }
    publish(p);
  }

  /// Nothing to do anywhere: no frame in flight or pending, and no live
  /// processor has an ungated enabled action.  The settle point of the
  /// recovery oracle.
  [[nodiscard]] bool quiescent() const {
    if (net_.in_flight() != 0 || !shim_.idle() || !link_.idle()) {
      return false;
    }
    for (sim::ProcessorId p = 0; p < graph_->n(); ++p) {
      if (net_.crashed(p)) {
        continue;
      }
      if ((sim::enabled_mask(*proto_, views_[p], p) & ~gates_[p]) != 0) {
        return false;
      }
    }
    return true;
  }

  /// p's authoritative local state.
  [[nodiscard]] const State& state(sim::ProcessorId p) const {
    return views_.at(p).state(p);
  }
  /// p's full cached view (own row + neighbor snapshots).
  [[nodiscard]] const sim::Configuration<State>& view(sim::ProcessorId p) const {
    return views_.at(p);
  }
  /// The true global configuration (every processor's own row) — for
  /// checkers and oracles, not visible to any processor.
  [[nodiscard]] sim::Configuration<State> global_view() const {
    sim::Configuration<State> c(*graph_, proto_->initial_state(0));
    for (sim::ProcessorId p = 0; p < graph_->n(); ++p) {
      c.state(p) = views_[p].state(p);
    }
    return c;
  }

  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] std::uint64_t actions_applied() const noexcept {
    return actions_applied_;
  }

  // LinkClient:
  void on_link_start(sim::ProcessorId p, LinkProtocol&) override { publish(p); }

  void on_link_deliver(sim::ProcessorId p, sim::ProcessorId from,
                       std::uint8_t /*kind*/, std::uint64_t payload,
                       LinkProtocol&) override {
    views_[p].state(from) = codec_.decode(from, payload);
  }

  void on_link_peer_reset(sim::ProcessorId p, sim::ProcessorId from,
                          LinkProtocol& link) override {
    // `from` rebooted: its cached row for us is default-initialized garbage.
    link.send_latest(p, from, kSnapshotKind, codec_.encode(views_[p].state(p)));
  }

 private:
  static constexpr std::uint8_t kSnapshotKind = 1;

  void publish(sim::ProcessorId p) {
    const std::uint64_t w = codec_.encode(views_[p].state(p));
    for (sim::ProcessorId q : graph_->neighbors(p)) {
      link_.send_latest(p, q, kSnapshotKind, w);
    }
  }

  const graph::Graph* graph_;
  const P* proto_;
  C codec_;
  LinkProtocol link_;
  ImpairmentShim shim_;
  Network net_;
  std::vector<sim::Configuration<State>> views_;
  std::vector<sim::ActionMask> gates_;
  ApplyHook hook_;
  std::uint64_t rounds_ = 0;
  std::uint64_t actions_applied_ = 0;
};

}  // namespace snappif::mp
