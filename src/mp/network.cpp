#include "mp/network.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace snappif::mp {

namespace {

/// Fault rates must be probabilities.  NaN is a programming error (it would
/// silently disable the comparison-based injection below); out-of-range
/// finite values are clamped, matching the Histogram clamping policy.
[[nodiscard]] double sanitize_rate(double rate) noexcept {
  SNAPPIF_ASSERT_MSG(!std::isnan(rate), "fault rate must not be NaN");
  return std::clamp(rate, 0.0, 1.0);
}

}  // namespace

void Network::set_loss_rate(double rate) noexcept {
  loss_rate_ = sanitize_rate(rate);
}

void Network::set_duplication_rate(double rate) noexcept {
  duplication_rate_ = sanitize_rate(rate);
}

void Network::set_reorder_rate(double rate) noexcept {
  reorder_rate_ = sanitize_rate(rate);
}

Network::Network(const graph::Graph& g, IMpProtocol& protocol,
                 Delivery delivery, std::uint64_t seed)
    : graph_(&g), protocol_(&protocol), delivery_(delivery), rng_(seed) {
  inbox_.resize(g.n());
  for (ProcessorId p = 0; p < g.n(); ++p) {
    inbox_[p].resize(g.degree(p));
  }
  crashed_.assign(g.n(), false);
}

std::size_t Network::channel_index(ProcessorId from, ProcessorId to) const {
  const auto nbrs = graph_->neighbors(to);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), from);
  SNAPPIF_ASSERT_MSG(it != nbrs.end() && *it == from,
                     "send along a non-edge");
  return static_cast<std::size_t>(it - nbrs.begin());
}

void Network::crash(ProcessorId p) {
  SNAPPIF_ASSERT(p < graph_->n());
  SNAPPIF_ASSERT_MSG(!crashed_[p], "crash() of an already-crashed processor");
  crashed_[p] = true;
  // Inbound channel buffers die with the endpoint.
  for (auto& queue : inbox_[p]) {
    dropped_crashed_ += queue.size();
    in_flight_ -= queue.size();
    queue.clear();
  }
}

void Network::recover(ProcessorId p) {
  SNAPPIF_ASSERT(p < graph_->n());
  SNAPPIF_ASSERT_MSG(crashed_[p], "recover() of a live processor");
  crashed_[p] = false;
}

void Network::enqueue(ProcessorId from, ProcessorId to, const Message& m) {
  // Every copy draws its loss and reorder chances unconditionally — the RNG
  // stream consumed per send is independent of WHICH rates are nonzero, so a
  // seeded repro line stays stable when a schedule edit toggles one fault
  // window on or off (the draws land on the same stream offsets).
  // Loss is decided per enqueued copy (a duplicated message can lose either
  // copy independently, like a real retransmission race).
  const bool lose = rng_.chance(loss_rate_);
  const bool jump = rng_.chance(reorder_rate_);
  if (lose) {
    ++dropped_;
    return;
  }
  auto& queue = inbox_[to][channel_index(from, to)];
  if (jump && !queue.empty()) {
    queue.push_front({from, m});
    ++reordered_;
  } else {
    queue.push_back({from, m});
  }
  ++in_flight_;
}

void Network::send(ProcessorId from, ProcessorId to, const Message& m) {
  SNAPPIF_ASSERT_MSG(
      allowed_kinds_ == 0 ||
          (m.kind < 64 && ((allowed_kinds_ >> m.kind) & 1) != 0),
      "send of an unknown message kind");
  ++sent_;
  // A crashed endpoint is silent in both directions; no fault draws are
  // consumed (the message never reaches the channel).
  if (crashed_[from] || crashed_[to]) {
    ++dropped_crashed_;
    return;
  }
  const bool duplicate = rng_.chance(duplication_rate_);
  enqueue(from, to, m);
  if (duplicate) {
    ++duplicated_;
    enqueue(from, to, m);
  }
}

void Network::start() {
  SNAPPIF_ASSERT_MSG(!started_, "start() called twice");
  started_ = true;
  for (ProcessorId p = 0; p < graph_->n(); ++p) {
    protocol_->on_start(p, *this);
  }
}

bool Network::step() {
  SNAPPIF_ASSERT_MSG(started_, "step() before start()");
  if (in_flight_ == 0) {
    return false;
  }
  if (delivery_ == Delivery::kSynchronous) {
    // Deliver exactly the messages in flight NOW (newly sent ones wait for
    // the next round).
    struct Pending {
      ProcessorId to;
      ProcessorId from;
      Message message;
    };
    std::vector<Pending> batch;
    for (ProcessorId p = 0; p < graph_->n(); ++p) {
      for (auto& queue : inbox_[p]) {
        while (!queue.empty()) {
          batch.push_back({p, queue.front().from, queue.front().message});
          queue.pop_front();
          --in_flight_;
        }
      }
    }
    for (const Pending& pending : batch) {
      // A crash mid-round kills the rest of the batch addressed to it.
      if (crashed_[pending.to]) {
        ++dropped_crashed_;
        continue;
      }
      ++delivered_;
      protocol_->on_message(pending.to, pending.from, pending.message, *this);
    }
    ++rounds_;
    return true;
  }

  // kRandomChannel: pick a uniformly random non-empty (receiver, slot).
  // Weighted by queue? Uniform over non-empty channels is the common
  // adversary abstraction; FIFO within a channel preserved.
  std::vector<std::pair<ProcessorId, std::size_t>> channels;
  for (ProcessorId p = 0; p < graph_->n(); ++p) {
    for (std::size_t slot = 0; slot < inbox_[p].size(); ++slot) {
      if (!inbox_[p][slot].empty()) {
        channels.emplace_back(p, slot);
      }
    }
  }
  SNAPPIF_ASSERT(!channels.empty());
  const auto [to, slot] = channels[rng_.below(channels.size())];
  const InFlight head = inbox_[to][slot].front();
  inbox_[to][slot].pop_front();
  --in_flight_;
  ++delivered_;
  protocol_->on_message(to, head.from, head.message, *this);
  return true;
}

bool Network::run(std::uint64_t max_deliveries) {
  if (!started_) {
    start();
  }
  std::uint64_t budget = max_deliveries;
  while (in_flight_ > 0) {
    if (budget == 0) {
      return false;
    }
    --budget;
    step();
  }
  return true;
}

}  // namespace snappif::mp
