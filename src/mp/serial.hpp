// Serial-number arithmetic (RFC 1982 shape) for the link layer's 16-bit
// incarnation and sequence counters.
//
// Stop-and-wait keeps live sequence numbers within a tiny window, so the
// comparison only needs to be correct locally: `a` counts as newer than `b`
// when it is ahead by less than half the period.  Anything half a period
// or more "ahead" is really a stale copy that overtook newer traffic (or
// wire garbage) and must compare as NOT newer, so the receiver discards it
// instead of re-delivering.  The subtraction is performed in uint16_t, so
// the comparison is exact across the 2^16 wrap — pinned by the wraparound
// suite in tests/mp/test_serial.cpp.
#pragma once

#include <cstdint>

namespace snappif::mp {

/// Is `a` strictly newer than `b` mod 2^16?
[[nodiscard]] constexpr bool serial_newer(std::uint16_t a,
                                          std::uint16_t b) noexcept {
  const std::uint16_t d = static_cast<std::uint16_t>(a - b);
  return d != 0 && d < 0x8000;
}

/// Forward distance from `b` to `a` mod 2^16 (how many increments take `b`
/// to `a`); 0 iff equal.
[[nodiscard]] constexpr std::uint16_t serial_distance(std::uint16_t a,
                                                      std::uint16_t b) noexcept {
  return static_cast<std::uint16_t>(a - b);
}

}  // namespace snappif::mp
