#include "mp/repeated_pif.hpp"

#include "util/assert.hpp"

namespace snappif::mp {

RepeatedPifProtocol::RepeatedPifProtocol(const graph::Graph& g,
                                         ProcessorId root)
    : graph_(&g), root_(root) {
  SNAPPIF_ASSERT(root < g.n());
  seen_.assign(g.n(), 0);
  payload_.assign(g.n(), 0);
  parent_.resize(g.n());
  pending_.assign(g.n(), 0);
  acked_.assign(g.n(), true);
  for (ProcessorId p = 0; p < g.n(); ++p) {
    parent_[p] = p;
  }
}

void RepeatedPifProtocol::on_start(ProcessorId /*p*/, Mailer& /*mailer*/) {
  // Waves are started explicitly via start_wave.
}

void RepeatedPifProtocol::start_wave(Mailer& mailer, std::uint64_t payload) {
  ++seq_;
  seen_[root_] = seq_;
  payload_[root_] = payload;
  pending_[root_] = static_cast<std::uint32_t>(graph_->degree(root_));
  acked_[root_] = false;
  for (ProcessorId q : graph_->neighbors(root_)) {
    mailer.send(root_, q, Message{kToken, seq_, payload});
  }
  if (graph_->degree(root_) == 0) {
    acked_[root_] = true;
    ++completed_;
    ++ok_;
  }
}

void RepeatedPifProtocol::maybe_ack(ProcessorId p, Mailer& mailer) {
  if (pending_[p] != 0 || acked_[p]) {
    return;
  }
  acked_[p] = true;
  if (p == root_) {
    ++completed_;
    // Observed (omniscient-checker) wave verdict: everyone on seq_ with the
    // root's payload.
    bool all = true;
    for (ProcessorId q = 0; q < graph_->n(); ++q) {
      all = all && seen_[q] == seq_ && payload_[q] == payload_[root_];
    }
    if (all) {
      ++ok_;
    }
    return;
  }
  mailer.send(p, parent_[p], Message{kEcho, seen_[p], 0});
}

void RepeatedPifProtocol::on_message(ProcessorId p, ProcessorId from,
                                     const Message& m, Mailer& mailer) {
  SNAPPIF_ASSERT(m.kind == kToken || m.kind == kEcho);
  if (m.kind == kToken) {
    if (m.a > seen_[p]) {
      // A fresh wave (by p's reckoning): adopt, reset per-wave bookkeeping.
      seen_[p] = m.a;
      payload_[p] = m.b;
      parent_[p] = from;
      pending_[p] = static_cast<std::uint32_t>(graph_->degree(p)) - 1;
      acked_[p] = false;
      for (ProcessorId q : graph_->neighbors(p)) {
        if (q != from) {
          mailer.send(p, q, Message{kToken, m.a, m.b});
        }
      }
      maybe_ack(p, mailer);
      return;
    }
    // A token of p's current wave from a non-parent: counts as an echo.
    // Stale tokens (older waves) are ignored entirely.
    if (m.a == seen_[p] && pending_[p] > 0) {
      --pending_[p];
      maybe_ack(p, mailer);
    }
    return;
  }
  // Echo: only current-wave echoes count.
  if (m.a == seen_[p] && pending_[p] > 0) {
    --pending_[p];
    maybe_ack(p, mailer);
  }
}

}  // namespace snappif::mp
