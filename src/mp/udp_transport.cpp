#include "mp/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/assert.hpp"

namespace snappif::mp {

namespace {

constexpr std::uint32_t kMagic = 0x46495053;       // "SPIF"
constexpr std::uint32_t kBatchMagic = 0x42495053;  // "SPIB"
constexpr std::size_t kFrameSize = 32;
constexpr std::size_t kBatchHeaderSize = 16;
constexpr std::size_t kBatchBodySize = 24;
// Per-datagram frame cap: 16 + 64*24 = 1552 bytes, far under the loopback
// MTU; send_batch chunks longer batches.
constexpr std::size_t kMaxBatchFrames = 64;
constexpr std::size_t kRxBufferSize =
    kBatchHeaderSize + kMaxBatchFrames * kBatchBodySize;
// Datagrams pulled per recvmmsg call while draining a ready socket.
constexpr std::size_t kRxBurst = 16;

struct WireFrame {
  std::uint32_t magic;
  std::uint32_t from;
  std::uint32_t to;
  std::uint8_t kind;
  std::uint8_t pad[3];
  std::uint64_t a;
  std::uint64_t b;
};
static_assert(sizeof(WireFrame) == kFrameSize);

struct BatchHeader {
  std::uint32_t magic;
  std::uint32_t from;
  std::uint32_t to;
  std::uint32_t count;
};
static_assert(sizeof(BatchHeader) == kBatchHeaderSize);

struct BatchBody {
  std::uint8_t kind;
  std::uint8_t pad[7];
  std::uint64_t a;
  std::uint64_t b;
};
static_assert(sizeof(BatchBody) == kBatchBodySize);

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

UdpTransport::UdpTransport(const graph::Graph& g, IMpProtocol& protocol,
                           UdpConfig cfg)
    : graph_(&g), protocol_(&protocol), cfg_(cfg) {
  static_assert(kMaxDatagramBytes == kRxBufferSize);
  epoll_fd_ = epoll_create1(0);
  SNAPPIF_ASSERT_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  sockets_.resize(g.n(), -1);
  ports_.resize(g.n(), 0);
  tx_.resize(g.n());
  for (TxStage& st : tx_) {
    st.slots.resize(kTxStageDepth);
  }
  tx_dirty_.reserve(g.n());
  for (ProcessorId p = 0; p < g.n(); ++p) {
    const int fd = socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
    SNAPPIF_ASSERT_MSG(fd >= 0, "udp socket() failed");
    const std::uint16_t want =
        cfg_.base_port == 0
            ? std::uint16_t{0}
            : static_cast<std::uint16_t>(cfg_.base_port + p);
    sockaddr_in addr = loopback_addr(want);
    SNAPPIF_ASSERT_MSG(
        bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0,
        "udp bind() failed");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    SNAPPIF_ASSERT(getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
                   0);
    ports_[p] = ntohs(bound.sin_port);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = static_cast<std::uint32_t>(p);
    SNAPPIF_ASSERT_MSG(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                       "epoll_ctl ADD failed");
    sockets_[p] = fd;
  }
}

UdpTransport::~UdpTransport() {
  for (const int fd : sockets_) {
    if (fd >= 0) {
      close(fd);
    }
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
  }
}

std::uint16_t UdpTransport::port(ProcessorId p) const {
  SNAPPIF_ASSERT(p < ports_.size());
  return ports_[p];
}

bool UdpTransport::neighbors(ProcessorId u, ProcessorId v) const {
  const auto nbrs = graph_->neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

void UdpTransport::start() {
  SNAPPIF_ASSERT_MSG(!started_, "transport started twice");
  started_ = true;
  for (ProcessorId p = 0; p < graph_->n(); ++p) {
    protocol_->on_start(p, *this);
  }
}

unsigned char* UdpTransport::stage_datagram(ProcessorId from, ProcessorId to,
                                            std::size_t len,
                                            std::uint16_t frames) {
  TxStage& st = tx_[from];
  if (st.count == kTxStageDepth) {
    flush_tx(from);  // forced mid-step flush; the dirty mark survives below
  }
  if (st.count == 0) {
    tx_dirty_.push_back(from);
  }
  TxDatagram& d = st.slots[st.count++];
  d.to = to;
  d.len = static_cast<std::uint16_t>(len);
  d.frames = frames;
  return d.buf;
}

void UdpTransport::flush_tx(ProcessorId p) {
  TxStage& st = tx_[p];
  if (st.count == 0) {
    return;
  }
  mmsghdr msgs[kTxStageDepth]{};
  iovec iovs[kTxStageDepth];
  sockaddr_in dests[kTxStageDepth];
  for (std::size_t i = 0; i < st.count; ++i) {
    TxDatagram& d = st.slots[i];
    dests[i] = loopback_addr(ports_[d.to]);
    iovs[i] = iovec{d.buf, d.len};
    msgs[i].msg_hdr.msg_name = &dests[i];
    msgs[i].msg_hdr.msg_namelen = sizeof(dests[i]);
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
  }
  std::size_t done = 0;
  while (done < st.count) {
    const int sent = sendmmsg(sockets_[p], msgs + done,
                              static_cast<unsigned int>(st.count - done), 0);
    if (sent <= 0) {
      break;  // EAGAIN/ENOBUFS: the rest of the stage is a real loss
    }
    done += static_cast<std::size_t>(sent);
  }
  for (std::size_t i = done; i < st.count; ++i) {
    // Each undelivered datagram shares one fate; the link retransmits.
    stats_.dropped += st.slots[i].frames;
  }
  st.count = 0;
}

void UdpTransport::flush_all_tx() {
  for (const ProcessorId p : tx_dirty_) {
    flush_tx(p);
  }
  tx_dirty_.clear();
}

void UdpTransport::send(ProcessorId from, ProcessorId to, const Message& m) {
  SNAPPIF_ASSERT(from < graph_->n() && to < graph_->n());
  SNAPPIF_ASSERT_MSG(neighbors(from, to), "udp send on a non-edge");
  ++stats_.sent;
  WireFrame frame{};
  frame.magic = kMagic;
  frame.from = static_cast<std::uint32_t>(from);
  frame.to = static_cast<std::uint32_t>(to);
  frame.kind = m.kind;
  frame.a = m.a;
  frame.b = m.b;
  unsigned char* buf = stage_datagram(from, to, kFrameSize, 1);
  std::memcpy(buf, &frame, kFrameSize);
}

void UdpTransport::send_batch(ProcessorId from, ProcessorId to,
                              const Message* frames, std::size_t count) {
  if (count == 1) {
    send(from, to, frames[0]);
    return;
  }
  SNAPPIF_ASSERT(from < graph_->n() && to < graph_->n());
  SNAPPIF_ASSERT_MSG(neighbors(from, to), "udp send on a non-edge");
  std::size_t done = 0;
  while (done < count) {
    const std::size_t chunk = std::min(count - done, kMaxBatchFrames);
    const std::size_t len = kBatchHeaderSize + chunk * kBatchBodySize;
    unsigned char* buf =
        stage_datagram(from, to, len, static_cast<std::uint16_t>(chunk));
    BatchHeader header{};
    header.magic = kBatchMagic;
    header.from = static_cast<std::uint32_t>(from);
    header.to = static_cast<std::uint32_t>(to);
    header.count = static_cast<std::uint32_t>(chunk);
    std::memcpy(buf, &header, kBatchHeaderSize);
    for (std::size_t i = 0; i < chunk; ++i) {
      BatchBody body{};
      body.kind = frames[done + i].kind;
      body.a = frames[done + i].a;
      body.b = frames[done + i].b;
      std::memcpy(buf + kBatchHeaderSize + i * kBatchBodySize, &body,
                  kBatchBodySize);
    }
    stats_.sent += chunk;
    ++stats_.batches;
    done += chunk;
  }
}

bool UdpTransport::dispatch_datagram(ProcessorId p, const unsigned char* buf,
                                     std::size_t n) {
  if (n == kFrameSize) {
    WireFrame frame{};
    std::memcpy(&frame, buf, kFrameSize);
    if (frame.magic != kMagic || frame.to != static_cast<std::uint32_t>(p) ||
        frame.from >= graph_->n() ||
        !neighbors(static_cast<ProcessorId>(frame.from), p)) {
      ++stats_.rx_errors;
      return false;
    }
    ++stats_.delivered;
    protocol_->on_message(p, static_cast<ProcessorId>(frame.from),
                          Message{frame.kind, frame.a, frame.b}, *this);
    return true;
  }
  // Batch datagram: header + count bodies, dispatched in order (the link's
  // per-edge FIFO survives coalescing; only whole datagrams can be lost or
  // reordered by the kernel).
  BatchHeader header{};
  if (n < kBatchHeaderSize) {
    ++stats_.rx_errors;
    return false;
  }
  std::memcpy(&header, buf, kBatchHeaderSize);
  if (header.magic != kBatchMagic || header.count < 1 ||
      header.count > kMaxBatchFrames ||
      n != kBatchHeaderSize + header.count * kBatchBodySize ||
      header.to != static_cast<std::uint32_t>(p) ||
      header.from >= graph_->n() ||
      !neighbors(static_cast<ProcessorId>(header.from), p)) {
    ++stats_.rx_errors;
    return false;
  }
  for (std::uint32_t f = 0; f < header.count; ++f) {
    BatchBody body{};
    std::memcpy(&body, buf + kBatchHeaderSize + f * kBatchBodySize,
                kBatchBodySize);
    ++stats_.delivered;
    protocol_->on_message(p, static_cast<ProcessorId>(header.from),
                          Message{body.kind, body.a, body.b}, *this);
  }
  return true;
}

bool UdpTransport::step() {
  SNAPPIF_ASSERT_MSG(started_, "transport step before start");
  // Everything staged since the last step rides out first, one sendmmsg per
  // dirty sender socket.
  flush_all_tx();
  epoll_event events[64];
  std::uint32_t drained = 0;
  bool more = true;
  bool first_wait = true;
  while (more && drained < cfg_.max_datagrams_per_step) {
    // Only the first wait of a step may block (poll_timeout_ms); once we are
    // draining, go non-blocking so a step stays bounded.
    const int timeout = first_wait ? cfg_.poll_timeout_ms : 0;
    first_wait = false;
    const int ready = epoll_wait(epoll_fd_, events, 64, timeout);
    if (ready <= 0) {
      break;
    }
    more = false;
    for (int i = 0; i < ready && drained < cfg_.max_datagrams_per_step; ++i) {
      const ProcessorId p = static_cast<ProcessorId>(events[i].data.u32);
      // Drain this socket in recvmmsg bursts until empty or the step budget
      // runs out (the budget may overshoot by at most one burst).
      while (drained < cfg_.max_datagrams_per_step) {
        unsigned char bufs[kRxBurst][kRxBufferSize];
        mmsghdr msgs[kRxBurst]{};
        iovec iovs[kRxBurst];
        for (std::size_t b = 0; b < kRxBurst; ++b) {
          iovs[b] = iovec{bufs[b], kRxBufferSize};
          msgs[b].msg_hdr.msg_iov = &iovs[b];
          msgs[b].msg_hdr.msg_iovlen = 1;
        }
        const int got = recvmmsg(sockets_[p], msgs,
                                 static_cast<unsigned int>(kRxBurst), 0,
                                 nullptr);
        if (got <= 0) {
          break;  // EAGAIN: socket drained
        }
        more = true;  // something was readable; poll again after this batch
        for (int b = 0; b < got; ++b) {
          if (dispatch_datagram(p, bufs[b], msgs[b].msg_len)) {
            ++drained;
          }
        }
        if (static_cast<std::size_t>(got) < kRxBurst) {
          break;  // short burst: the socket is empty
        }
      }
    }
  }
  last_step_empty_ = drained == 0;
  return drained > 0;
}

}  // namespace snappif::mp
