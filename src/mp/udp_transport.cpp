#include "mp/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/assert.hpp"

namespace snappif::mp {

namespace {

constexpr std::uint32_t kMagic = 0x46495053;  // "SPIF"
constexpr std::size_t kFrameSize = 32;

struct WireFrame {
  std::uint32_t magic;
  std::uint32_t from;
  std::uint32_t to;
  std::uint8_t kind;
  std::uint8_t pad[3];
  std::uint64_t a;
  std::uint64_t b;
};
static_assert(sizeof(WireFrame) == kFrameSize);

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

UdpTransport::UdpTransport(const graph::Graph& g, IMpProtocol& protocol,
                           UdpConfig cfg)
    : graph_(&g), protocol_(&protocol), cfg_(cfg) {
  epoll_fd_ = epoll_create1(0);
  SNAPPIF_ASSERT_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  sockets_.resize(g.n(), -1);
  ports_.resize(g.n(), 0);
  for (ProcessorId p = 0; p < g.n(); ++p) {
    const int fd = socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
    SNAPPIF_ASSERT_MSG(fd >= 0, "udp socket() failed");
    const std::uint16_t want =
        cfg_.base_port == 0
            ? std::uint16_t{0}
            : static_cast<std::uint16_t>(cfg_.base_port + p);
    sockaddr_in addr = loopback_addr(want);
    SNAPPIF_ASSERT_MSG(
        bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0,
        "udp bind() failed");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    SNAPPIF_ASSERT(getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
                   0);
    ports_[p] = ntohs(bound.sin_port);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = static_cast<std::uint32_t>(p);
    SNAPPIF_ASSERT_MSG(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                       "epoll_ctl ADD failed");
    sockets_[p] = fd;
  }
}

UdpTransport::~UdpTransport() {
  for (const int fd : sockets_) {
    if (fd >= 0) {
      close(fd);
    }
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
  }
}

std::uint16_t UdpTransport::port(ProcessorId p) const {
  SNAPPIF_ASSERT(p < ports_.size());
  return ports_[p];
}

bool UdpTransport::neighbors(ProcessorId u, ProcessorId v) const {
  const auto nbrs = graph_->neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

void UdpTransport::start() {
  SNAPPIF_ASSERT_MSG(!started_, "transport started twice");
  started_ = true;
  for (ProcessorId p = 0; p < graph_->n(); ++p) {
    protocol_->on_start(p, *this);
  }
}

void UdpTransport::send(ProcessorId from, ProcessorId to, const Message& m) {
  SNAPPIF_ASSERT(from < graph_->n() && to < graph_->n());
  SNAPPIF_ASSERT_MSG(neighbors(from, to), "udp send on a non-edge");
  ++stats_.sent;
  WireFrame frame{};
  frame.magic = kMagic;
  frame.from = static_cast<std::uint32_t>(from);
  frame.to = static_cast<std::uint32_t>(to);
  frame.kind = m.kind;
  frame.a = m.a;
  frame.b = m.b;
  const sockaddr_in dest = loopback_addr(ports_[to]);
  const ssize_t sent =
      sendto(sockets_[from], &frame, sizeof(frame), 0,
             reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
  if (sent != static_cast<ssize_t>(sizeof(frame))) {
    // Full socket buffer or transient kernel refusal: a real datagram loss.
    // The link layer's retransmission owns recovery.
    ++stats_.dropped;
  }
}

bool UdpTransport::step() {
  SNAPPIF_ASSERT_MSG(started_, "transport step before start");
  epoll_event events[64];
  std::uint32_t drained = 0;
  bool more = true;
  bool first_wait = true;
  while (more && drained < cfg_.max_datagrams_per_step) {
    // Only the first wait of a step may block (poll_timeout_ms); once we are
    // draining, go non-blocking so a step stays bounded.
    const int timeout = first_wait ? cfg_.poll_timeout_ms : 0;
    first_wait = false;
    const int ready = epoll_wait(epoll_fd_, events, 64, timeout);
    if (ready <= 0) {
      break;
    }
    more = false;
    for (int i = 0; i < ready && drained < cfg_.max_datagrams_per_step; ++i) {
      const ProcessorId p = static_cast<ProcessorId>(events[i].data.u32);
      // Drain this socket until empty or the step budget runs out.
      while (drained < cfg_.max_datagrams_per_step) {
        WireFrame frame{};
        const ssize_t n =
            recv(sockets_[p], &frame, sizeof(frame), 0);
        if (n < 0) {
          break;  // EAGAIN: socket drained
        }
        more = true;  // something was readable; poll again after this batch
        if (n != static_cast<ssize_t>(kFrameSize) || frame.magic != kMagic ||
            frame.to != static_cast<std::uint32_t>(p) ||
            frame.from >= graph_->n() ||
            !neighbors(static_cast<ProcessorId>(frame.from), p)) {
          ++stats_.rx_errors;
          continue;
        }
        ++drained;
        ++stats_.delivered;
        protocol_->on_message(p, static_cast<ProcessorId>(frame.from),
                              Message{frame.kind, frame.a, frame.b}, *this);
      }
    }
  }
  last_step_empty_ = drained == 0;
  return drained > 0;
}

}  // namespace snappif::mp
