#include "mp/echo.hpp"

#include "util/assert.hpp"

namespace snappif::mp {

EchoProtocol::EchoProtocol(const graph::Graph& g, ProcessorId root,
                           std::uint64_t payload)
    : graph_(&g), root_(root), payload_(payload) {
  SNAPPIF_ASSERT(root < g.n());
  received_.assign(g.n(), false);
  payload_seen_.assign(g.n(), 0);
  parent_.resize(g.n());
  pending_.resize(g.n());
  acked_.assign(g.n(), false);
  for (ProcessorId p = 0; p < g.n(); ++p) {
    parent_[p] = p;
    pending_[p] = static_cast<std::uint32_t>(g.degree(p));
  }
}

void EchoProtocol::on_start(ProcessorId p, Mailer& mailer) {
  if (p != root_) {
    return;
  }
  received_[root_] = true;
  payload_seen_[root_] = payload_;
  for (ProcessorId q : graph_->neighbors(root_)) {
    mailer.send(root_, q, Message{kToken, payload_, 0});
  }
}

void EchoProtocol::maybe_ack(ProcessorId p, Mailer& mailer) {
  if (pending_[p] != 0 || acked_[p]) {
    return;
  }
  acked_[p] = true;
  if (p == root_) {
    completed_ = true;
    return;
  }
  mailer.send(p, parent_[p], Message{kEcho, payload_seen_[p], 0});
}

void EchoProtocol::on_message(ProcessorId p, ProcessorId from, const Message& m,
                              Mailer& mailer) {
  SNAPPIF_ASSERT(m.kind == kToken || m.kind == kEcho);
  // Every incoming message (token or echo) settles one incident edge.
  SNAPPIF_ASSERT_MSG(pending_[p] > 0, "more messages than incident edges");
  --pending_[p];

  if (m.kind == kToken && !received_[p] && p != root_) {
    // First token: adopt the sender as parent, forward everywhere else.
    received_[p] = true;
    payload_seen_[p] = m.a;
    parent_[p] = from;
    for (ProcessorId q : graph_->neighbors(p)) {
      if (q != from) {
        mailer.send(p, q, Message{kToken, m.a, 0});
      }
    }
  }
  maybe_ack(p, mailer);
}

}  // namespace snappif::mp
