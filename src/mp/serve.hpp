// PIF-as-a-service wave driver over the reliable link: the verification
// workload behind tools/snappif_serve.cpp and the E23/E24 transport benches.
//
// WaveService runs k CONCURRENT Chang-echo PIF streams end to end over
// LinkProtocol — on ANY ITransport backend (deterministic loopback, impaired
// loopback, real UDP) — and *asserts the link's delivery contract while
// doing it*.  Stream s is rooted at (root + s) mod n and every token, echo,
// and counter frame carries its stream id in the payload's top 16 bits, so
// streams share every edge's window yet are verified independently:
//
//   * per-(edge, stream) counters: alongside each wave every processor
//     sends a monotonically increasing counter per stream to each neighbor;
//     the receiver asserts it sees exactly 0,1,2,... — a direct
//     exactly-once in-order check that fails loudly on the first violated
//     delivery, duplicated frame, or hole, and catches cross-stream
//     interference (a frame surfacing on the wrong stream breaks BOTH
//     streams' counters);
//   * per-(edge, stream) token monotonicity: wave tokens arriving on one
//     edge must carry strictly increasing wave numbers for their stream;
//   * all-joined completion: when a stream's root closes wave w, every
//     processor must have joined wave w of THAT stream (the PIF broadcast
//     actually reached everyone before the feedback phase closed —
//     [PIF1]/[PIF2] in message-passing clothing).
//
// Within one stream waves stay serialized (the root initiates w+1 only
// after w completes — a clean per-wave latency measurement); across streams
// they pipeline, which is what keeps a windowed link's edges full.
//
// Backpressure: the service never asserts on a full link ring.  Sends go
// through a per-edge deferred queue — if LinkProtocol::try_send refuses,
// the frame parks in FIFO order and pump() (called once per drive-loop
// step) re-offers it as acks drain the edge.  Per-edge FIFO order is
// preserved, which the gapless counter check depends on.
//
// Peer resets (on_link_peer_reset — first contact, a phantom incarnation
// from arbitrary initial channel content, or a genuine peer reboot) re-base
// that edge's per-stream receive expectations: the next counter per stream
// is accepted as the new base and checked strictly gapless from there.
// Other edges and their streams are untouched — the resynchronization is
// edge-local, which the cross-stream isolation tests pin.
//
// ServeObserver is the flight-recorder hook: an ILinkObserver recording
// frame life-cycle instants (send/retransmit/deliver/peer-reset) into an
// obs::SpanCollector, with wave spans opened/closed by the service — the
// message-passing sibling of the emulation campaign's EmuTracer.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mp/link.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace snappif::mp {

struct ServeConfig {
  ProcessorId root = 0;
  /// PIF waves to run PER STREAM; the service is done() when every stream's
  /// root has seen this many complete.
  std::uint32_t waves = 100;
  /// Concurrent wave streams; stream s is rooted at (root + s) mod n.  1 is
  /// the historical serialized service.
  std::uint32_t streams = 1;
};

struct ServeStats {
  std::uint64_t waves_completed = 0;  // across all streams
  std::uint64_t joins = 0;            // processor-joins across all waves
  std::uint64_t echoes = 0;           // echo upcalls (explicit + token-as-echo)
  std::uint64_t stream_checks = 0;    // in-order counter deliveries verified
  std::uint64_t stale_tokens = 0;     // tokens for already-finished waves
  std::uint64_t peer_resyncs = 0;     // on_link_peer_reset upcalls observed
  std::uint64_t deferrals = 0;        // frames parked on link backpressure
  std::uint64_t stream_rebases = 0;   // per-(edge, stream) counter expectations
                                      // re-based after a peer reset
};

class WaveService final : public LinkClient {
 public:
  WaveService(const graph::Graph& g, ServeConfig cfg);

  /// Optional wave-span tracing: spans are stamped with `tick` (drive loop
  /// sets it each step).  Pass nullptr to disable.
  void set_spans(obs::SpanCollector* spans) noexcept { spans_ = spans; }
  void set_tick(std::uint64_t tick) noexcept { tick_ = tick; }

  /// Re-offers deferred frames to the link in per-edge FIFO order.  Drive
  /// loops call this once per step (after link.tick(), before link.flush())
  /// so backpressured traffic drains as acks free the windows.
  void pump(LinkProtocol& link);

  [[nodiscard]] bool done() const noexcept {
    for (const std::uint32_t c : completed_) {
      if (c < cfg_.waves) {
        return false;
      }
    }
    return true;
  }
  /// No deferred frame parked anywhere (trailing counters may outlive
  /// done(); tests drain to quiescence for exact bookkeeping).
  [[nodiscard]] bool quiescent() const noexcept {
    return deferred_edges_.empty();
  }
  [[nodiscard]] const ServeStats& stats() const noexcept { return stats_; }
  /// Wave in flight on stream 0 (0 = none) — kept for single-stream tools.
  [[nodiscard]] std::uint64_t current_wave() const noexcept {
    return wave_[0];
  }
  /// Span id of stream 0's wave in flight (0 = none); ServeObserver
  /// attributes frame events to it (frames carry no stream id at the
  /// observer level, so the primary stream anchors the trace).
  [[nodiscard]] obs::SpanId wave_span() const noexcept {
    return wave_span_[0];
  }
  /// Adds the stats to `registry` as "mp.serve.*" counters.
  void record_telemetry(obs::Registry& registry) const;

  // LinkClient:
  void on_link_start(ProcessorId p, LinkProtocol& link) override;
  void on_link_deliver(ProcessorId p, ProcessorId from, std::uint8_t kind,
                       std::uint64_t payload, LinkProtocol& link) override;
  void on_link_peer_reset(ProcessorId p, ProcessorId from,
                          LinkProtocol& link) override;

 private:
  struct Deferred {
    std::uint8_t kind = 0;
    std::uint64_t payload = 0;
  };

  [[nodiscard]] ProcessorId root_of(std::uint32_t s) const noexcept {
    return static_cast<ProcessorId>((cfg_.root + s) % graph_->n());
  }
  /// Directed-edge id of (u -> v): CSR offset of v in u's neighbor row.
  [[nodiscard]] std::size_t eidx(ProcessorId u, ProcessorId v) const;
  void edge_send(std::size_t e, std::uint8_t kind, std::uint64_t payload,
                 LinkProtocol& link);
  void join(std::uint32_t s, ProcessorId p, ProcessorId parent,
            std::uint64_t wave, LinkProtocol& link);
  void on_echo(std::uint32_t s, ProcessorId p, std::uint64_t wave,
               LinkProtocol& link);
  void complete_wave(std::uint32_t s, LinkProtocol& link);
  void open_wave_span(std::uint32_t s);

  const graph::Graph* graph_;
  ServeConfig cfg_;
  obs::SpanCollector* spans_ = nullptr;
  std::uint64_t tick_ = 0;
  std::size_t edges_ = 0;

  // Per-stream wave state; [s] and [s * n + p] layouts.
  std::vector<std::uint64_t> wave_;      // [s] wave in flight (0 = none)
  std::vector<std::uint32_t> completed_; // [s] waves completed
  std::vector<obs::SpanId> wave_span_;   // [s]
  std::vector<std::uint64_t> joined_;    // [s*n+p] last wave p joined
  std::vector<ProcessorId> parent_;      // [s*n+p] parent in current wave
  std::vector<std::uint32_t> awaiting_;  // [s*n+p] echoes still owed
  // Per-(stream, directed-edge) verification state, [s * edges + e] with e
  // the CSR offset (same layout as the link's sender/receiver tables).
  std::vector<std::size_t> base_;
  std::vector<ProcessorId> esrc_;
  std::vector<ProcessorId> edst_;
  std::vector<std::uint64_t> stream_next_tx_;   // next counter out
  std::vector<std::uint64_t> stream_next_rx_;   // next expected in
                                                // (kRxRebase = re-learn base)
  std::vector<std::uint64_t> last_token_wave_;  // monotonicity floor
  // Deferred frames per edge: FIFO vectors drained by pump().
  std::vector<std::vector<Deferred>> deferred_;
  std::vector<std::size_t> deferred_head_;
  std::vector<std::size_t> deferred_edges_;  // dirty-edge worklist
  std::vector<std::uint8_t> deferred_flag_;
  ServeStats stats_;
};

/// Frame life-cycle flight recording for serve runs: every link event
/// becomes an instant span attributed to the wave in flight.
class ServeObserver final : public ILinkObserver {
 public:
  explicit ServeObserver(obs::SpanCollector& spans, const WaveService& service)
      : spans_(&spans), service_(&service) {}

  void set_tick(std::uint64_t tick) noexcept { tick_ = tick; }

  void on_link_transmit(ProcessorId from, ProcessorId to,
                        bool retransmit) override;
  void on_link_delivered(ProcessorId to, ProcessorId from) override;
  void on_link_peer_reset(ProcessorId to, ProcessorId from) override;

 private:
  obs::SpanCollector* spans_;
  const WaveService* service_;
  std::uint64_t tick_ = 0;
};

}  // namespace snappif::mp
