// PIF-as-a-service wave driver over the reliable link: the verification
// workload behind tools/snappif_serve.cpp and the E23 transport bench.
//
// WaveService runs Chang-echo PIF cycles end to end over LinkProtocol — on
// ANY ITransport backend (deterministic loopback, impaired loopback, real
// UDP) — and *asserts the link's delivery contract while doing it*:
//
//   * per-directed-edge stream counters: alongside each wave every
//     processor sends a monotonically increasing counter to each neighbor;
//     the receiver asserts it sees exactly 0,1,2,... — a direct
//     exactly-once in-order check that fails loudly on the first violated
//     delivery, duplicated frame, or hole;
//   * per-edge token monotonicity: wave tokens arriving on one edge must
//     carry strictly increasing wave numbers;
//   * all-joined completion: when the root's echo closes wave w, every
//     processor must have joined wave w (the PIF broadcast actually reached
//     everyone before the feedback phase closed — [PIF1]/[PIF2] in
//     message-passing clothing).
//
// Waves are serialized: the root initiates wave w+1 only after wave w
// completes, so per-edge link buffering stays O(1) and completion latency
// is a clean per-wave measurement.
//
// ServeObserver is the flight-recorder hook: an ILinkObserver recording
// frame life-cycle instants (send/retransmit/deliver/peer-reset) into an
// obs::SpanCollector, with wave spans opened/closed by the service — the
// message-passing sibling of the emulation campaign's EmuTracer.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mp/link.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace snappif::mp {

struct ServeConfig {
  ProcessorId root = 0;
  /// Total PIF waves to run; the service is done() when the root has seen
  /// this many complete.
  std::uint32_t waves = 100;
};

struct ServeStats {
  std::uint64_t waves_completed = 0;
  std::uint64_t joins = 0;            // processor-joins across all waves
  std::uint64_t echoes = 0;           // echo upcalls (explicit + token-as-echo)
  std::uint64_t stream_checks = 0;    // in-order counter deliveries verified
  std::uint64_t stale_tokens = 0;     // tokens for already-finished waves
  std::uint64_t peer_resyncs = 0;     // on_link_peer_reset upcalls observed
};

class WaveService final : public LinkClient {
 public:
  WaveService(const graph::Graph& g, ServeConfig cfg);

  /// Optional wave-span tracing: spans are stamped with `tick` (drive loop
  /// sets it each step).  Pass nullptr to disable.
  void set_spans(obs::SpanCollector* spans) noexcept { spans_ = spans; }
  void set_tick(std::uint64_t tick) noexcept { tick_ = tick; }

  [[nodiscard]] bool done() const noexcept {
    return stats_.waves_completed >= cfg_.waves;
  }
  [[nodiscard]] const ServeStats& stats() const noexcept { return stats_; }
  /// Every processor joined the most recently completed wave (checked and
  /// asserted at each completion; exposed for end-of-run reporting).
  [[nodiscard]] std::uint64_t current_wave() const noexcept { return wave_; }
  /// Span id of the wave in flight (0 = none); ServeObserver attributes
  /// frame events to it.
  [[nodiscard]] obs::SpanId wave_span() const noexcept { return wave_span_; }
  /// Adds the stats to `registry` as "mp.serve.*" counters.
  void record_telemetry(obs::Registry& registry) const;

  // LinkClient:
  void on_link_start(ProcessorId p, LinkProtocol& link) override;
  void on_link_deliver(ProcessorId p, ProcessorId from, std::uint8_t kind,
                       std::uint64_t payload, LinkProtocol& link) override;
  void on_link_peer_reset(ProcessorId p, ProcessorId from,
                          LinkProtocol& link) override;

 private:
  void join(ProcessorId p, ProcessorId parent, std::uint64_t wave,
            LinkProtocol& link);
  void on_echo(ProcessorId p, std::uint64_t wave, LinkProtocol& link);
  void complete_wave(LinkProtocol& link);

  const graph::Graph* graph_;
  ServeConfig cfg_;
  obs::SpanCollector* spans_ = nullptr;
  std::uint64_t tick_ = 0;
  obs::SpanId wave_span_ = 0;

  std::uint64_t wave_ = 0;               // wave currently in flight (0 = none)
  std::vector<std::uint64_t> joined_;    // [p] last wave p joined
  std::vector<ProcessorId> parent_;      // [p] parent in the current wave
  std::vector<std::uint32_t> awaiting_;  // [p] echoes still owed this wave
  // Per-directed-edge verification state, indexed by CSR offset (same
  // layout as the link's sender/receiver tables).
  std::vector<std::size_t> base_;
  std::vector<std::uint64_t> stream_next_tx_;   // [did(u,v)] next counter out
  std::vector<std::uint64_t> stream_next_rx_;   // [did(v,u)] next expected in
  std::vector<std::uint64_t> last_token_wave_;  // [did(v,u)] monotonicity
  ServeStats stats_;
};

/// Frame life-cycle flight recording for serve runs: every link event
/// becomes an instant span attributed to the wave in flight.
class ServeObserver final : public ILinkObserver {
 public:
  explicit ServeObserver(obs::SpanCollector& spans, const WaveService& service)
      : spans_(&spans), service_(&service) {}

  void set_tick(std::uint64_t tick) noexcept { tick_ = tick; }

  void on_link_transmit(ProcessorId from, ProcessorId to,
                        bool retransmit) override;
  void on_link_delivered(ProcessorId to, ProcessorId from) override;
  void on_link_peer_reset(ProcessorId to, ProcessorId from) override;

 private:
  obs::SpanCollector* spans_;
  const WaveService* service_;
  std::uint64_t tick_ = 0;
};

}  // namespace snappif::mp
