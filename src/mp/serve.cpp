#include "mp/serve.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace snappif::mp {

namespace {

// User kinds carried inside link data frames.
constexpr std::uint8_t kToken = 2;   // payload = wave number
constexpr std::uint8_t kEcho = 3;    // payload = wave number
constexpr std::uint8_t kStream = 4;  // payload = per-edge counter

// Stream id rides in the payload's top 16 bits; wave numbers and counters
// live in the low 48 (a soak would need 2^48 waves to overflow).
constexpr std::uint64_t kValueMask = (std::uint64_t{1} << 48) - 1;
// "Re-learn the base": after a peer reset the next counter per stream is
// accepted as-is and the gapless check restarts from it.
constexpr std::uint64_t kRxRebase = ~std::uint64_t{0};

constexpr std::uint64_t pack(std::uint32_t stream, std::uint64_t value) {
  return (static_cast<std::uint64_t>(stream) << 48) | value;
}

}  // namespace

WaveService::WaveService(const graph::Graph& g, ServeConfig cfg)
    : graph_(&g), cfg_(cfg) {
  SNAPPIF_ASSERT(cfg_.root < g.n());
  SNAPPIF_ASSERT_MSG(cfg_.streams >= 1, "serve needs at least one stream");
  const std::size_t n = g.n();
  base_.resize(n + 1, 0);
  for (ProcessorId p = 0; p < n; ++p) {
    base_[p + 1] = base_[p] + g.degree(p);
  }
  edges_ = base_[n];
  esrc_.resize(edges_, 0);
  edst_.resize(edges_, 0);
  for (ProcessorId p = 0; p < n; ++p) {
    const auto nbrs = graph_->neighbors(p);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      esrc_[base_[p] + i] = p;
      edst_[base_[p] + i] = nbrs[i];
    }
  }
  for (std::uint32_t s = 0; s < cfg_.streams; ++s) {
    SNAPPIF_ASSERT_MSG(g.degree(root_of(s)) > 0,
                       "serve root must have at least one neighbor");
  }
  const std::size_t k = cfg_.streams;
  wave_.resize(k, 0);
  completed_.resize(k, 0);
  wave_span_.resize(k, 0);
  joined_.resize(k * n, 0);
  parent_.resize(k * n, 0);
  awaiting_.resize(k * n, 0);
  stream_next_tx_.resize(k * edges_, 0);
  stream_next_rx_.resize(k * edges_, kRxRebase);
  last_token_wave_.resize(k * edges_, 0);
  deferred_.resize(edges_);
  deferred_head_.resize(edges_, 0);
  deferred_flag_.resize(edges_, 0);
  deferred_edges_.reserve(edges_);
}

std::size_t WaveService::eidx(ProcessorId u, ProcessorId v) const {
  const auto nbrs = graph_->neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  SNAPPIF_ASSERT_MSG(it != nbrs.end() && *it == v,
                     "serve edge lookup on a non-edge");
  return base_[u] + static_cast<std::size_t>(it - nbrs.begin());
}

void WaveService::edge_send(std::size_t e, std::uint8_t kind,
                            std::uint64_t payload, LinkProtocol& link) {
  // Backpressure-safe: an edge with parked frames must keep queueing behind
  // them (per-edge FIFO is what the gapless counter check rides on).
  if (deferred_flag_[e] == 0 &&
      link.try_send(esrc_[e], edst_[e], kind, payload)) {
    return;
  }
  if (deferred_flag_[e] == 0) {
    deferred_flag_[e] = 1;
    deferred_edges_.push_back(e);
  }
  deferred_[e].push_back(Deferred{kind, payload});
  ++stats_.deferrals;
}

void WaveService::pump(LinkProtocol& link) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < deferred_edges_.size(); ++i) {
    const std::size_t e = deferred_edges_[i];
    std::vector<Deferred>& q = deferred_[e];
    std::size_t& head = deferred_head_[e];
    while (head < q.size() &&
           link.try_send(esrc_[e], edst_[e], q[head].kind, q[head].payload)) {
      ++head;
    }
    if (head == q.size()) {
      q.clear();
      head = 0;
      deferred_flag_[e] = 0;
    } else {
      if (head > 0) {
        q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
      deferred_edges_[kept++] = e;
    }
  }
  deferred_edges_.resize(kept);
}

void WaveService::record_telemetry(obs::Registry& registry) const {
  registry.counter("mp.serve.waves_completed").inc(stats_.waves_completed);
  registry.counter("mp.serve.joins").inc(stats_.joins);
  registry.counter("mp.serve.echoes").inc(stats_.echoes);
  registry.counter("mp.serve.stream_checks").inc(stats_.stream_checks);
  registry.counter("mp.serve.stale_tokens").inc(stats_.stale_tokens);
  registry.counter("mp.serve.peer_resyncs").inc(stats_.peer_resyncs);
  registry.counter("mp.serve.deferrals").inc(stats_.deferrals);
  registry.counter("mp.serve.stream_rebases").inc(stats_.stream_rebases);
}

void WaveService::open_wave_span(std::uint32_t s) {
  if (spans_ == nullptr) {
    return;
  }
  wave_span_[s] = spans_->open(obs::SpanKind::kWave, tick_,
                               static_cast<std::uint32_t>(root_of(s)));
}

void WaveService::on_link_start(ProcessorId p, LinkProtocol& link) {
  if (cfg_.waves == 0) {
    return;
  }
  for (std::uint32_t s = 0; s < cfg_.streams; ++s) {
    if (root_of(s) != p) {
      continue;
    }
    wave_[s] = 1;
    open_wave_span(s);
    join(s, p, p, 1, link);
  }
}

void WaveService::join(std::uint32_t s, ProcessorId p, ProcessorId parent,
                       std::uint64_t wave, LinkProtocol& link) {
  const std::size_t n = graph_->n();
  joined_[s * n + p] = wave;
  parent_[s * n + p] = parent;
  ++stats_.joins;
  const bool is_root = p == root_of(s) && parent == p;
  const auto nbrs = graph_->neighbors(p);
  std::uint32_t awaiting = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const ProcessorId q = nbrs[i];
    const std::size_t e = base_[p] + i;
    // The in-order exactly-once probe rides along with every wave: one
    // counter per (directed edge, stream), which the receiver asserts is
    // gapless — and which a cross-stream mixup would break on both sides.
    edge_send(e, kStream, pack(s, stream_next_tx_[s * edges_ + e]++), link);
    if (!is_root && q == parent) {
      continue;
    }
    edge_send(e, kToken, pack(s, wave), link);
    ++awaiting;
  }
  awaiting_[s * n + p] = awaiting;
  if (awaiting == 0) {
    // Leaf with only its parent as neighbor: echo immediately.
    ++stats_.echoes;
    edge_send(eidx(p, parent), kEcho, pack(s, wave), link);
  }
}

void WaveService::on_echo(std::uint32_t s, ProcessorId p, std::uint64_t wave,
                          LinkProtocol& link) {
  const std::size_t sp = s * graph_->n() + p;
  SNAPPIF_ASSERT_MSG(wave == joined_[sp] && awaiting_[sp] > 0,
                     "echo for a wave this processor is not collecting");
  ++stats_.echoes;
  if (--awaiting_[sp] > 0) {
    return;
  }
  if (p == root_of(s)) {
    complete_wave(s, link);
  } else {
    edge_send(eidx(p, parent_[sp]), kEcho, pack(s, wave), link);
  }
}

void WaveService::complete_wave(std::uint32_t s, LinkProtocol& link) {
  // [PIF1]/[PIF2] in message-passing clothing: the root's feedback phase
  // may only close once the broadcast reached every processor — checked
  // per stream, so k pipelined streams each prove it independently.
  const std::size_t n = graph_->n();
  for (ProcessorId p = 0; p < n; ++p) {
    SNAPPIF_ASSERT_MSG(joined_[s * n + p] == wave_[s],
                       "wave completed before every processor joined");
  }
  ++stats_.waves_completed;
  ++completed_[s];
  if (spans_ != nullptr && wave_span_[s] != 0) {
    spans_->close(wave_span_[s], tick_);
    wave_span_[s] = 0;
  }
  if (completed_[s] >= cfg_.waves) {
    wave_[s] = 0;
    return;
  }
  ++wave_[s];
  open_wave_span(s);
  join(s, root_of(s), root_of(s), wave_[s], link);
}

void WaveService::on_link_deliver(ProcessorId p, ProcessorId from,
                                  std::uint8_t kind, std::uint64_t payload,
                                  LinkProtocol& link) {
  // Receiver-side edge index of (from -> p): p's row, from's slot (which is
  // also the reply edge p -> from for echoes).
  const std::size_t e = eidx(p, from);
  const std::uint32_t s = static_cast<std::uint32_t>(payload >> 48);
  const std::uint64_t value = payload & kValueMask;
  SNAPPIF_ASSERT_MSG(s < cfg_.streams,
                     "serve delivery tagged with an unknown stream");
  const std::size_t se = s * edges_ + e;
  switch (kind) {
    case kStream: {
      std::uint64_t& rx = stream_next_rx_[se];
      if (rx == kRxRebase) {
        // First counter after (re)sync on this (edge, stream): adopt it as
        // the new base; gapless from here.
        rx = value + 1;
        ++stats_.stream_rebases;
        ++stats_.stream_checks;
        return;
      }
      // The link's exactly-once in-order contract, checked directly: any
      // duplicate, hole, or reordering trips this assert on first violation.
      SNAPPIF_ASSERT_MSG(value == rx,
                         "stream counter out of order: link delivery "
                         "contract violated");
      ++rx;
      ++stats_.stream_checks;
      return;
    }
    case kToken:
      SNAPPIF_ASSERT_MSG(value > last_token_wave_[se],
                         "wave token not monotonically increasing on edge");
      last_token_wave_[se] = value;
      if (value > joined_[s * graph_->n() + p]) {
        join(s, p, from, value, link);
      } else if (value == joined_[s * graph_->n() + p]) {
        // Already joined via another parent: the token still owes its
        // sender an echo so the sender's count closes.
        ++stats_.echoes;
        edge_send(e, kEcho, pack(s, value), link);
      } else {
        ++stats_.stale_tokens;
      }
      return;
    case kEcho:
      on_echo(s, p, value, link);
      return;
    default:
      SNAPPIF_ASSERT_MSG(false, "serve received an unknown user kind");
  }
}

void WaveService::on_link_peer_reset(ProcessorId p, ProcessorId from,
                                     LinkProtocol& /*link*/) {
  // First contact on each edge surfaces here, as does a phantom incarnation
  // synthesized from arbitrary initial channel content or a genuine peer
  // reboot.  Re-base THIS edge's per-stream receive expectations (the peer
  // may have restarted its counters); every other edge — and every stream
  // on it — keeps its strict gapless check, which the isolation tests pin.
  const std::size_t e = eidx(p, from);
  for (std::uint32_t s = 0; s < cfg_.streams; ++s) {
    stream_next_rx_[s * edges_ + e] = kRxRebase;
    last_token_wave_[s * edges_ + e] = 0;
  }
  ++stats_.peer_resyncs;
}

void ServeObserver::on_link_transmit(ProcessorId from, ProcessorId to,
                                     bool retransmit) {
  spans_->instant(retransmit ? obs::SpanKind::kLinkRetransmit
                             : obs::SpanKind::kLinkSend,
                  tick_, from, 0, service_->wave_span(), {}, to);
}

void ServeObserver::on_link_delivered(ProcessorId to, ProcessorId from) {
  spans_->instant(obs::SpanKind::kLinkDeliver, tick_, to, 0,
                  service_->wave_span(), {}, from);
}

void ServeObserver::on_link_peer_reset(ProcessorId to, ProcessorId from) {
  spans_->instant(obs::SpanKind::kLinkPeerReset, tick_, to, 0,
                  service_->wave_span(), {}, from);
}

}  // namespace snappif::mp
