#include "mp/serve.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace snappif::mp {

namespace {

// User kinds carried inside link data frames.
constexpr std::uint8_t kToken = 2;   // payload = wave number
constexpr std::uint8_t kEcho = 3;    // payload = wave number
constexpr std::uint8_t kStream = 4;  // payload = per-edge counter

}  // namespace

WaveService::WaveService(const graph::Graph& g, ServeConfig cfg)
    : graph_(&g), cfg_(cfg) {
  SNAPPIF_ASSERT(cfg_.root < g.n());
  SNAPPIF_ASSERT_MSG(g.degree(cfg_.root) > 0,
                     "serve root must have at least one neighbor");
  const std::size_t n = g.n();
  joined_.resize(n, 0);
  parent_.resize(n, 0);
  awaiting_.resize(n, 0);
  base_.resize(n + 1, 0);
  for (ProcessorId p = 0; p < n; ++p) {
    base_[p + 1] = base_[p] + g.degree(p);
  }
  const std::size_t edges = base_[n];
  stream_next_tx_.resize(edges, 0);
  stream_next_rx_.resize(edges, 0);
  last_token_wave_.resize(edges, 0);
}

void WaveService::record_telemetry(obs::Registry& registry) const {
  registry.counter("mp.serve.waves_completed").inc(stats_.waves_completed);
  registry.counter("mp.serve.joins").inc(stats_.joins);
  registry.counter("mp.serve.echoes").inc(stats_.echoes);
  registry.counter("mp.serve.stream_checks").inc(stats_.stream_checks);
  registry.counter("mp.serve.stale_tokens").inc(stats_.stale_tokens);
  registry.counter("mp.serve.peer_resyncs").inc(stats_.peer_resyncs);
}

void WaveService::on_link_start(ProcessorId p, LinkProtocol& link) {
  if (p != cfg_.root || cfg_.waves == 0) {
    return;
  }
  wave_ = 1;
  if (spans_ != nullptr) {
    wave_span_ = spans_->open(obs::SpanKind::kWave, tick_,
                              static_cast<std::uint32_t>(cfg_.root));
  }
  join(cfg_.root, cfg_.root, wave_, link);
}

void WaveService::join(ProcessorId p, ProcessorId parent, std::uint64_t wave,
                       LinkProtocol& link) {
  joined_[p] = wave;
  parent_[p] = parent;
  ++stats_.joins;
  const bool is_root = p == cfg_.root && parent == p;
  const auto nbrs = graph_->neighbors(p);
  std::uint32_t awaiting = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const ProcessorId q = nbrs[i];
    const std::size_t e = base_[p] + i;
    // The in-order exactly-once probe rides along with every wave: one
    // counter per directed edge, which the receiver asserts is gapless.
    link.send(p, q, kStream, stream_next_tx_[e]++);
    if (!is_root && q == parent) {
      continue;
    }
    link.send(p, q, kToken, wave);
    ++awaiting;
  }
  awaiting_[p] = awaiting;
  if (awaiting == 0) {
    // Leaf with only its parent as neighbor: echo immediately.
    ++stats_.echoes;
    link.send(p, parent, kEcho, wave);
  }
}

void WaveService::on_echo(ProcessorId p, std::uint64_t wave,
                          LinkProtocol& link) {
  SNAPPIF_ASSERT_MSG(wave == joined_[p] && awaiting_[p] > 0,
                     "echo for a wave this processor is not collecting");
  ++stats_.echoes;
  if (--awaiting_[p] > 0) {
    return;
  }
  if (p == cfg_.root) {
    complete_wave(link);
  } else {
    link.send(p, parent_[p], kEcho, wave);
  }
}

void WaveService::complete_wave(LinkProtocol& link) {
  // [PIF1]/[PIF2] in message-passing clothing: the root's feedback phase
  // may only close once the broadcast reached every processor.
  for (ProcessorId p = 0; p < graph_->n(); ++p) {
    SNAPPIF_ASSERT_MSG(joined_[p] == wave_,
                       "wave completed before every processor joined");
  }
  ++stats_.waves_completed;
  if (spans_ != nullptr && wave_span_ != 0) {
    spans_->close(wave_span_, tick_);
    wave_span_ = 0;
  }
  if (done()) {
    wave_ = 0;
    return;
  }
  ++wave_;
  if (spans_ != nullptr) {
    wave_span_ = spans_->open(obs::SpanKind::kWave, tick_,
                              static_cast<std::uint32_t>(cfg_.root));
  }
  join(cfg_.root, cfg_.root, wave_, link);
}

void WaveService::on_link_deliver(ProcessorId p, ProcessorId from,
                                  std::uint8_t kind, std::uint64_t payload,
                                  LinkProtocol& link) {
  // Receiver-side edge index of (from -> p): p's row, from's slot.
  const auto nbrs = graph_->neighbors(p);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), from);
  SNAPPIF_ASSERT_MSG(it != nbrs.end() && *it == from,
                     "serve delivery from a non-neighbor");
  const std::size_t e = base_[p] + static_cast<std::size_t>(it - nbrs.begin());
  switch (kind) {
    case kStream:
      // The link's exactly-once in-order contract, checked directly: any
      // duplicate, hole, or reordering trips this assert on first violation.
      SNAPPIF_ASSERT_MSG(payload == stream_next_rx_[e],
                         "stream counter out of order: link delivery "
                         "contract violated");
      ++stream_next_rx_[e];
      ++stats_.stream_checks;
      return;
    case kToken:
      SNAPPIF_ASSERT_MSG(payload > last_token_wave_[e],
                         "wave token not monotonically increasing on edge");
      last_token_wave_[e] = payload;
      if (payload > joined_[p]) {
        join(p, from, payload, link);
      } else if (payload == joined_[p]) {
        // Already joined via another parent: the token still owes its
        // sender an echo so the sender's count closes.
        ++stats_.echoes;
        link.send(p, from, kEcho, payload);
      } else {
        ++stats_.stale_tokens;
      }
      return;
    case kEcho:
      on_echo(p, payload, link);
      return;
    default:
      SNAPPIF_ASSERT_MSG(false, "serve received an unknown user kind");
  }
}

void WaveService::on_link_peer_reset(ProcessorId /*p*/, ProcessorId /*from*/,
                                     LinkProtocol& /*link*/) {
  // First contact on each edge surfaces here (and crash-recovery would, if
  // the tool ever injects it); the service has no cached per-peer state to
  // re-push — the stream counters deliberately survive, since the link
  // contract under test is exactly-once in-order on an uncrashed edge.
  ++stats_.peer_resyncs;
}

void ServeObserver::on_link_transmit(ProcessorId from, ProcessorId to,
                                     bool retransmit) {
  spans_->instant(retransmit ? obs::SpanKind::kLinkRetransmit
                             : obs::SpanKind::kLinkSend,
                  tick_, from, 0, service_->wave_span(), {}, to);
}

void ServeObserver::on_link_delivered(ProcessorId to, ProcessorId from) {
  spans_->instant(obs::SpanKind::kLinkDeliver, tick_, to, 0,
                  service_->wave_span(), {}, from);
}

void ServeObserver::on_link_peer_reset(ProcessorId to, ProcessorId from) {
  spans_->instant(obs::SpanKind::kLinkPeerReset, tick_, to, 0,
                  service_->wave_span(), {}, from);
}

}  // namespace snappif::mp
