#include "mp/impairment.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace snappif::mp {

namespace {

double clamp_rate(double rate) noexcept {
  SNAPPIF_ASSERT_MSG(!std::isnan(rate), "impairment rate is NaN");
  return std::clamp(rate, 0.0, 1.0);
}

}  // namespace

ImpairmentShim::ImpairmentShim(IMpProtocol& upper, std::size_t n,
                               std::uint64_t seed)
    : upper_(&upper),
      rng_(seed),
      partitioned_(n, false),
      inbound_used_(n, 0) {}

void ImpairmentShim::bind(ITransport& inner) {
  SNAPPIF_ASSERT_MSG(inner_ == nullptr, "impairment shim already bound");
  inner_ = &inner;
}

void ImpairmentShim::rearm() noexcept {
  any_partition_ =
      std::find(partitioned_.begin(), partitioned_.end(), true) !=
      partitioned_.end();
  armed_ = loss_rate_ > 0.0 || duplication_rate_ > 0.0 ||
           reorder_rate_ > 0.0 || (delay_rate_ > 0.0 && delay_steps_ > 0) ||
           delivery_budget_ > 0 || any_partition_;
}

void ImpairmentShim::set_loss_rate(double rate) noexcept {
  loss_rate_ = clamp_rate(rate);
  rearm();
}

void ImpairmentShim::set_duplication_rate(double rate) noexcept {
  duplication_rate_ = clamp_rate(rate);
  rearm();
}

void ImpairmentShim::set_reorder_rate(double rate) noexcept {
  reorder_rate_ = clamp_rate(rate);
  rearm();
}

void ImpairmentShim::set_delay(double rate, std::uint32_t steps) noexcept {
  delay_rate_ = clamp_rate(rate);
  delay_steps_ = steps;
  rearm();
}

void ImpairmentShim::partition(ProcessorId p) {
  SNAPPIF_ASSERT(p < partitioned_.size());
  partitioned_[p] = true;
  rearm();
}

void ImpairmentShim::heal(ProcessorId p) {
  SNAPPIF_ASSERT(p < partitioned_.size());
  partitioned_[p] = false;
  rearm();
}

void ImpairmentShim::set_delivery_budget(std::uint32_t budget) noexcept {
  delivery_budget_ = budget;
  rearm();
}

void ImpairmentShim::start() {
  SNAPPIF_ASSERT_MSG(inner_ != nullptr, "impairment shim used before bind");
  inner_->start();
}

void ImpairmentShim::release_due() {
  // Held frames re-enter the inner transport in insertion order once due.
  // swap-free compaction keeps this allocation-light on the hot path.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < held_.size(); ++i) {
    Held& h = held_[i];
    if (h.due_step <= step_) {
      inner_->send(h.from, h.to, h.message);
    } else {
      held_[kept++] = h;
    }
  }
  held_.resize(kept);
}

bool ImpairmentShim::step() {
  SNAPPIF_ASSERT_MSG(inner_ != nullptr, "impairment shim used before bind");
  ++step_;
  if (armed_) {
    std::fill(inbound_used_.begin(), inbound_used_.end(), 0u);
  }
  // Held frames drain even after the shim is disarmed mid-run (a chaos
  // campaign clearing its windows must not strand delayed traffic).
  if (!held_.empty()) {
    release_due();
  }
  return inner_->step();
}

bool ImpairmentShim::idle() const {
  return held_.empty() && inner_ != nullptr && inner_->idle();
}

void ImpairmentShim::send(ProcessorId from, ProcessorId to, const Message& m) {
  SNAPPIF_ASSERT_MSG(inner_ != nullptr, "impairment shim used before bind");
  ++stats_.sent;
  if (!armed_) {
    inner_->send(from, to, m);  // pass-through: zero RNG draws
    return;
  }
  if (partitioned_[from] || partitioned_[to]) {
    ++stats_.partitioned;
    return;
  }
  // One draw per fault class per frame, unconditionally — toggling one rate
  // never shifts another fault's draw stream (mirrors mp::Network).
  const bool dup = rng_.chance(duplication_rate_);
  const std::uint64_t copies = dup ? 2 : 1;
  if (dup) {
    ++stats_.duplicated;
  }
  for (std::uint64_t c = 0; c < copies; ++c) {
    const bool lost = rng_.chance(loss_rate_);
    const bool reorder = rng_.chance(reorder_rate_);
    const bool delay = rng_.chance(delay_rate_);
    if (lost) {
      ++stats_.dropped;
      continue;
    }
    if (delay && delay_steps_ > 0) {
      ++stats_.delayed;
      held_.push_back(Held{step_ + delay_steps_, from, to, m});
      continue;
    }
    if (reorder) {
      // Hold until the next step: the frame re-enters the inner transport
      // AFTER anything sent later this step, landing behind newer traffic.
      ++stats_.reordered;
      held_.push_back(Held{step_ + 1, from, to, m});
      continue;
    }
    inner_->send(from, to, m);
  }
}

void ImpairmentShim::send_batch(ProcessorId from, ProcessorId to,
                                const Message* frames, std::size_t count) {
  SNAPPIF_ASSERT_MSG(inner_ != nullptr, "impairment shim used before bind");
  if (!armed_) {
    stats_.sent += count;
    inner_->send_batch(from, to, frames, count);  // pass-through: zero draws
    return;
  }
  // Armed: each frame faces the full fault menu with its own draws (one per
  // fault class, unconditionally, in batch order — same stream as
  // dissolving into send() calls).  Copies that come through untouched are
  // staged and forwarded as ONE inner batch: dropped and held copies never
  // reach the wire this step, so the surviving batch is in wire order and
  // the only difference from frame-by-frame dissolution is fewer inner
  // sends (one datagram instead of many, on a real transport).
  survivors_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const Message& m = frames[i];
    ++stats_.sent;
    if (partitioned_[from] || partitioned_[to]) {
      ++stats_.partitioned;
      continue;
    }
    const bool dup = rng_.chance(duplication_rate_);
    const std::uint64_t copies = dup ? 2 : 1;
    if (dup) {
      ++stats_.duplicated;
    }
    for (std::uint64_t c = 0; c < copies; ++c) {
      const bool lost = rng_.chance(loss_rate_);
      const bool reorder = rng_.chance(reorder_rate_);
      const bool delay = rng_.chance(delay_rate_);
      if (lost) {
        ++stats_.dropped;
        continue;
      }
      if (delay && delay_steps_ > 0) {
        ++stats_.delayed;
        held_.push_back(Held{step_ + delay_steps_, from, to, m});
        continue;
      }
      if (reorder) {
        ++stats_.reordered;
        held_.push_back(Held{step_ + 1, from, to, m});
        continue;
      }
      survivors_.push_back(m);
    }
  }
  if (!survivors_.empty()) {
    inner_->send_batch(from, to, survivors_.data(), survivors_.size());
  }
}

void ImpairmentShim::on_start(ProcessorId p, Mailer& /*mailer*/) {
  // The upper protocol must send through the shim, not the inner backend.
  upper_->on_start(p, *this);
}

void ImpairmentShim::on_message(ProcessorId p, ProcessorId from,
                                const Message& m, Mailer& /*mailer*/) {
  if (armed_) {
    if (partitioned_[p] || partitioned_[from]) {
      // Frames already in flight when the partition rose die here.
      ++stats_.partitioned;
      return;
    }
    if (delivery_budget_ > 0) {
      if (inbound_used_[p] >= delivery_budget_) {
        ++stats_.shed;
        return;
      }
      ++inbound_used_[p];
    }
  }
  ++stats_.delivered;
  upper_->on_message(p, from, m, *this);
}

}  // namespace snappif::mp
