// Chang's echo algorithm (reference [10]; also Segall [21]) — the original,
// fault-free PIF on reliable asynchronous channels.
//
//   * the root sends TOKEN(m) over every incident edge;
//   * a non-root, on its FIRST token, adopts the sender as parent and
//     forwards TOKEN(m) over every other incident edge;
//   * every processor sends exactly one message per incident edge; once a
//     processor has received one message on every incident edge (tokens
//     from non-parents count as echoes), it sends ECHO(m) to its parent;
//   * the wave terminates when the root has received a message on every
//     incident edge.
//
// Classic properties (verified in tests): exactly 2|E| messages, spanning
// tree construction, completion after ~2*ecc(root) synchronous rounds,
// [PIF1] and [PIF2] always — but only under the no-fault assumption: a
// single lost message deadlocks the wave forever, which is the gap the
// paper's snap-stabilizing protocol closes.
#pragma once

#include <cstdint>
#include <vector>

#include "mp/network.hpp"

namespace snappif::mp {

class EchoProtocol final : public IMpProtocol {
 public:
  static constexpr std::uint8_t kToken = 1;
  static constexpr std::uint8_t kEcho = 2;

  EchoProtocol(const graph::Graph& g, ProcessorId root, std::uint64_t payload);

  void on_start(ProcessorId p, Mailer& mailer) override;
  void on_message(ProcessorId p, ProcessorId from, const Message& m,
                  Mailer& mailer) override;

  /// Did the feedback phase reach the root?
  [[nodiscard]] bool completed() const noexcept { return completed_; }
  /// Has processor p received the broadcast payload?
  [[nodiscard]] bool received(ProcessorId p) const { return received_.at(p); }
  [[nodiscard]] std::uint64_t payload_of(ProcessorId p) const {
    return payload_seen_.at(p);
  }
  /// Parent array of the constructed spanning tree (root: self).
  [[nodiscard]] const std::vector<ProcessorId>& parents() const noexcept {
    return parent_;
  }
  [[nodiscard]] ProcessorId root() const noexcept { return root_; }

 private:
  void maybe_ack(ProcessorId p, Mailer& mailer);

  const graph::Graph* graph_;
  ProcessorId root_;
  std::uint64_t payload_;
  bool completed_ = false;
  std::vector<bool> received_;
  std::vector<std::uint64_t> payload_seen_;
  std::vector<ProcessorId> parent_;
  std::vector<std::uint32_t> pending_;  // incident edges still owing a message
  std::vector<bool> acked_;             // sent the echo upward already
};

}  // namespace snappif::mp
