// Real-datagram ITransport backend: non-blocking UDP sockets on localhost,
// one per processor, drained through an epoll event loop.
//
// This is the measurement backend — the point where the repository's link
// layer stops being simulated and faces an actual kernel: real socket
// buffers, real scheduling jitter, and (under load or an ImpairmentShim)
// real loss.  The 32-byte wire frame carries mp::Message verbatim — the
// link layer's incarnation+sequence headers travel inside Message.a exactly
// as they do over the loopback, so the ARQ/stop-and-wait machinery is
// byte-for-byte the code every deterministic suite already pins.
//
// Wire frame (little-endian, 32 bytes):
//   u32 magic      "SPIF" (0x46495053) — anything else is rx_errors
//   u32 from       sending processor id
//   u32 to         receiving processor id (must own the socket it lands on)
//   u8  kind, u8[3] zero padding
//   u64 a, u64 b   Message payload words
//
// Batch datagram (send_batch, the link's per-flush coalescing): 16-byte
// header {u32 magic "SPIB" (0x42495053), u32 from, u32 to, u32 count}
// followed by `count` 24-byte bodies {u8 kind, u8[7] pad, u64 a, u64 b} —
// one sendto per edge per flush instead of one per frame, which is where
// the windowed link's UDP throughput comes from.  Frames inside a batch are
// dispatched in order on receive; batches are chunked so a datagram stays
// comfortably under the loopback MTU.
//
// Malformed datagrams (wrong size, bad magic, inconsistent batch count,
// out-of-range ids, frames on the wrong socket, non-edges) are counted as
// rx_errors and dropped — wire garbage is the adversary's move, not a
// crash.  Failed sends (full socket buffer, EWOULDBLOCK) count as dropped;
// the link retransmits.
//
// Syscall batching: outbound datagrams stage per sender socket and flush
// with ONE sendmmsg at the top of the next step (or when the stage fills);
// inbound sockets drain in recvmmsg bursts.  Under impairment the link's
// traffic spreads across many small flushes — per-datagram sendto/recv
// pairs, not frame volume, would dominate the wall clock without this.
// Staging adds no protocol-visible latency: every drive loop calls step()
// once per iteration, which is exactly when an un-staged sendto's datagram
// would first be drained anyway.
//
// NOT deterministic: the kernel schedules delivery.  Replayable suites run
// over mp::Network; this backend exists for snappif_serve, the E23 bench,
// and the UDP soak.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mp/transport.hpp"

namespace snappif::mp {

struct UdpConfig {
  /// 0 (default): bind each socket to an OS-assigned ephemeral port
  /// (collision-proof for tests); otherwise processor p binds base_port+p.
  std::uint16_t base_port = 0;
  /// Per-step drain bound across all sockets — keeps one chatty neighbor
  /// from starving the rest of the step loop.
  std::uint32_t max_datagrams_per_step = 1024;
  /// epoll_wait timeout per step.  0 = non-blocking poll; small positive
  /// values trade latency for idle CPU in soak loops.
  int poll_timeout_ms = 0;
};

class UdpTransport final : public ITransport {
 public:
  /// Binds one socket per processor eagerly; asserts on socket/bind/epoll
  /// failure (an unusable substrate is fatal, not a fault to inject).
  UdpTransport(const graph::Graph& g, IMpProtocol& protocol, UdpConfig cfg);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// The UDP port processor p actually bound (resolves ephemeral binds).
  [[nodiscard]] std::uint16_t port(ProcessorId p) const;

  // ITransport:
  void start() override;
  bool step() override;
  /// "The most recent step drained nothing and nothing is staged for the
  /// wire."  The kernel may still hold datagrams in flight — callers poll
  /// until idle holds across steps.
  [[nodiscard]] bool idle() const override {
    return last_step_empty_ && tx_dirty_.empty();
  }
  [[nodiscard]] const TransportStats& transport_stats() const override {
    return stats_;
  }

  // Mailer:
  void send(ProcessorId from, ProcessorId to, const Message& m) override;
  /// Packs the whole batch into one "SPIB" datagram per <= 64-frame chunk
  /// (one sendto per edge per link flush instead of one per frame).
  void send_batch(ProcessorId from, ProcessorId to, const Message* frames,
                  std::size_t count) override;

 private:
  /// Largest wire datagram: a full 64-frame "SPIB" batch.
  static constexpr std::size_t kMaxDatagramBytes = 16 + 64 * 24;
  /// Staged datagrams per sender socket before a forced sendmmsg flush.
  static constexpr std::size_t kTxStageDepth = 64;

  struct TxDatagram {
    ProcessorId to = 0;
    std::uint16_t len = 0;
    std::uint16_t frames = 0;  // dropped-accounting if the send fails
    unsigned char buf[kMaxDatagramBytes];
  };
  struct TxStage {
    std::vector<TxDatagram> slots;  // sized kTxStageDepth at construction
    std::size_t count = 0;
  };

  [[nodiscard]] bool neighbors(ProcessorId u, ProcessorId v) const;
  /// Reserves the next staged datagram for `from` -> `to` (flushing first
  /// if the stage is full) and returns its wire buffer.
  unsigned char* stage_datagram(ProcessorId from, ProcessorId to,
                                std::size_t len, std::uint16_t frames);
  void flush_tx(ProcessorId p);
  void flush_all_tx();
  /// Parses and dispatches one received datagram; false on wire garbage.
  bool dispatch_datagram(ProcessorId p, const unsigned char* buf,
                         std::size_t n);

  const graph::Graph* graph_;
  IMpProtocol* protocol_;
  UdpConfig cfg_;
  int epoll_fd_ = -1;
  std::vector<int> sockets_;            // [processor]
  std::vector<std::uint16_t> ports_;    // [processor], resolved
  std::vector<TxStage> tx_;             // [processor]
  std::vector<ProcessorId> tx_dirty_;   // senders with staged datagrams
  bool started_ = false;
  bool last_step_empty_ = true;
  TransportStats stats_;
};

}  // namespace snappif::mp
