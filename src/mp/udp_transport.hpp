// Real-datagram ITransport backend: non-blocking UDP sockets on localhost,
// one per processor, drained through an epoll event loop.
//
// This is the measurement backend — the point where the repository's link
// layer stops being simulated and faces an actual kernel: real socket
// buffers, real scheduling jitter, and (under load or an ImpairmentShim)
// real loss.  The 32-byte wire frame carries mp::Message verbatim — the
// link layer's incarnation+sequence headers travel inside Message.a exactly
// as they do over the loopback, so the ARQ/stop-and-wait machinery is
// byte-for-byte the code every deterministic suite already pins.
//
// Wire frame (little-endian, 32 bytes):
//   u32 magic      "SPIF" (0x46495053) — anything else is rx_errors
//   u32 from       sending processor id
//   u32 to         receiving processor id (must own the socket it lands on)
//   u8  kind, u8[3] zero padding
//   u64 a, u64 b   Message payload words
//
// Malformed datagrams (wrong size, bad magic, out-of-range ids, frames on
// the wrong socket, non-edges) are counted as rx_errors and dropped — wire
// garbage is the adversary's move, not a crash.  Failed sends (full socket
// buffer, EWOULDBLOCK) count as dropped; the link retransmits.
//
// NOT deterministic: the kernel schedules delivery.  Replayable suites run
// over mp::Network; this backend exists for snappif_serve, the E23 bench,
// and the UDP soak.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mp/transport.hpp"

namespace snappif::mp {

struct UdpConfig {
  /// 0 (default): bind each socket to an OS-assigned ephemeral port
  /// (collision-proof for tests); otherwise processor p binds base_port+p.
  std::uint16_t base_port = 0;
  /// Per-step drain bound across all sockets — keeps one chatty neighbor
  /// from starving the rest of the step loop.
  std::uint32_t max_datagrams_per_step = 1024;
  /// epoll_wait timeout per step.  0 = non-blocking poll; small positive
  /// values trade latency for idle CPU in soak loops.
  int poll_timeout_ms = 0;
};

class UdpTransport final : public ITransport {
 public:
  /// Binds one socket per processor eagerly; asserts on socket/bind/epoll
  /// failure (an unusable substrate is fatal, not a fault to inject).
  UdpTransport(const graph::Graph& g, IMpProtocol& protocol, UdpConfig cfg);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// The UDP port processor p actually bound (resolves ephemeral binds).
  [[nodiscard]] std::uint16_t port(ProcessorId p) const;

  // ITransport:
  void start() override;
  bool step() override;
  /// "The most recent step drained nothing."  The kernel may still hold
  /// datagrams in flight — callers poll until idle holds across steps.
  [[nodiscard]] bool idle() const override { return last_step_empty_; }
  [[nodiscard]] const TransportStats& transport_stats() const override {
    return stats_;
  }

  // Mailer:
  void send(ProcessorId from, ProcessorId to, const Message& m) override;

 private:
  [[nodiscard]] bool neighbors(ProcessorId u, ProcessorId v) const;

  const graph::Graph* graph_;
  IMpProtocol* protocol_;
  UdpConfig cfg_;
  int epoll_fd_ = -1;
  std::vector<int> sockets_;            // [processor]
  std::vector<std::uint16_t> ports_;    // [processor], resolved
  bool started_ = false;
  bool last_step_empty_ = true;
  TransportStats stats_;
};

}  // namespace snappif::mp
