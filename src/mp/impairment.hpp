// Socket-level fault injection as a transport decorator.
//
// ImpairmentShim sits *below* the link layer and *above* any ITransport
// backend, interposing on both planes:
//
//   upper protocol (LinkProtocol, ...)          IMpProtocol
//        |  sends via Mailer = shim                  ^ deliveries
//        v                                           |
//   ImpairmentShim  -- ITransport + IMpProtocol -- shim
//        |  sends via inner                          ^ deliveries
//        v                                           |
//   inner ITransport (Network loopback or UdpTransport)
//
// Wiring (the inner backend is constructed WITH the shim as its protocol,
// then bound):
//
//     LinkProtocol link(g, client, cfg, seed);
//     ImpairmentShim shim(link, g.n(), seed2);
//     Network net(g, shim, Delivery::kSynchronous, seed3);
//     shim.bind(net);
//     shim.start();  while (...) shim.step();
//
// Faults injected on the send plane: loss, duplication, reordering (the
// frame is held and released at the NEXT step, landing behind later
// traffic), fixed-delay windows, and bidirectional per-processor
// partitions.  On the deliver plane: partitions again (frames already in
// flight when the partition rose must also die) and bounded-mailbox
// overload shedding — at most `delivery_budget` frames reach each receiver
// per step; the excess is counted as shed and dropped, and the link
// layer's retransmission recovers (degraded, never deadlocked).
//
// Determinism contract: a DISARMED shim (all rates zero, no delay, no
// partition, no budget) is a pure pass-through that consumes ZERO RNG
// draws — stacking it under an existing suite is bit-invisible (pinned by
// tests/mp/test_transport.cpp).  While armed, one chance() draw per fault
// class per frame is consumed UNCONDITIONALLY, so toggling one rate never
// shifts another fault's draw stream.
#pragma once

#include <cstdint>
#include <vector>

#include "mp/transport.hpp"
#include "util/rng.hpp"

namespace snappif::mp {

class ImpairmentShim final : public ITransport, public IMpProtocol {
 public:
  /// `upper` is the protocol stack above the shim; `n` the processor count
  /// (sizes the partition set and per-receiver shedding counters).
  ImpairmentShim(IMpProtocol& upper, std::size_t n, std::uint64_t seed);

  /// Binds the inner backend.  Must be called exactly once, before
  /// start()/step()/send().
  void bind(ITransport& inner);

  // --- impairment knobs (all default off) -------------------------------
  /// All rate setters clamp to [0,1]; NaN is a programming error (assert).
  void set_loss_rate(double rate) noexcept;
  void set_duplication_rate(double rate) noexcept;
  void set_reorder_rate(double rate) noexcept;
  /// Affected frames are held for `steps` shim steps before entering the
  /// inner transport.  steps == 0 disables regardless of rate.
  void set_delay(double rate, std::uint32_t steps) noexcept;
  /// Isolates `p` bidirectionally: every frame to or from it is eaten.
  void partition(ProcessorId p);
  void heal(ProcessorId p);
  [[nodiscard]] bool partitioned(ProcessorId p) const {
    return partitioned_.at(p);
  }
  /// Bounded mailbox: at most `budget` deliveries per receiver per step
  /// (0 = unlimited).  The overflow is shed, not queued — backpressure is
  /// the link layer's retransmission, not unbounded buffering.
  void set_delivery_budget(std::uint32_t budget) noexcept;

  /// True iff any impairment is active (the pass-through fast path is off).
  [[nodiscard]] bool armed() const noexcept { return armed_; }

  // ITransport:
  void start() override;
  bool step() override;
  [[nodiscard]] bool idle() const override;
  [[nodiscard]] const TransportStats& transport_stats() const override {
    return stats_;
  }

  // Mailer (send plane, called by the upper protocol):
  void send(ProcessorId from, ProcessorId to, const Message& m) override;
  /// Disarmed: the batch is forwarded wholesale (zero RNG draws — still
  /// bit-invisible).  Armed: every frame gets its one-draw-per-fault-class
  /// treatment in batch order — coalescing cannot hide frames from the
  /// adversary — but copies that survive untouched are re-coalesced and
  /// forwarded as one inner batch.  Dropped/held frames never reach the
  /// wire this step, so the surviving batch preserves wire order and the
  /// draw stream is identical to dissolving frame by frame.
  void send_batch(ProcessorId from, ProcessorId to, const Message* frames,
                  std::size_t count) override;

  // IMpProtocol (deliver plane, called by the inner backend):
  void on_start(ProcessorId p, Mailer& mailer) override;
  void on_message(ProcessorId p, ProcessorId from, const Message& m,
                  Mailer& mailer) override;

 private:
  struct Held {
    std::uint64_t due_step;
    ProcessorId from;
    ProcessorId to;
    Message message;
  };

  void rearm() noexcept;
  void release_due();

  IMpProtocol* upper_;
  ITransport* inner_ = nullptr;
  util::Rng rng_;
  double loss_rate_ = 0.0;
  double duplication_rate_ = 0.0;
  double reorder_rate_ = 0.0;
  double delay_rate_ = 0.0;
  std::uint32_t delay_steps_ = 0;
  std::uint32_t delivery_budget_ = 0;  // 0 = unlimited
  bool armed_ = false;
  bool any_partition_ = false;

  std::uint64_t step_ = 0;
  std::vector<Message> survivors_;          // armed send_batch staging
  std::vector<Held> held_;                  // released in insertion order
  std::vector<bool> partitioned_;           // [processor]
  std::vector<std::uint32_t> inbound_used_; // [receiver], reset per step
  TransportStats stats_;
};

}  // namespace snappif::mp
