// Message types and the pluggable transport abstraction under the
// message-passing stack.
//
// Everything above this interface — LinkProtocol's ARQ, GuardedEmulation's
// cached views, RepeatedPifProtocol, WaveService — speaks IMpProtocol and
// Mailer only.  ITransport is the seam that decides what actually carries
// the frames:
//
//   * mp::Network (network.hpp)       — the deterministic in-process
//     loopback: per-directed-edge FIFO channels with seeded fault
//     injection.  Every differential, chaos, and fuzz suite runs over this
//     backend, so its semantics are the repository's reference semantics.
//   * mp::UdpTransport (udp_transport.hpp) — real non-blocking UDP
//     datagrams on localhost, one socket per processor, drained through an
//     epoll event loop.  The frames on the wire carry the link layer's
//     incarnation+sequence headers verbatim; the OS scheduler, socket
//     buffers, and genuine datagram loss replace the simulator's adversary.
//   * mp::ImpairmentShim (impairment.hpp) — a decorator over either
//     backend that injects loss/duplication/reordering/delay/partition
//     *below* the link layer and enforces bounded-mailbox overload
//     shedding.
//
// The contract mirrors the simulated network so the same drive loop works
// everywhere: construct the backend with the protocol stack, start() it
// (which invokes IMpProtocol::on_start on every processor), then step()
// until done.  A transport is a Mailer, so protocol callbacks can send
// through the transport handed to them — which for a decorated stack is the
// decorator, keeping impairment in the path of every frame.
//
// Determinism: Network and ImpairmentShim-over-Network are bit-exact
// functions of their seeds.  UdpTransport is not (the kernel schedules
// delivery); it is the measurement backend, not the replay backend.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "sim/types.hpp"

namespace snappif::mp {

using sim::ProcessorId;

/// A small fixed-shape message (kind + two payload words) — enough for the
/// wave algorithms here without type erasure.
struct Message {
  std::uint8_t kind = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Send-side API handed to protocol callbacks.
class Mailer {
 public:
  virtual ~Mailer() = default;
  virtual void send(ProcessorId from, ProcessorId to, const Message& m) = 0;
  /// Batched send of `count` frames on ONE directed edge, in order.  The
  /// default is the per-frame loop, so semantics never change by default;
  /// backends may override to put the whole batch in one wire datagram
  /// (UdpTransport) or to forward it wholesale when pass-through
  /// (a disarmed ImpairmentShim).  An override must preserve the loop's
  /// observable contract: frames delivered to `to` in batch order.
  virtual void send_batch(ProcessorId from, ProcessorId to,
                          const Message* frames, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      send(from, to, frames[i]);
    }
  }
};

/// A message-passing protocol: event handlers, no direct state access by the
/// network (protocols own their per-processor state).
class IMpProtocol {
 public:
  virtual ~IMpProtocol() = default;
  /// Called once per processor before any delivery.
  virtual void on_start(ProcessorId p, Mailer& mailer) = 0;
  virtual void on_message(ProcessorId p, ProcessorId from, const Message& m,
                          Mailer& mailer) = 0;
};

/// Frame accounting every transport keeps, mirrored into obs as
/// "mp.transport.*" by record_telemetry.  Backends leave fields that cannot
/// happen to them at zero (the loopback never sees rx_errors; a clean UDP
/// run never sheds).
struct TransportStats {
  std::uint64_t sent = 0;         // frames accepted from the layer above
  std::uint64_t delivered = 0;    // frames dispatched into the protocol
  std::uint64_t dropped = 0;      // injected loss + failed socket sends
  std::uint64_t duplicated = 0;   // extra copies injected
  std::uint64_t reordered = 0;    // frames deferred behind later traffic
  std::uint64_t delayed = 0;      // frames held back by a delay window
  std::uint64_t partitioned = 0;  // frames eaten by an active partition
  std::uint64_t shed = 0;         // inbound frames dropped by the bounded
                                  // mailbox (overload shedding)
  std::uint64_t rx_errors = 0;    // malformed/undersized datagrams off the
                                  // wire (UDP), counted and dropped
  std::uint64_t batches = 0;      // multi-frame wire datagrams sent (UDP
                                  // send_batch coalescing)
};

/// A transport: owns delivery of Message frames between processors and
/// drives the bound IMpProtocol.  See the backend matrix above.
class ITransport : public Mailer {
 public:
  /// Invokes IMpProtocol::on_start on every processor, exactly once.
  virtual void start() = 0;

  /// Advances the transport by one quantum: the loopback delivers one
  /// message (async) or one synchronous round; the UDP backend polls and
  /// drains readable sockets; the shim additionally releases due delayed
  /// frames first.  Returns true if any frame was delivered.
  virtual bool step() = 0;

  /// Nothing buffered in THIS layer.  For the loopback that is "no message
  /// in flight"; for the shim, "no delayed frame held AND the inner
  /// transport is idle"; for UDP, "the most recent step drained nothing"
  /// (the kernel may still hold datagrams — callers poll until idle holds
  /// across consecutive steps).
  [[nodiscard]] virtual bool idle() const = 0;

  /// Frame accounting; see TransportStats.
  [[nodiscard]] virtual const TransportStats& transport_stats() const = 0;

  /// Adds the stats to `registry` as "mp.transport.*" counters.
  void record_telemetry(obs::Registry& registry) const {
    const TransportStats& s = transport_stats();
    registry.counter("mp.transport.sent").inc(s.sent);
    registry.counter("mp.transport.delivered").inc(s.delivered);
    registry.counter("mp.transport.dropped").inc(s.dropped);
    registry.counter("mp.transport.duplicated").inc(s.duplicated);
    registry.counter("mp.transport.reordered").inc(s.reordered);
    registry.counter("mp.transport.delayed").inc(s.delayed);
    registry.counter("mp.transport.partitioned").inc(s.partitioned);
    registry.counter("mp.transport.shed").inc(s.shed);
    registry.counter("mp.transport.rx_errors").inc(s.rx_errors);
    registry.counter("mp.transport.batches").inc(s.batches);
  }
};

}  // namespace snappif::mp
