// Snap-stabilizing data-link layer: per-directed-edge stop-and-wait ARQ.
//
// The gap this closes: Chang's echo (mp/echo.hpp) deadlocks forever after
// one lost message, and Segall's repeated PIF (mp/repeated_pif.hpp) can be
// poisoned by one phantom frame.  Delaët–Devismes–Nesterenko–Tixeuil
// ("Snap-Stabilization in Message-Passing Systems") show that stabilizing
// anything over unreliable channels needs a link layer that keeps
// retransmitting, and Cournier–Dubois–Villain ("Two snap-stabilizing
// point-to-point communication protocols") give the alternating-bit shape.
// LinkProtocol is that shape, hardened for this substrate's fault menu:
//
//   * loss         — retransmission timers with capped exponential backoff;
//   * duplication  — receivers discard repeats of the last accepted frame
//                    (and re-ack them, in case the original ack was lost);
//   * reordering   — sequence numbers compared with serial-number arithmetic,
//                    so a stale copy overtaking a newer frame is discarded
//                    instead of re-delivered;
//   * crash-recover— 16-bit incarnation numbers, re-randomized by
//                    reset_endpoint(): frames and acks from before a crash
//                    mismatch the new incarnation and die as spurious, and a
//                    receiver that accepts an incarnation it cannot prove
//                    continuity with (a new one, OR first contact after its
//                    own reset wiped the history) surfaces it as
//                    on_peer_reset so the layer above can re-synchronize;
//   * arbitrary initial channel content — a phantom ack never matches the
//                    (incarnation, seq) actually in flight and is counted and
//                    dropped; a phantom data frame is delivered at most once
//                    and then superseded by real traffic (the emulation layer
//                    above is stabilizing, so one junk snapshot is exactly
//                    the kind of transient the paper's algorithm absorbs).
//
// Delivery guarantee on each directed edge: every payload accepted by the
// link (and not superseded by send_latest) is handed to the client exactly
// once, in send order, provided the channel delivers infinitely often.
//
// Zero steady-state allocation: all per-edge state — sender, receiver, and
// the bounded pending rings — is sized at construction; send/on_message/tick
// never touch the heap (verified by tests/mp/test_link_alloc.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "mp/network.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace snappif::mp {

class LinkProtocol;

/// Passive frame-lifecycle observer (wave tracing, flight recorders).
/// Unlike LinkClient this is pure telemetry: observers must not call back
/// into the link.  Every notification site is one `!= nullptr` branch, so
/// an unobserved link pays a single predictable-not-taken compare per event.
class ILinkObserver {
 public:
  virtual ~ILinkObserver() = default;
  /// A data frame hit the mailer on edge (from -> to); `retransmit`
  /// distinguishes ARQ timer re-sends from first transmissions.
  virtual void on_link_transmit(ProcessorId /*from*/, ProcessorId /*to*/,
                                bool /*retransmit*/) {}
  /// Exactly-once delivery upcall on edge (from -> to) is about to happen.
  virtual void on_link_delivered(ProcessorId /*to*/, ProcessorId /*from*/) {}
  /// Receiver `to` accepted an unproven incarnation from `from`.
  virtual void on_link_peer_reset(ProcessorId /*to*/, ProcessorId /*from*/) {}
};

/// Upper layer of the link: receives exactly-once datagrams.
class LinkClient {
 public:
  virtual ~LinkClient() = default;
  /// Called once per processor when the network starts; kick off traffic here.
  virtual void on_link_start(ProcessorId p, LinkProtocol& link) = 0;
  /// Exactly-once, in-order delivery of one datagram on edge (from -> p).
  virtual void on_link_deliver(ProcessorId p, ProcessorId from,
                               std::uint8_t kind, std::uint64_t payload,
                               LinkProtocol& link) = 0;
  /// The sender behind edge (from -> p) used an incarnation this receiver
  /// cannot prove continuity with: a fresh one after crash-recovery, a
  /// phantom from arbitrary initial channel state, or first contact (which
  /// includes "first frame after OUR OWN reset wiped the receiver history" —
  /// the peer may have rebooted unnoticed in between, so the conservative
  /// answer is the only safe one).  Re-push any state `from` needs — its
  /// cached view of p may be gone or garbage.
  virtual void on_link_peer_reset(ProcessorId /*p*/, ProcessorId /*from*/,
                                  LinkProtocol& /*link*/) {}
};

/// How the per-edge retransmission timeout is managed.
enum class RtoMode : std::uint8_t {
  /// Every fresh frame starts at rto_initial; each timer fire doubles the
  /// timeout up to rto_cap.  The historical policy — bit-exact replay of
  /// every recorded chaos/fuzz corpus depends on it, so it stays the
  /// default for the simulated substrate.
  kFixedBackoff,
  /// Jacobson/Karn estimation (RFC 6298 integer arithmetic): SRTT and
  /// RTTVAR are learned per directed edge from acks of frames that were
  /// never retransmitted (Karn's ambiguity rule), RTO = SRTT + 4*RTTVAR
  /// clamped to [rto_min, rto_cap].  Timer fires still back off
  /// exponentially (Karn's other half).  Deterministic under the loopback
  /// clock; the right mode for real transports whose RTT the config author
  /// cannot know.
  kAdaptive,
};

struct LinkConfig {
  /// Wire kinds used by the link's own frames.  User kinds travel inside the
  /// data header and are unconstrained (any uint8_t).
  std::uint8_t data_kind = 48;
  std::uint8_t ack_kind = 49;
  /// First retransmission after this many ticks; doubles per fire up to cap.
  /// Under kAdaptive this is also the RTO used before the first RTT sample.
  std::uint32_t rto_initial = 2;
  std::uint32_t rto_cap = 16;
  /// Lower clamp for the adaptive RTO (ignored under kFixedBackoff).
  std::uint32_t rto_min = 1;
  /// Pending datagrams buffered per directed edge while one is in flight.
  std::size_t queue_capacity = 8;
  RtoMode rto_mode = RtoMode::kFixedBackoff;
};

/// Human-readable objection to a malformed config (zero or inverted RTO
/// bounds, zero pending ring, colliding wire kinds); nullopt when usable.
/// LinkProtocol's constructor asserts this, so a bad config dies loudly at
/// construction instead of silently misbehaving (a zero rto_initial would
/// underflow the timer; an inverted cap would clamp backoff upward).
[[nodiscard]] std::optional<std::string> validate(const LinkConfig& cfg);

/// Everything observable about the link, mirrored into obs via
/// record_telemetry ("mp.link.*").
struct LinkStats {
  std::uint64_t data_sent = 0;             // first transmissions
  std::uint64_t retransmits = 0;           // frames re-handed to the mailer
  std::uint64_t timer_fires = 0;           // retransmission timer expirations
  std::uint64_t acks_sent = 0;
  std::uint64_t spurious_acks = 0;         // acks matching nothing in flight
  std::uint64_t delivered = 0;             // exactly-once upcalls
  std::uint64_t duplicates_discarded = 0;  // repeats of the last accepted seq
  std::uint64_t stale_discarded = 0;       // reordered older frames
  std::uint64_t junk_discarded = 0;        // unknown kinds / malformed headers
  std::uint64_t superseded = 0;            // send_latest overwrote a pending
  std::uint64_t peer_resets = 0;           // unproven incarnations accepted
                                           // (new inc OR first contact)
  std::uint64_t rtt_samples = 0;           // acks that updated SRTT/RTTVAR
  std::uint64_t karn_suppressed = 0;       // acks of retransmitted frames,
                                           // excluded by Karn's rule
};

class LinkProtocol final : public IMpProtocol {
 public:
  LinkProtocol(const graph::Graph& g, LinkClient& client, LinkConfig cfg,
               std::uint64_t seed);

  /// Reliable in-order send of (kind, payload) on edge (from -> to).
  /// Bounded buffering: asserts if the edge's pending ring is full.
  void send(ProcessorId from, ProcessorId to, std::uint8_t kind,
            std::uint64_t payload);

  /// Reliable send where only the *latest* value matters (state snapshots):
  /// if a datagram is already pending behind the in-flight frame it is
  /// overwritten instead of queued, so per-edge memory stays O(1) no matter
  /// how fast the upper layer publishes.
  void send_latest(ProcessorId from, ProcessorId to, std::uint8_t kind,
                   std::uint64_t payload);

  /// One timer tick: fires due retransmissions.  Call once per delivery
  /// round (synchronous mode) or per scheduler quantum (async mode).
  void tick();

  /// Crash-recovery hook: drops p's in-flight and pending frames, draws new
  /// incarnations for every out-edge, and forgets every in-edge history (so
  /// the first frame from each neighbor is accepted afresh).
  void reset_endpoint(ProcessorId p);

  /// No frame in flight and nothing pending anywhere.
  [[nodiscard]] bool idle() const noexcept;

  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  /// Adds the stats to `registry` as "mp.link.*" counters.
  void record_telemetry(obs::Registry& registry) const;

  /// Installs (or clears, with nullptr) the frame-lifecycle observer.  The
  /// observer must outlive the link or be cleared first.
  void set_observer(ILinkObserver* observer) noexcept { observer_ = observer; }

  // IMpProtocol:
  void on_start(ProcessorId p, Mailer& mailer) override;
  void on_message(ProcessorId p, ProcessorId from, const Message& m,
                  Mailer& mailer) override;

 private:
  struct SenderState {
    std::uint16_t inc = 0;
    std::uint16_t seq = 0;
    bool in_flight = false;
    std::uint8_t kind = 0;        // in-flight frame
    std::uint64_t payload = 0;
    std::uint32_t timer = 0;      // ticks until retransmit
    std::uint32_t backoff = 0;    // current rto (doubles per fire, capped)
    std::size_t head = 0;         // pending ring
    std::size_t count = 0;
    // Adaptive RTO (RtoMode::kAdaptive only; dormant otherwise).
    // RFC 6298 scaled-integer estimators: srtt8 = SRTT<<3, rttvar4 =
    // RTTVAR<<2; zero srtt8 means "no sample yet".
    std::uint32_t srtt8 = 0;
    std::uint32_t rttvar4 = 0;
    std::uint64_t sent_tick = 0;  // tick count when the in-flight frame left
    bool retransmitted = false;   // Karn: the in-flight frame was re-sent
  };
  struct ReceiverState {
    bool known = false;           // accepted at least one frame
    std::uint16_t inc = 0;
    std::uint16_t seq = 0;
  };
  struct Pending {
    std::uint8_t kind = 0;
    std::uint64_t payload = 0;
  };

  /// Directed-edge id of (u -> v): CSR offset of v in u's neighbor row.
  [[nodiscard]] std::size_t did(ProcessorId u, ProcessorId v) const;
  void transmit(std::size_t e, SenderState& s, std::uint8_t kind,
                std::uint64_t payload);
  void pop_and_transmit(std::size_t e, SenderState& s);
  void handle_data(ProcessorId p, ProcessorId from, const Message& m);
  void handle_ack(ProcessorId p, ProcessorId from, const Message& m);

  const graph::Graph* graph_;
  LinkClient* client_;
  ILinkObserver* observer_ = nullptr;
  LinkConfig cfg_;
  util::Rng rng_;
  Mailer* mailer_ = nullptr;

  std::vector<std::size_t> base_;   // per-processor directed-edge row start
  std::vector<ProcessorId> src_;    // directed-edge id -> endpoints
  std::vector<ProcessorId> dst_;
  std::vector<SenderState> out_;    // out_[did(u,v)]: u's sender for u->v
  std::vector<ReceiverState> in_;   // in_[did(v,u)]: v's receiver for u->v
  std::vector<Pending> ring_;       // out_[e]'s ring at ring_[e*capacity ..]
  std::uint64_t ticks_ = 0;         // tick() count — the adaptive RTO clock
  LinkStats stats_;
};

}  // namespace snappif::mp
