// Snap-stabilizing data-link layer: per-directed-edge sliding-window ARQ.
//
// The gap this closes: Chang's echo (mp/echo.hpp) deadlocks forever after
// one lost message, and Segall's repeated PIF (mp/repeated_pif.hpp) can be
// poisoned by one phantom frame.  Delaët–Devismes–Nesterenko–Tixeuil
// ("Snap-Stabilization in Message-Passing Systems") show that stabilizing
// anything over unreliable channels needs a link layer that keeps
// retransmitting, and Cournier–Dubois–Villain ("Two snap-stabilizing
// point-to-point communication protocols") give the alternating-bit shape.
// LinkProtocol generalizes that shape to a pipelined window — the 16-bit
// incarnation + 16-bit sequence headers were designed for it — hardened for
// this substrate's fault menu:
//
//   * loss         — per-frame retransmission timers with capped exponential
//                    backoff (selective retransmit: only the expired frame is
//                    re-sent, not the whole window);
//   * duplication  — receivers discard repeats of the cumulative in-order
//                    point (and re-ack them, in case the original ack was
//                    lost) and repeats of already-buffered gap frames;
//   * reordering   — sequence numbers compared with RFC-1982 serial-number
//                    arithmetic; with window > 1 a frame up to `window` ahead
//                    of the in-order point is buffered and delivered when the
//                    hole fills, so reordering costs no retransmission;
//   * crash-recover— 16-bit incarnation numbers, re-randomized by
//                    reset_endpoint(): frames and acks from before a crash
//                    mismatch the new incarnation and die as spurious, and a
//                    receiver that accepts an incarnation it cannot prove
//                    continuity with (a new one, OR first contact after its
//                    own reset wiped the history) surfaces it as
//                    on_peer_reset so the layer above can re-synchronize;
//   * arbitrary initial channel content — a phantom ack never matches the
//                    (incarnation, window) actually in flight and is counted
//                    and dropped; a phantom data frame is delivered at most
//                    once and then superseded by real traffic; a phantom
//                    farther than `window` ahead of the in-order point is
//                    dropped outright (a legitimate sender can never be
//                    there, since its oldest unacked frame bounds it).
//
// Sliding window (LinkConfig::window):
//
//   * window = 1 is the historical stop-and-wait protocol, BIT-EXACT with
//     the pre-window implementation: same wire traffic, same RNG draws,
//     same stats.  Every recorded chaos/fuzz corpus replays identically, so
//     1 stays the default (pinned by tests/mp/test_link_window.cpp goldens).
//   * window > 1 keeps up to `window` frames in flight per directed edge.
//     Acks are CUMULATIVE: ack(seq) retires every in-flight frame up to and
//     including seq (so one surviving ack repairs a burst of lost acks),
//     and a receiver holding buffered gap frames acks the highest
//     contiguous point it will reach, not just the frame that arrived.
//     Stale frames are re-acked cumulatively (impossible at window = 1,
//     where acking a stale frame could never match anything in flight).
//
// Backpressure: try_send() reports a full pending ring as `false` and
// counts it (LinkStats.backpressured) instead of aborting; send() is the
// asserting wrapper for callers whose traffic is provably bounded, and
// send_latest() never blocks (the newest snapshot overwrites the pending
// tail).  can_send() lets a caller probe without side effects.
//
// Coalescing (LinkConfig::coalesce): when on, every frame an edge emits —
// first transmissions, retransmits, acks — is staged, and flush() hands
// each edge's frames to the mailer as ONE Mailer::send_batch call (one
// datagram on UDP).  Off by default: batching changes wire interleaving,
// which seeded corpora pin.
//
// Delivery guarantee on each directed edge: every payload accepted by the
// link (and not superseded by send_latest) is handed to the client exactly
// once, in send order, provided the channel delivers infinitely often.
//
// Zero steady-state allocation: all per-edge state — sender, receiver,
// window slots, reorder buffer, pending rings, coalescing stages — is sized
// at construction; send/on_message/tick/flush never touch the heap
// (verified by tests/mp/test_link_alloc.cpp, windowed + coalesced paths
// included).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "mp/network.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace snappif::mp {

class LinkProtocol;

/// Passive frame-lifecycle observer (wave tracing, flight recorders).
/// Unlike LinkClient this is pure telemetry: observers must not call back
/// into the link.  Every notification site is one `!= nullptr` branch, so
/// an unobserved link pays a single predictable-not-taken compare per event.
class ILinkObserver {
 public:
  virtual ~ILinkObserver() = default;
  /// A data frame hit the mailer on edge (from -> to); `retransmit`
  /// distinguishes ARQ timer re-sends from first transmissions.
  virtual void on_link_transmit(ProcessorId /*from*/, ProcessorId /*to*/,
                                bool /*retransmit*/) {}
  /// Exactly-once delivery upcall on edge (from -> to) is about to happen.
  virtual void on_link_delivered(ProcessorId /*to*/, ProcessorId /*from*/) {}
  /// Receiver `to` accepted an unproven incarnation from `from`.
  virtual void on_link_peer_reset(ProcessorId /*to*/, ProcessorId /*from*/) {}
};

/// Upper layer of the link: receives exactly-once datagrams.
class LinkClient {
 public:
  virtual ~LinkClient() = default;
  /// Called once per processor when the network starts; kick off traffic here.
  virtual void on_link_start(ProcessorId p, LinkProtocol& link) = 0;
  /// Exactly-once, in-order delivery of one datagram on edge (from -> p).
  virtual void on_link_deliver(ProcessorId p, ProcessorId from,
                               std::uint8_t kind, std::uint64_t payload,
                               LinkProtocol& link) = 0;
  /// The sender behind edge (from -> p) used an incarnation this receiver
  /// cannot prove continuity with: a fresh one after crash-recovery, a
  /// phantom from arbitrary initial channel state, or first contact (which
  /// includes "first frame after OUR OWN reset wiped the receiver history" —
  /// the peer may have rebooted unnoticed in between, so the conservative
  /// answer is the only safe one).  Re-push any state `from` needs — its
  /// cached view of p may be gone or garbage.
  virtual void on_link_peer_reset(ProcessorId /*p*/, ProcessorId /*from*/,
                                  LinkProtocol& /*link*/) {}
};

/// How the per-edge retransmission timeout is managed.
enum class RtoMode : std::uint8_t {
  /// Every fresh frame starts at rto_initial; each timer fire doubles the
  /// timeout up to rto_cap.  The historical policy — bit-exact replay of
  /// every recorded chaos/fuzz corpus depends on it, so it stays the
  /// default for the simulated substrate.
  kFixedBackoff,
  /// Jacobson/Karn estimation (RFC 6298 integer arithmetic): SRTT and
  /// RTTVAR are learned per directed edge from acks of frames that were
  /// never retransmitted (Karn's ambiguity rule), RTO = SRTT + 4*RTTVAR
  /// clamped to [rto_min, rto_cap].  Timer fires still back off
  /// exponentially (Karn's other half).  Deterministic under the loopback
  /// clock; the right mode for real transports whose RTT the config author
  /// cannot know.
  kAdaptive,
};

struct LinkConfig {
  /// Wire kinds used by the link's own frames.  User kinds travel inside the
  /// data header and are unconstrained (any uint8_t).
  std::uint8_t data_kind = 48;
  std::uint8_t ack_kind = 49;
  /// First retransmission after this many ticks; doubles per fire up to cap.
  /// Under kAdaptive this is also the RTO used before the first RTT sample.
  std::uint32_t rto_initial = 2;
  std::uint32_t rto_cap = 16;
  /// Lower clamp for the adaptive RTO (ignored under kFixedBackoff).
  std::uint32_t rto_min = 1;
  /// Pending datagrams buffered per directed edge behind the send window.
  std::size_t queue_capacity = 8;
  /// Frames a sender may keep un-acked in flight per directed edge.  1 is
  /// the historical stop-and-wait protocol and replays every recorded
  /// corpus bit-exact, so it is the default; raise it (<= queue_capacity)
  /// to pipeline the edge.
  std::size_t window = 1;
  /// Stage every frame an edge emits and hand them to the mailer as one
  /// send_batch per edge per flush() (one datagram over UDP).  Off by
  /// default: batching changes wire-level interleaving, which seeded
  /// corpora pin.  The drive loop must call flush() each step when on.
  bool coalesce = false;
  RtoMode rto_mode = RtoMode::kFixedBackoff;
};

/// Human-readable objection to a malformed config (zero or inverted RTO
/// bounds, zero pending ring, colliding wire kinds, incoherent window/ring
/// sizing); nullopt when usable.  LinkProtocol's constructor asserts this,
/// so a bad config dies loudly at construction instead of silently
/// misbehaving (a zero rto_initial would underflow the timer; an inverted
/// cap would clamp backoff upward; a window wider than the pending ring
/// could never be refilled from a burst).
[[nodiscard]] std::optional<std::string> validate(const LinkConfig& cfg);

/// Everything observable about the link, mirrored into obs via
/// record_telemetry ("mp.link.*").
struct LinkStats {
  std::uint64_t data_sent = 0;             // first transmissions
  std::uint64_t retransmits = 0;           // frames re-handed to the mailer
  std::uint64_t timer_fires = 0;           // retransmission timer expirations
  std::uint64_t acks_sent = 0;
  std::uint64_t spurious_acks = 0;         // acks matching nothing in flight
  std::uint64_t delivered = 0;             // exactly-once upcalls
  std::uint64_t duplicates_discarded = 0;  // repeats of the in-order point or
                                           // of an already-buffered gap frame
  std::uint64_t stale_discarded = 0;       // reordered older frames
  std::uint64_t junk_discarded = 0;        // unknown kinds / malformed headers
  std::uint64_t superseded = 0;            // send_latest overwrote a pending
  std::uint64_t peer_resets = 0;           // unproven incarnations accepted
                                           // (new inc OR first contact)
  std::uint64_t rtt_samples = 0;           // acks that updated SRTT/RTTVAR
  std::uint64_t karn_suppressed = 0;       // acks of retransmitted frames,
                                           // excluded by Karn's rule
  std::uint64_t backpressured = 0;         // try_send refusals (ring full)
  std::uint64_t ooo_buffered = 0;          // gap frames parked in the reorder
                                           // buffer (window > 1 only)
  std::uint64_t ooo_delivered = 0;         // buffered frames released by a
                                           // hole fill
  std::uint64_t ooo_dropped = 0;           // frames beyond the receive window
                                           // (wire garbage; a live sender
                                           // cannot be there)
  std::uint64_t coalesced_batches = 0;     // send_batch calls issued by flush
  std::uint64_t coalesced_frames = 0;      // frames carried by those batches
  std::uint64_t fast_retransmits = 0;      // holes re-driven by 3 duplicate
                                           // cumulative acks, ahead of the
                                           // RTO (window > 1 only)
};

class LinkProtocol final : public IMpProtocol {
 public:
  LinkProtocol(const graph::Graph& g, LinkClient& client, LinkConfig cfg,
               std::uint64_t seed);

  /// Reliable in-order send of (kind, payload) on edge (from -> to).
  /// Returns false — and counts LinkStats.backpressured — when the edge's
  /// window AND pending ring are both full; the caller retries after acks
  /// drain the edge (see WaveService::pump for the canonical shape).
  [[nodiscard]] bool try_send(ProcessorId from, ProcessorId to,
                              std::uint8_t kind, std::uint64_t payload);

  /// Asserting wrapper over try_send for callers whose traffic is provably
  /// bounded by the ring (aborts on overflow — a programming error there).
  void send(ProcessorId from, ProcessorId to, std::uint8_t kind,
            std::uint64_t payload);

  /// True iff try_send on edge (from -> to) would currently accept a frame.
  /// Pure probe: no side effects, no counters.
  [[nodiscard]] bool can_send(ProcessorId from, ProcessorId to) const;

  /// Reliable send where only the *latest* value matters (state snapshots):
  /// if a datagram is already pending behind the window it is overwritten
  /// instead of queued, so per-edge memory stays O(1) no matter how fast
  /// the upper layer publishes.  Never backpressures.
  void send_latest(ProcessorId from, ProcessorId to, std::uint8_t kind,
                   std::uint64_t payload);

  /// One timer tick: fires due retransmissions (selective: only expired
  /// frames).  Call once per delivery round (synchronous mode) or per
  /// scheduler quantum (async mode).
  void tick();

  /// Hands every staged frame to the mailer, one send_batch per dirty edge.
  /// No-op unless LinkConfig::coalesce is on; drive loops call it
  /// unconditionally after tick().
  void flush();

  /// Crash-recovery hook: drops p's in-flight and pending frames (staged
  /// ones included), draws new incarnations for every out-edge, and forgets
  /// every in-edge history and reorder buffer (so the first frame from each
  /// neighbor is accepted afresh).
  void reset_endpoint(ProcessorId p);

  /// No frame in flight, nothing pending, nothing staged anywhere.
  [[nodiscard]] bool idle() const noexcept;

  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  /// Adds the stats to `registry` as "mp.link.*" counters.
  void record_telemetry(obs::Registry& registry) const;

  /// Installs (or clears, with nullptr) the frame-lifecycle observer.  The
  /// observer must outlive the link or be cleared first.
  void set_observer(ILinkObserver* observer) noexcept { observer_ = observer; }

  // IMpProtocol:
  void on_start(ProcessorId p, Mailer& mailer) override;
  void on_message(ProcessorId p, ProcessorId from, const Message& m,
                  Mailer& mailer) override;

 private:
  struct SenderState {
    std::uint16_t inc = 0;
    std::uint16_t una = 0;        // oldest un-acked sequence
    std::uint16_t next = 0;       // next sequence to assign
    std::uint16_t inflight = 0;   // == serial_distance(next, una) <= window
    /// The effective window stays 1 until this incarnation's first valid
    /// ack.  The receiver pins its resync baseline to whichever frame of a
    /// new incarnation arrives first; if a reordered startup burst let that
    /// be seq 3, the cumulative resync ack would retire seqs 0..2 acked-but
    /// -never-delivered.  Flying the first frame solo makes the baseline
    /// exact; the window opens one RTT later.
    bool opened = false;
    /// Consecutive duplicate cumulative acks of una-1; 3 triggers a fast
    /// retransmit of the base frame (window > 1 only).
    std::uint8_t dupacks = 0;
    std::size_t head = 0;         // pending ring
    std::size_t count = 0;
    /// RTO assigned to fresh transmissions: rto_initial under kFixedBackoff,
    /// the clamped estimator value under kAdaptive (updated per ack).
    std::uint32_t base_rto = 0;
    // Adaptive RTO (RtoMode::kAdaptive only; dormant otherwise).
    // RFC 6298 scaled-integer estimators: srtt8 = SRTT<<3, rttvar4 =
    // RTTVAR<<2; zero srtt8 means "no sample yet".
    std::uint32_t srtt8 = 0;
    std::uint32_t rttvar4 = 0;
  };
  /// Per-in-flight-frame state, at wslot(e, seq): each frame owns its
  /// retransmission timer and backoff (selective retransmit) plus the Karn
  /// bookkeeping the adaptive estimator needs.
  struct WindowSlot {
    std::uint8_t kind = 0;
    std::uint64_t payload = 0;
    std::uint32_t timer = 0;      // ticks until retransmit
    std::uint32_t backoff = 0;    // current rto (doubles per fire, capped)
    std::uint64_t sent_tick = 0;  // tick count at first transmission
    bool retransmitted = false;   // Karn: an ack for this frame is ambiguous
  };
  struct ReceiverState {
    bool known = false;           // accepted at least one frame
    std::uint16_t inc = 0;
    std::uint16_t seq = 0;        // cumulative in-order point
  };
  /// Reorder buffer entry at rslot(e, seq) (window > 1 only): a frame ahead
  /// of the in-order point, held until the hole fills.  `seq` disambiguates
  /// slot reuse across sequence-space wraps.
  struct RecvSlot {
    bool valid = false;
    std::uint16_t seq = 0;
    std::uint8_t kind = 0;
    std::uint64_t payload = 0;
  };
  struct Pending {
    std::uint8_t kind = 0;
    std::uint64_t payload = 0;
  };

  /// Directed-edge id of (u -> v): CSR offset of v in u's neighbor row.
  [[nodiscard]] std::size_t did(ProcessorId u, ProcessorId v) const;
  [[nodiscard]] WindowSlot& wslot(std::size_t e, std::uint16_t seq) {
    return wslot_[e * cfg_.window + seq % cfg_.window];
  }
  /// 1 until the incarnation's first valid ack (see SenderState::opened).
  [[nodiscard]] std::size_t effective_window(const SenderState& s) const {
    return s.opened ? cfg_.window : 1;
  }
  [[nodiscard]] RecvSlot& rslot(std::size_t e, std::uint16_t seq) {
    return rslot_[e * cfg_.window + seq % cfg_.window];
  }
  void transmit(std::size_t e, SenderState& s, std::uint8_t kind,
                std::uint64_t payload);
  void pop_and_transmit(std::size_t e, SenderState& s);
  void emit(std::size_t e, const Message& m);
  void send_ack(std::size_t e, std::uint16_t inc, std::uint16_t seq);
  void deliver_frame(ProcessorId p, ProcessorId from, std::uint8_t kind,
                     std::uint64_t payload);
  void clear_recv_window(std::size_t e);
  void handle_data(ProcessorId p, ProcessorId from, const Message& m);
  void handle_ack(ProcessorId p, ProcessorId from, const Message& m);

  const graph::Graph* graph_;
  LinkClient* client_;
  ILinkObserver* observer_ = nullptr;
  LinkConfig cfg_;
  util::Rng rng_;
  Mailer* mailer_ = nullptr;

  std::vector<std::size_t> base_;   // per-processor directed-edge row start
  std::vector<ProcessorId> src_;    // directed-edge id -> endpoints
  std::vector<ProcessorId> dst_;
  std::vector<SenderState> out_;    // out_[did(u,v)]: u's sender for u->v
  std::vector<ReceiverState> in_;   // in_[did(v,u)]: v's receiver for u->v
  std::vector<WindowSlot> wslot_;   // [e*window + seq%window] in-flight state
  std::vector<RecvSlot> rslot_;     // [e*window + seq%window] reorder buffer
  std::vector<Pending> ring_;       // out_[e]'s ring at ring_[e*capacity ..]
  // Coalescing stage (cfg_.coalesce only): per-edge frame buffers flushed as
  // one send_batch per edge, plus the dirty-edge worklist.
  std::vector<Message> stage_;          // [e*stage_cap_ ..]
  std::vector<std::size_t> stage_count_;
  std::vector<std::uint8_t> stage_flag_;
  std::vector<std::size_t> staged_edges_;
  std::size_t stage_cap_ = 0;
  std::uint64_t ticks_ = 0;         // tick() count — the adaptive RTO clock
  LinkStats stats_;
};

}  // namespace snappif::mp
