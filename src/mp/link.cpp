#include "mp/link.hpp"

#include <algorithm>

#include "mp/serial.hpp"
#include "util/assert.hpp"

namespace snappif::mp {

namespace {

// Data header (Message.a): bits [0,16) incarnation, [16,32) sequence,
// [32,40) user kind, [40,64) must be zero.  Ack header: same minus the user
// kind; with window > 1 the ack sequence is CUMULATIVE (everything up to and
// including it is acknowledged).  Anything violating the zero bits is junk
// (arbitrary initial channel content), counted and dropped rather than
// asserted — garbage on the wire is the adversary's move, not a programming
// error.
constexpr std::uint64_t pack_data(std::uint16_t inc, std::uint16_t seq,
                                  std::uint8_t kind) {
  return static_cast<std::uint64_t>(inc) |
         (static_cast<std::uint64_t>(seq) << 16) |
         (static_cast<std::uint64_t>(kind) << 32);
}

constexpr std::uint64_t pack_ack(std::uint16_t inc, std::uint16_t seq) {
  return static_cast<std::uint64_t>(inc) |
         (static_cast<std::uint64_t>(seq) << 16);
}

constexpr std::uint16_t header_inc(std::uint64_t a) {
  return static_cast<std::uint16_t>(a);
}
constexpr std::uint16_t header_seq(std::uint64_t a) {
  return static_cast<std::uint16_t>(a >> 16);
}
constexpr std::uint8_t header_kind(std::uint64_t a) {
  return static_cast<std::uint8_t>(a >> 32);
}

}  // namespace

std::optional<std::string> validate(const LinkConfig& cfg) {
  if (cfg.data_kind == cfg.ack_kind) {
    return "link data and ack kinds must differ";
  }
  if (cfg.rto_initial < 1) {
    return "rto_initial must be >= 1";
  }
  if (cfg.rto_cap < cfg.rto_initial) {
    return "rto_cap must be >= rto_initial";
  }
  if (cfg.rto_min < 1) {
    return "rto_min must be >= 1";
  }
  if (cfg.rto_mode == RtoMode::kAdaptive) {
    // The adaptive clamp is [rto_min, rto_cap]; an inverted pair would make
    // std::clamp's behavior undefined and the intent meaningless.
    if (cfg.rto_min > cfg.rto_cap) {
      return "rto_min must be <= rto_cap under kAdaptive";
    }
  } else if (cfg.rto_min > cfg.rto_initial) {
    return "rto_min must be in [1, rto_initial]";
  }
  if (cfg.queue_capacity < 1) {
    return "queue_capacity must be >= 1";
  }
  if (cfg.window < 1) {
    return "window must be >= 1";
  }
  if (cfg.window > cfg.queue_capacity) {
    return "window must be <= queue_capacity (the pending ring refills the "
           "window)";
  }
  if (cfg.window > 16384) {
    // Sender window + receiver reorder buffer must fit well inside half the
    // 16-bit sequence space or serial_newer comparisons become ambiguous.
    return "window must be <= 16384 (serial-number arithmetic headroom)";
  }
  return std::nullopt;
}

LinkProtocol::LinkProtocol(const graph::Graph& g, LinkClient& client,
                           LinkConfig cfg, std::uint64_t seed)
    : graph_(&g), client_(&client), cfg_(cfg), rng_(seed) {
  const std::optional<std::string> objection = validate(cfg_);
  SNAPPIF_ASSERT_MSG(!objection.has_value(),
                     objection.has_value() ? objection->c_str()
                                           : "link config valid");
  base_.resize(g.n() + 1, 0);
  for (ProcessorId p = 0; p < g.n(); ++p) {
    base_[p + 1] = base_[p] + g.degree(p);
  }
  const std::size_t edges = base_[g.n()];
  src_.resize(edges);
  dst_.resize(edges);
  for (ProcessorId p = 0; p < g.n(); ++p) {
    const auto nbrs = g.neighbors(p);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      src_[base_[p] + i] = p;
      dst_[base_[p] + i] = nbrs[i];
    }
  }
  out_.resize(edges);
  in_.resize(edges);
  wslot_.resize(edges * cfg_.window);
  rslot_.resize(edges * cfg_.window);
  ring_.resize(edges * cfg_.queue_capacity);
  if (cfg_.coalesce) {
    // Worst case an edge emits in one step: a full window refill plus an ack
    // per delivered frame; anything beyond the stage triggers an early
    // batch, never an allocation.
    stage_cap_ = 2 * cfg_.window + 4;
    stage_.resize(edges * stage_cap_);
    stage_count_.resize(edges, 0);
    stage_flag_.resize(edges, 0);
    staged_edges_.reserve(edges);
  }
  for (SenderState& s : out_) {
    s.inc = static_cast<std::uint16_t>(rng_());
    s.base_rto = cfg_.rto_initial;
  }
}

std::size_t LinkProtocol::did(ProcessorId u, ProcessorId v) const {
  const auto nbrs = graph_->neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  SNAPPIF_ASSERT_MSG(it != nbrs.end() && *it == v, "link use of a non-edge");
  return base_[u] + static_cast<std::size_t>(it - nbrs.begin());
}

void LinkProtocol::emit(std::size_t e, const Message& m) {
  if (!cfg_.coalesce) {
    mailer_->send(src_[e], dst_[e], m);
    return;
  }
  std::size_t& n = stage_count_[e];
  if (n == stage_cap_) {
    // Stage overflow: ship this edge's batch early rather than grow.
    ++stats_.coalesced_batches;
    stats_.coalesced_frames += n;
    mailer_->send_batch(src_[e], dst_[e], &stage_[e * stage_cap_], n);
    n = 0;
  }
  if (stage_flag_[e] == 0) {
    stage_flag_[e] = 1;
    staged_edges_.push_back(e);
  }
  stage_[e * stage_cap_ + n] = m;
  ++n;
}

void LinkProtocol::flush() {
  if (!cfg_.coalesce || mailer_ == nullptr) {
    return;
  }
  for (const std::size_t e : staged_edges_) {
    stage_flag_[e] = 0;
    std::size_t& n = stage_count_[e];
    if (n == 0) {
      continue;  // reset_endpoint dropped this edge's staged frames
    }
    ++stats_.coalesced_batches;
    stats_.coalesced_frames += n;
    mailer_->send_batch(src_[e], dst_[e], &stage_[e * stage_cap_], n);
    n = 0;
  }
  staged_edges_.clear();
}

void LinkProtocol::transmit(std::size_t e, SenderState& s, std::uint8_t kind,
                            std::uint64_t payload) {
  const std::uint16_t seq = s.next;
  s.next = static_cast<std::uint16_t>(s.next + 1);
  ++s.inflight;
  WindowSlot& slot = wslot(e, seq);
  slot.kind = kind;
  slot.payload = payload;
  slot.sent_tick = ticks_;
  slot.retransmitted = false;
  slot.backoff = s.base_rto;
  // +1: transmissions triggered mid-round (an ack popping the next pending
  // datagram) must not have their first tick charged by the SAME round's
  // tick() — otherwise a pipelined sender retransmits needlessly whenever
  // the round-trip time equals the initial RTO.
  slot.timer = s.base_rto + 1;
  ++stats_.data_sent;
  if (observer_ != nullptr) {
    observer_->on_link_transmit(src_[e], dst_[e], /*retransmit=*/false);
  }
  emit(e, Message{cfg_.data_kind, pack_data(s.inc, seq, kind), payload});
}

void LinkProtocol::pop_and_transmit(std::size_t e, SenderState& s) {
  const Pending& next = ring_[e * cfg_.queue_capacity + s.head];
  s.head = (s.head + 1) % cfg_.queue_capacity;
  --s.count;
  transmit(e, s, next.kind, next.payload);
}

bool LinkProtocol::try_send(ProcessorId from, ProcessorId to,
                            std::uint8_t kind, std::uint64_t payload) {
  SNAPPIF_ASSERT_MSG(mailer_ != nullptr, "link send before network start");
  const std::size_t e = did(from, to);
  SenderState& s = out_[e];
  if (s.count == 0 && s.inflight < effective_window(s)) {
    transmit(e, s, kind, payload);
    return true;
  }
  if (s.count < cfg_.queue_capacity) {
    ring_[e * cfg_.queue_capacity + (s.head + s.count) % cfg_.queue_capacity] =
        Pending{kind, payload};
    ++s.count;
    return true;
  }
  ++stats_.backpressured;
  return false;
}

void LinkProtocol::send(ProcessorId from, ProcessorId to, std::uint8_t kind,
                        std::uint64_t payload) {
  SNAPPIF_ASSERT_MSG(try_send(from, to, kind, payload),
                     "link pending ring full");
}

bool LinkProtocol::can_send(ProcessorId from, ProcessorId to) const {
  const SenderState& s = out_[did(from, to)];
  // A free ring slot always suffices: try_send either transmits directly
  // (window open, ring empty) or enqueues.
  return s.count < cfg_.queue_capacity;
}

void LinkProtocol::send_latest(ProcessorId from, ProcessorId to,
                               std::uint8_t kind, std::uint64_t payload) {
  SNAPPIF_ASSERT_MSG(mailer_ != nullptr, "link send before network start");
  const std::size_t e = did(from, to);
  SenderState& s = out_[e];
  if (s.count == 0 && s.inflight < effective_window(s)) {
    transmit(e, s, kind, payload);
    return;
  }
  if (s.count > 0) {
    // Overwrite the most recent pending datagram: only the latest snapshot
    // is worth retransmission bandwidth.
    ring_[e * cfg_.queue_capacity +
          (s.head + s.count - 1) % cfg_.queue_capacity] = Pending{kind, payload};
    ++stats_.superseded;
    return;
  }
  ring_[e * cfg_.queue_capacity + s.head] = Pending{kind, payload};
  s.count = 1;
}

void LinkProtocol::tick() {
  SNAPPIF_ASSERT_MSG(mailer_ != nullptr, "link tick before network start");
  ++ticks_;
  for (std::size_t e = 0; e < out_.size(); ++e) {
    SenderState& s = out_[e];
    for (std::uint16_t i = 0; i < s.inflight; ++i) {
      const std::uint16_t seq = static_cast<std::uint16_t>(s.una + i);
      WindowSlot& slot = wslot(e, seq);
      if (--slot.timer > 0) {
        continue;
      }
      if (i != 0) {
        // Only the base of the window retransmits on timeout.  Everything
        // behind it is either buffered at the receiver (it fills the hole,
        // the cumulative ack retires the lot) or will become the base
        // itself within an RTO — retransmitting the whole window on one
        // lost frame is a go-back-N storm the reorder buffer exists to
        // avoid.  At window=1 the base is the only slot, so stop-and-wait
        // behavior is bit-identical.
        slot.timer = s.base_rto;
        continue;
      }
      ++stats_.timer_fires;
      ++stats_.retransmits;
      slot.retransmitted = true;  // Karn: the next ack is ambiguous
      slot.backoff = std::min(slot.backoff * 2, cfg_.rto_cap);
      slot.timer = slot.backoff;
      if (observer_ != nullptr) {
        observer_->on_link_transmit(src_[e], dst_[e], /*retransmit=*/true);
      }
      emit(e, Message{cfg_.data_kind, pack_data(s.inc, seq, slot.kind),
                      slot.payload});
    }
  }
}

void LinkProtocol::clear_recv_window(std::size_t e) {
  if (cfg_.window == 1) {
    return;  // no reorder buffer at stop-and-wait
  }
  for (std::size_t w = 0; w < cfg_.window; ++w) {
    rslot_[e * cfg_.window + w].valid = false;
  }
}

void LinkProtocol::reset_endpoint(ProcessorId p) {
  SNAPPIF_ASSERT(p < graph_->n());
  for (std::size_t e = base_[p]; e < base_[p + 1]; ++e) {
    SenderState& s = out_[e];
    const std::uint16_t old_inc = s.inc;
    s = SenderState{};
    s.base_rto = cfg_.rto_initial;
    do {
      s.inc = static_cast<std::uint16_t>(rng_());
    } while (s.inc == old_inc);
    in_[e].known = false;  // in_[did(p, q)]: p's receiver for q -> p
    clear_recv_window(e);
    if (cfg_.coalesce) {
      stage_count_[e] = 0;  // a crash loses buffers staged for the wire too
    }
  }
}

bool LinkProtocol::idle() const noexcept {
  for (const SenderState& s : out_) {
    if (s.inflight > 0 || s.count > 0) {
      return false;
    }
  }
  if (cfg_.coalesce) {
    for (const std::size_t n : stage_count_) {
      if (n > 0) {
        return false;
      }
    }
  }
  return true;
}

void LinkProtocol::on_start(ProcessorId p, Mailer& mailer) {
  mailer_ = &mailer;
  client_->on_link_start(p, *this);
}

void LinkProtocol::on_message(ProcessorId p, ProcessorId from,
                              const Message& m, Mailer& mailer) {
  mailer_ = &mailer;
  if (m.kind == cfg_.data_kind) {
    handle_data(p, from, m);
  } else if (m.kind == cfg_.ack_kind) {
    handle_ack(p, from, m);
  } else {
    ++stats_.junk_discarded;
  }
}

void LinkProtocol::send_ack(std::size_t e, std::uint16_t inc,
                            std::uint16_t seq) {
  ++stats_.acks_sent;
  emit(e, Message{cfg_.ack_kind, pack_ack(inc, seq), 0});
}

void LinkProtocol::deliver_frame(ProcessorId p, ProcessorId from,
                                 std::uint8_t kind, std::uint64_t payload) {
  ++stats_.delivered;
  if (observer_ != nullptr) {
    observer_->on_link_delivered(p, from);
  }
  client_->on_link_deliver(p, from, kind, payload, *this);
}

void LinkProtocol::handle_data(ProcessorId p, ProcessorId from,
                               const Message& m) {
  if ((m.a >> 40) != 0) {
    ++stats_.junk_discarded;
    return;
  }
  const std::uint16_t inc = header_inc(m.a);
  const std::uint16_t seq = header_seq(m.a);
  // did(p, from) is both p's receiver index for (from -> p) and p's sender
  // index for the reverse edge the ack travels on.
  const std::size_t e = did(p, from);
  ReceiverState& r = in_[e];
  if (!r.known || inc != r.inc) {
    // First contact, or the peer restarted with a fresh incarnation.  Both
    // surface as on_link_peer_reset: an incarnation we cannot prove
    // continuity with means the sender may have rebooted and lost its cached
    // view of us.  (Treating only inc != r.inc as a reset has a deadlock: if
    // WE reset — clearing r.known — and the peer then reboots, its new
    // incarnation would slip through this branch silently and the peer's
    // corrupt view of us would never be corrected.)  Buffered gap frames
    // belong to the dead incarnation: drop them.
    clear_recv_window(e);
    r.known = true;
    r.inc = inc;
    r.seq = seq;
    send_ack(e, inc, seq);
    ++stats_.delivered;
    ++stats_.peer_resets;
    if (observer_ != nullptr) {
      observer_->on_link_peer_reset(p, from);
    }
    client_->on_link_peer_reset(p, from, *this);
    if (observer_ != nullptr) {
      observer_->on_link_delivered(p, from);
    }
    client_->on_link_deliver(p, from, header_kind(m.a), m.b, *this);
    return;
  }
  if (seq == r.seq) {
    // Duplicate of the in-order point (channel duplication, or a
    // retransmission whose ack we lost).  Re-ack so the sender unblocks.
    ++stats_.duplicates_discarded;
    send_ack(e, inc, r.seq);
    return;
  }
  if (!serial_newer(seq, r.seq)) {
    // A stale copy that overtook newer traffic (reordering).  At window = 1
    // no ack: acking it could never match anything legitimately in flight.
    // With a window the cumulative re-ack is useful — the original ack that
    // advanced us past this frame may have been lost, and one cumulative
    // ack retires everything up to the in-order point.
    ++stats_.stale_discarded;
    if (cfg_.window > 1) {
      send_ack(e, inc, r.seq);
    }
    return;
  }
  if (cfg_.window == 1) {
    // Historical stop-and-wait acceptance: ANY newer frame advances the
    // in-order point, gaps included (the sender had at most one frame in
    // flight, so a gap means send_latest superseded the hole).  Bit-exact
    // with the pre-window implementation — seeded corpora replay on it.
    r.seq = seq;
    send_ack(e, inc, seq);
    deliver_frame(p, from, header_kind(m.a), m.b);
    return;
  }
  const std::uint16_t gap = serial_distance(seq, r.seq);
  if (gap > cfg_.window) {
    // A live sender's window is bounded by its oldest un-acked frame, which
    // is never past our in-order point + 1 — only wire garbage lands here.
    ++stats_.ooo_dropped;
    return;
  }
  if (gap > 1) {
    // Ahead of the hole: park it, and re-ack the in-order point.  The
    // duplicate cumulative ack tells the sender its base frame went missing
    // while newer traffic got through — three of them trigger a fast
    // retransmit of the hole without waiting out the RTO (the timer stays
    // armed as the backstop).
    RecvSlot& slot = rslot(e, seq);
    if (slot.valid && slot.seq == seq) {
      ++stats_.duplicates_discarded;
    } else {
      slot.valid = true;
      slot.seq = seq;
      slot.kind = header_kind(m.a);
      slot.payload = m.b;
      ++stats_.ooo_buffered;
    }
    send_ack(e, inc, r.seq);
    return;
  }
  // gap == 1: the in-order successor.  Scan the contiguous run of buffered
  // frames it unlocks, ack the whole run cumulatively FIRST (acks precede
  // delivery upcalls, which may send), then deliver in sequence order.
  std::uint16_t last = seq;
  while (true) {
    const RecvSlot& nx = rslot(e, static_cast<std::uint16_t>(last + 1));
    if (!nx.valid || nx.seq != static_cast<std::uint16_t>(last + 1)) {
      break;
    }
    last = static_cast<std::uint16_t>(last + 1);
  }
  send_ack(e, inc, last);
  r.seq = seq;
  deliver_frame(p, from, header_kind(m.a), m.b);
  while (r.seq != last) {
    RecvSlot& nx = rslot(e, static_cast<std::uint16_t>(r.seq + 1));
    nx.valid = false;
    r.seq = static_cast<std::uint16_t>(r.seq + 1);
    const std::uint8_t kind = nx.kind;
    const std::uint64_t payload = nx.payload;
    ++stats_.ooo_delivered;
    deliver_frame(p, from, kind, payload);
  }
}

void LinkProtocol::handle_ack(ProcessorId p, ProcessorId from,
                              const Message& m) {
  if ((m.a >> 32) != 0) {
    ++stats_.junk_discarded;
    return;
  }
  const std::size_t e = did(p, from);
  SenderState& s = out_[e];
  const std::uint16_t aseq = header_seq(m.a);
  // Cumulative: valid iff it lands inside [una, una+inflight).  An ack of
  // una-1 (a re-ack the receiver sent for a duplicate we no longer have in
  // flight) is spurious, exactly as the stop-and-wait exact-match was.
  if (s.inflight == 0 || header_inc(m.a) != s.inc ||
      serial_distance(aseq, s.una) >= s.inflight) {
    if (cfg_.window > 1 && s.inflight > 0 && header_inc(m.a) == s.inc &&
        aseq == static_cast<std::uint16_t>(s.una - 1)) {
      // Duplicate cumulative ack: the receiver parked traffic beyond our
      // base frame but has not seen the base itself.  Three of them mean
      // the hole is lost, not late — retransmit it now instead of waiting
      // out the RTO (which stays armed as the backstop).  One lost frame
      // otherwise head-of-line-blocks every stream multiplexed on the edge
      // for a full timeout.
      if (++s.dupacks == 3) {
        s.dupacks = 0;
        WindowSlot& base = wslot(e, s.una);
        base.retransmitted = true;  // Karn: the next ack is ambiguous
        base.timer = base.backoff;
        ++stats_.retransmits;
        ++stats_.fast_retransmits;
        if (observer_ != nullptr) {
          observer_->on_link_transmit(src_[e], dst_[e], /*retransmit=*/true);
        }
        emit(e, Message{cfg_.data_kind, pack_data(s.inc, s.una, base.kind),
                        base.payload});
      }
      return;
    }
    ++stats_.spurious_acks;
    return;
  }
  const std::uint16_t acked =
      static_cast<std::uint16_t>(serial_distance(aseq, s.una) + 1);
  // The RTT sample comes from the newest frame this ack retires — the one
  // whose arrival generated it.
  WindowSlot& newest = wslot(e, aseq);
  if (cfg_.rto_mode == RtoMode::kAdaptive) {
    if (!newest.retransmitted) {
      // RFC 6298 scaled-integer update.  The sample is in tick() units; a
      // same-tick round trip (synchronous loopback) counts as 1.
      const std::int64_t sample = static_cast<std::int64_t>(
          std::max<std::uint64_t>(1, ticks_ - newest.sent_tick));
      if (s.srtt8 == 0) {
        s.srtt8 = static_cast<std::uint32_t>(sample << 3);   // SRTT = R
        s.rttvar4 = static_cast<std::uint32_t>(sample << 1); // RTTVAR = R/2
      } else {
        std::int64_t err = sample - (static_cast<std::int64_t>(s.srtt8) >> 3);
        const std::int64_t srtt8 =
            std::max<std::int64_t>(8, static_cast<std::int64_t>(s.srtt8) + err);
        if (err < 0) {
          err = -err;
        }
        const std::int64_t rttvar4 = std::max<std::int64_t>(
            0, static_cast<std::int64_t>(s.rttvar4) + err -
                   (static_cast<std::int64_t>(s.rttvar4) >> 2));
        s.srtt8 = static_cast<std::uint32_t>(srtt8);
        s.rttvar4 = static_cast<std::uint32_t>(rttvar4);
      }
      ++stats_.rtt_samples;
    } else {
      // Karn's rule: an ack of a retransmitted frame is ambiguous (it may
      // acknowledge any copy), so it must not feed the estimator.
      ++stats_.karn_suppressed;
    }
    if (s.srtt8 == 0) {
      s.base_rto = cfg_.rto_initial;  // no sample yet (Karn-suppressed so far)
    } else {
      const std::uint32_t rto =
          (s.srtt8 >> 3) + std::max<std::uint32_t>(1, s.rttvar4);
      s.base_rto = std::clamp(rto, cfg_.rto_min, cfg_.rto_cap);
    }
  } else {
    s.base_rto = cfg_.rto_initial;
  }
  s.una = static_cast<std::uint16_t>(aseq + 1);
  s.inflight = static_cast<std::uint16_t>(s.inflight - acked);
  s.opened = true;  // baseline confirmed: the window may widen past 1
  s.dupacks = 0;    // the base moved; the dup-ack run is over
  while (s.count > 0 && s.inflight < effective_window(s)) {
    pop_and_transmit(e, s);
  }
}

void LinkProtocol::record_telemetry(obs::Registry& registry) const {
  registry.counter("mp.link.data_sent").inc(stats_.data_sent);
  registry.counter("mp.link.retransmits").inc(stats_.retransmits);
  registry.counter("mp.link.timer_fires").inc(stats_.timer_fires);
  registry.counter("mp.link.acks_sent").inc(stats_.acks_sent);
  registry.counter("mp.link.spurious_acks").inc(stats_.spurious_acks);
  registry.counter("mp.link.delivered").inc(stats_.delivered);
  registry.counter("mp.link.duplicates_discarded")
      .inc(stats_.duplicates_discarded);
  registry.counter("mp.link.stale_discarded").inc(stats_.stale_discarded);
  registry.counter("mp.link.junk_discarded").inc(stats_.junk_discarded);
  registry.counter("mp.link.superseded").inc(stats_.superseded);
  registry.counter("mp.link.peer_resets").inc(stats_.peer_resets);
  registry.counter("mp.link.rtt_samples").inc(stats_.rtt_samples);
  registry.counter("mp.link.karn_suppressed").inc(stats_.karn_suppressed);
  registry.counter("mp.link.backpressured").inc(stats_.backpressured);
  registry.counter("mp.link.ooo_buffered").inc(stats_.ooo_buffered);
  registry.counter("mp.link.ooo_delivered").inc(stats_.ooo_delivered);
  registry.counter("mp.link.ooo_dropped").inc(stats_.ooo_dropped);
  registry.counter("mp.link.coalesced_batches").inc(stats_.coalesced_batches);
  registry.counter("mp.link.coalesced_frames").inc(stats_.coalesced_frames);
  registry.counter("mp.link.fast_retransmits").inc(stats_.fast_retransmits);
}

}  // namespace snappif::mp
