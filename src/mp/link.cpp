#include "mp/link.hpp"

#include <algorithm>

#include "mp/serial.hpp"
#include "util/assert.hpp"

namespace snappif::mp {

namespace {

// Data header (Message.a): bits [0,16) incarnation, [16,32) sequence,
// [32,40) user kind, [40,64) must be zero.  Ack header: same minus the user
// kind.  Anything violating the zero bits is junk (arbitrary initial channel
// content), counted and dropped rather than asserted — garbage on the wire
// is the adversary's move, not a programming error.
constexpr std::uint64_t pack_data(std::uint16_t inc, std::uint16_t seq,
                                  std::uint8_t kind) {
  return static_cast<std::uint64_t>(inc) |
         (static_cast<std::uint64_t>(seq) << 16) |
         (static_cast<std::uint64_t>(kind) << 32);
}

constexpr std::uint64_t pack_ack(std::uint16_t inc, std::uint16_t seq) {
  return static_cast<std::uint64_t>(inc) |
         (static_cast<std::uint64_t>(seq) << 16);
}

constexpr std::uint16_t header_inc(std::uint64_t a) {
  return static_cast<std::uint16_t>(a);
}
constexpr std::uint16_t header_seq(std::uint64_t a) {
  return static_cast<std::uint16_t>(a >> 16);
}
constexpr std::uint8_t header_kind(std::uint64_t a) {
  return static_cast<std::uint8_t>(a >> 32);
}

}  // namespace

std::optional<std::string> validate(const LinkConfig& cfg) {
  if (cfg.data_kind == cfg.ack_kind) {
    return "link data and ack kinds must differ";
  }
  if (cfg.rto_initial < 1) {
    return "rto_initial must be >= 1";
  }
  if (cfg.rto_cap < cfg.rto_initial) {
    return "rto_cap must be >= rto_initial";
  }
  if (cfg.rto_min < 1 || cfg.rto_min > cfg.rto_initial) {
    return "rto_min must be in [1, rto_initial]";
  }
  if (cfg.queue_capacity < 1) {
    return "queue_capacity must be >= 1";
  }
  return std::nullopt;
}

LinkProtocol::LinkProtocol(const graph::Graph& g, LinkClient& client,
                           LinkConfig cfg, std::uint64_t seed)
    : graph_(&g), client_(&client), cfg_(cfg), rng_(seed) {
  const std::optional<std::string> objection = validate(cfg_);
  SNAPPIF_ASSERT_MSG(!objection.has_value(),
                     objection.has_value() ? objection->c_str()
                                           : "link config valid");
  base_.resize(g.n() + 1, 0);
  for (ProcessorId p = 0; p < g.n(); ++p) {
    base_[p + 1] = base_[p] + g.degree(p);
  }
  const std::size_t edges = base_[g.n()];
  src_.resize(edges);
  dst_.resize(edges);
  for (ProcessorId p = 0; p < g.n(); ++p) {
    const auto nbrs = g.neighbors(p);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      src_[base_[p] + i] = p;
      dst_[base_[p] + i] = nbrs[i];
    }
  }
  out_.resize(edges);
  in_.resize(edges);
  ring_.resize(edges * cfg_.queue_capacity);
  for (SenderState& s : out_) {
    s.inc = static_cast<std::uint16_t>(rng_());
    s.backoff = cfg_.rto_initial;
  }
}

std::size_t LinkProtocol::did(ProcessorId u, ProcessorId v) const {
  const auto nbrs = graph_->neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  SNAPPIF_ASSERT_MSG(it != nbrs.end() && *it == v, "link use of a non-edge");
  return base_[u] + static_cast<std::size_t>(it - nbrs.begin());
}

void LinkProtocol::transmit(std::size_t e, SenderState& s, std::uint8_t kind,
                            std::uint64_t payload) {
  s.in_flight = true;
  s.kind = kind;
  s.payload = payload;
  s.sent_tick = ticks_;
  s.retransmitted = false;
  // +1: transmissions triggered mid-round (an ack popping the next pending
  // datagram) must not have their first tick charged by the SAME round's
  // tick() — otherwise a pipelined sender retransmits needlessly whenever
  // the round-trip time equals the initial RTO.
  s.timer = s.backoff + 1;
  ++stats_.data_sent;
  if (observer_ != nullptr) {
    observer_->on_link_transmit(src_[e], dst_[e], /*retransmit=*/false);
  }
  mailer_->send(src_[e], dst_[e],
                Message{cfg_.data_kind, pack_data(s.inc, s.seq, kind), payload});
}

void LinkProtocol::pop_and_transmit(std::size_t e, SenderState& s) {
  const Pending& next = ring_[e * cfg_.queue_capacity + s.head];
  s.head = (s.head + 1) % cfg_.queue_capacity;
  --s.count;
  transmit(e, s, next.kind, next.payload);
}

void LinkProtocol::send(ProcessorId from, ProcessorId to, std::uint8_t kind,
                        std::uint64_t payload) {
  SNAPPIF_ASSERT_MSG(mailer_ != nullptr, "link send before network start");
  const std::size_t e = did(from, to);
  SenderState& s = out_[e];
  if (!s.in_flight && s.count == 0) {
    transmit(e, s, kind, payload);
    return;
  }
  SNAPPIF_ASSERT_MSG(s.count < cfg_.queue_capacity, "link pending ring full");
  ring_[e * cfg_.queue_capacity + (s.head + s.count) % cfg_.queue_capacity] =
      Pending{kind, payload};
  ++s.count;
}

void LinkProtocol::send_latest(ProcessorId from, ProcessorId to,
                               std::uint8_t kind, std::uint64_t payload) {
  SNAPPIF_ASSERT_MSG(mailer_ != nullptr, "link send before network start");
  const std::size_t e = did(from, to);
  SenderState& s = out_[e];
  if (!s.in_flight && s.count == 0) {
    transmit(e, s, kind, payload);
    return;
  }
  if (s.count > 0) {
    // Overwrite the most recent pending datagram: only the latest snapshot
    // is worth retransmission bandwidth.
    ring_[e * cfg_.queue_capacity +
          (s.head + s.count - 1) % cfg_.queue_capacity] = Pending{kind, payload};
    ++stats_.superseded;
    return;
  }
  ring_[e * cfg_.queue_capacity + s.head] = Pending{kind, payload};
  s.count = 1;
}

void LinkProtocol::tick() {
  SNAPPIF_ASSERT_MSG(mailer_ != nullptr, "link tick before network start");
  ++ticks_;
  for (std::size_t e = 0; e < out_.size(); ++e) {
    SenderState& s = out_[e];
    if (!s.in_flight) {
      continue;
    }
    if (--s.timer > 0) {
      continue;
    }
    ++stats_.timer_fires;
    ++stats_.retransmits;
    s.retransmitted = true;  // Karn: the next ack for this frame is ambiguous
    s.backoff = std::min(s.backoff * 2, cfg_.rto_cap);
    s.timer = s.backoff;
    if (observer_ != nullptr) {
      observer_->on_link_transmit(src_[e], dst_[e], /*retransmit=*/true);
    }
    mailer_->send(src_[e], dst_[e],
                  Message{cfg_.data_kind, pack_data(s.inc, s.seq, s.kind),
                          s.payload});
  }
}

void LinkProtocol::reset_endpoint(ProcessorId p) {
  SNAPPIF_ASSERT(p < graph_->n());
  for (std::size_t e = base_[p]; e < base_[p + 1]; ++e) {
    SenderState& s = out_[e];
    const std::uint16_t old_inc = s.inc;
    s = SenderState{};
    s.backoff = cfg_.rto_initial;
    do {
      s.inc = static_cast<std::uint16_t>(rng_());
    } while (s.inc == old_inc);
    in_[e].known = false;  // in_[did(p, q)]: p's receiver for q -> p
  }
}

bool LinkProtocol::idle() const noexcept {
  for (const SenderState& s : out_) {
    if (s.in_flight || s.count > 0) {
      return false;
    }
  }
  return true;
}

void LinkProtocol::on_start(ProcessorId p, Mailer& mailer) {
  mailer_ = &mailer;
  client_->on_link_start(p, *this);
}

void LinkProtocol::on_message(ProcessorId p, ProcessorId from,
                              const Message& m, Mailer& mailer) {
  mailer_ = &mailer;
  if (m.kind == cfg_.data_kind) {
    handle_data(p, from, m);
  } else if (m.kind == cfg_.ack_kind) {
    handle_ack(p, from, m);
  } else {
    ++stats_.junk_discarded;
  }
}

void LinkProtocol::handle_data(ProcessorId p, ProcessorId from,
                               const Message& m) {
  if ((m.a >> 40) != 0) {
    ++stats_.junk_discarded;
    return;
  }
  const std::uint16_t inc = header_inc(m.a);
  const std::uint16_t seq = header_seq(m.a);
  ReceiverState& r = in_[did(p, from)];
  bool deliver = false;
  bool resync = false;
  if (!r.known || inc != r.inc) {
    // First contact, or the peer restarted with a fresh incarnation.  Both
    // surface as on_link_peer_reset: an incarnation we cannot prove
    // continuity with means the sender may have rebooted and lost its cached
    // view of us.  (Treating only inc != r.inc as a reset has a deadlock: if
    // WE reset — clearing r.known — and the peer then reboots, its new
    // incarnation would slip through this branch silently and the peer's
    // corrupt view of us would never be corrected.)
    resync = true;
    r.known = true;
    r.inc = inc;
    r.seq = seq;
    deliver = true;
  } else if (seq == r.seq) {
    // Duplicate of the last accepted frame (channel duplication, or a
    // retransmission whose ack we lost).  Re-ack so the sender unblocks.
    ++stats_.duplicates_discarded;
  } else if (serial_newer(seq, r.seq)) {
    r.seq = seq;
    deliver = true;
  } else {
    // A stale copy that overtook newer traffic (reordering).  No ack: acking
    // it could never match anything legitimately in flight anyway.
    ++stats_.stale_discarded;
    return;
  }
  ++stats_.acks_sent;
  mailer_->send(p, from, Message{cfg_.ack_kind, pack_ack(inc, seq), 0});
  if (deliver) {
    ++stats_.delivered;
    if (resync) {
      ++stats_.peer_resets;
      if (observer_ != nullptr) {
        observer_->on_link_peer_reset(p, from);
      }
      client_->on_link_peer_reset(p, from, *this);
    }
    if (observer_ != nullptr) {
      observer_->on_link_delivered(p, from);
    }
    client_->on_link_deliver(p, from, header_kind(m.a), m.b, *this);
  }
}

void LinkProtocol::handle_ack(ProcessorId p, ProcessorId from,
                              const Message& m) {
  if ((m.a >> 32) != 0) {
    ++stats_.junk_discarded;
    return;
  }
  const std::size_t e = did(p, from);
  SenderState& s = out_[e];
  if (!s.in_flight || header_inc(m.a) != s.inc || header_seq(m.a) != s.seq) {
    ++stats_.spurious_acks;
    return;
  }
  s.in_flight = false;
  s.seq = static_cast<std::uint16_t>(s.seq + 1);
  if (cfg_.rto_mode == RtoMode::kAdaptive) {
    if (!s.retransmitted) {
      // RFC 6298 scaled-integer update.  The sample is in tick() units; a
      // same-tick round trip (synchronous loopback) counts as 1.
      const std::int64_t sample = static_cast<std::int64_t>(
          std::max<std::uint64_t>(1, ticks_ - s.sent_tick));
      if (s.srtt8 == 0) {
        s.srtt8 = static_cast<std::uint32_t>(sample << 3);   // SRTT = R
        s.rttvar4 = static_cast<std::uint32_t>(sample << 1); // RTTVAR = R/2
      } else {
        std::int64_t err = sample - (static_cast<std::int64_t>(s.srtt8) >> 3);
        const std::int64_t srtt8 =
            std::max<std::int64_t>(8, static_cast<std::int64_t>(s.srtt8) + err);
        if (err < 0) {
          err = -err;
        }
        const std::int64_t rttvar4 = std::max<std::int64_t>(
            0, static_cast<std::int64_t>(s.rttvar4) + err -
                   (static_cast<std::int64_t>(s.rttvar4) >> 2));
        s.srtt8 = static_cast<std::uint32_t>(srtt8);
        s.rttvar4 = static_cast<std::uint32_t>(rttvar4);
      }
      ++stats_.rtt_samples;
    } else {
      // Karn's rule: an ack of a retransmitted frame is ambiguous (it may
      // acknowledge any copy), so it must not feed the estimator.
      ++stats_.karn_suppressed;
    }
    if (s.srtt8 == 0) {
      s.backoff = cfg_.rto_initial;  // no sample yet (Karn-suppressed so far)
    } else {
      const std::uint32_t rto =
          (s.srtt8 >> 3) + std::max<std::uint32_t>(1, s.rttvar4);
      s.backoff = std::clamp(rto, cfg_.rto_min, cfg_.rto_cap);
    }
  } else {
    s.backoff = cfg_.rto_initial;
  }
  if (s.count > 0) {
    pop_and_transmit(e, s);
  }
}

void LinkProtocol::record_telemetry(obs::Registry& registry) const {
  registry.counter("mp.link.data_sent").inc(stats_.data_sent);
  registry.counter("mp.link.retransmits").inc(stats_.retransmits);
  registry.counter("mp.link.timer_fires").inc(stats_.timer_fires);
  registry.counter("mp.link.acks_sent").inc(stats_.acks_sent);
  registry.counter("mp.link.spurious_acks").inc(stats_.spurious_acks);
  registry.counter("mp.link.delivered").inc(stats_.delivered);
  registry.counter("mp.link.duplicates_discarded")
      .inc(stats_.duplicates_discarded);
  registry.counter("mp.link.stale_discarded").inc(stats_.stale_discarded);
  registry.counter("mp.link.junk_discarded").inc(stats_.junk_discarded);
  registry.counter("mp.link.superseded").inc(stats_.superseded);
  registry.counter("mp.link.peer_resets").inc(stats_.peer_resets);
  registry.counter("mp.link.rtt_samples").inc(stats_.rtt_samples);
  registry.counter("mp.link.karn_suppressed").inc(stats_.karn_suppressed);
}

}  // namespace snappif::mp
