// Message-passing substrate.
//
// The PIF concept originates in the message-passing world (Chang's echo
// algorithm [10], Segall's propagation of information with feedback [21]);
// the paper recasts it into the locally-shared-memory model to make
// snap-stabilization possible.  This substrate implements the original
// model so the repository can run the fault-free ancestor as a reference
// point: asynchronous reliable channels, an adversarial delivery scheduler,
// and a synchronous mode that measures time in hops.
//
// Fault-tolerance contrast: the substrate also supports dropping messages —
// classic echo deadlocks permanently after a single loss (no retransmission,
// no stabilization), which is precisely the failure class self-/snap-
// stabilization addresses.  The resilience layer (mp/link.hpp,
// mp/guarded_emulation.hpp) closes that gap on top of this substrate.
//
// Crash-recover faults: a crashed processor neither sends nor receives —
// its inbound channels are flushed at crash time (messages in a real
// network die with the endpoint's buffers) and everything addressed to or
// from it is silently discarded until recover().  What the processor's
// *state* looks like after recovery (reset vs adversarially corrupted) is
// protocol business and is handled by the layer above (the emulation's
// RecoveryMode); the network only models the silence window.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "graph/graph.hpp"
#include "mp/transport.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace snappif::mp {

/// How the adversary schedules deliveries.
enum class Delivery {
  kRandomChannel,   // asynchronous: uniformly random non-empty channel,
                    // FIFO within each channel
  kSynchronous,     // lock-step: all in-flight messages deliver each round
};

/// The deterministic in-process loopback backend of mp::ITransport — the
/// reference transport every replayable suite runs over.
class Network final : public ITransport {
 public:
  Network(const graph::Graph& g, IMpProtocol& protocol, Delivery delivery,
          std::uint64_t seed);

  /// Probability of silently dropping each sent message (default 0: the
  /// classic reliable-channel assumption).  All rate setters validate their
  /// argument: NaN is rejected (assert), anything else is clamped to [0,1].
  void set_loss_rate(double rate) noexcept;
  /// Probability of enqueueing each sent message twice (duplication fault).
  /// Loss is decided per copy, after duplication.
  void set_duplication_rate(double rate) noexcept;
  /// Probability of a sent message jumping to the *front* of its channel
  /// queue (intra-channel reordering; FIFO is otherwise preserved).
  void set_reorder_rate(double rate) noexcept;

  /// Opt-in send-side validation of Message.kind: bit k of `mask` allows
  /// kind k (kinds must therefore be < 64 to participate).  0 (the default)
  /// disables validation.  Sending an unlisted kind with validation on is a
  /// programming error (assert) — a protocol stack declares its vocabulary
  /// once and any stray/corrupted kind dies loudly instead of being
  /// mis-dispatched.
  void set_allowed_kinds(std::uint64_t mask) noexcept { allowed_kinds_ = mask; }

  /// Crash-recover faults.  crash() flushes p's inbound channels and starts
  /// the silence window; recover() ends it.  Crashing a crashed processor
  /// (or recovering a live one) is a programming error.
  void crash(ProcessorId p);
  void recover(ProcessorId p);
  [[nodiscard]] bool crashed(ProcessorId p) const { return crashed_.at(p); }

  /// Invokes on_start everywhere, then delivers until quiescence or the
  /// delivery budget is exhausted.  Returns true iff the network quiesced.
  bool run(std::uint64_t max_deliveries = 10'000'000);

  // ITransport: step() delivers at most one message (kRandomChannel) or one
  // synchronous round (kSynchronous) and returns false when no message is
  // in flight; idle() is "no message in flight".
  bool step() override;
  void start() override;
  [[nodiscard]] bool idle() const override { return in_flight_ == 0; }
  /// The delivery counters below are the source of truth; this view refreshes
  /// the shared TransportStats shape from them on demand.
  [[nodiscard]] const TransportStats& transport_stats() const override {
    tstats_.sent = sent_;
    tstats_.delivered = delivered_;
    tstats_.dropped = dropped_ + dropped_crashed_;
    tstats_.duplicated = duplicated_;
    tstats_.reordered = reordered_;
    return tstats_;
  }

  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return delivered_;
  }
  [[nodiscard]] std::uint64_t messages_dropped() const noexcept {
    return dropped_;
  }
  /// Extra copies enqueued by duplication.
  [[nodiscard]] std::uint64_t messages_duplicated() const noexcept {
    return duplicated_;
  }
  /// Messages that jumped ahead of at least one queued message.
  [[nodiscard]] std::uint64_t messages_reordered() const noexcept {
    return reordered_;
  }
  /// Messages discarded because an endpoint was crashed (sends to/from a
  /// crashed processor plus inbound queues flushed at crash time).  Counted
  /// separately from messages_dropped(): channel loss and endpoint death
  /// are different faults.
  [[nodiscard]] std::uint64_t messages_dropped_crashed() const noexcept {
    return dropped_crashed_;
  }
  [[nodiscard]] std::uint64_t in_flight() const noexcept { return in_flight_; }
  /// Synchronous mode: completed delivery rounds ("hops" of wall time).
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }

  // Mailer:
  void send(ProcessorId from, ProcessorId to, const Message& m) override;

 private:
  struct InFlight {
    ProcessorId from;
    Message message;
  };

  [[nodiscard]] std::size_t channel_index(ProcessorId from, ProcessorId to) const;
  void enqueue(ProcessorId from, ProcessorId to, const Message& m);

  const graph::Graph* graph_;
  IMpProtocol* protocol_;
  Delivery delivery_;
  util::Rng rng_;
  double loss_rate_ = 0.0;
  double duplication_rate_ = 0.0;
  double reorder_rate_ = 0.0;
  std::uint64_t allowed_kinds_ = 0;  // 0 = validation off

  // One FIFO per directed edge; channels_[to] groups by receiver.
  std::vector<std::vector<std::deque<InFlight>>> inbox_;  // [to][slot]
  std::vector<bool> crashed_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t dropped_crashed_ = 0;
  std::uint64_t in_flight_ = 0;
  std::uint64_t rounds_ = 0;
  bool started_ = false;
  mutable TransportStats tstats_;
};

}  // namespace snappif::mp
