// Lightweight always-on assertion macro for internal invariants.
//
// Unlike <cassert>, SNAPPIF_ASSERT stays active in release builds: the
// simulator's correctness claims are the whole point of this project, so we
// never trade them for speed silently.  The macro prints the failing
// expression, file and line, plus an optional human-readable message, then
// aborts.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace snappif::util::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "SNAPPIF_ASSERT failed: %s\n  at %s:%d\n", expr, file, line);
  if (msg != nullptr && msg[0] != '\0') {
    std::fprintf(stderr, "  %s\n", msg);
  }
  std::abort();
}

}  // namespace snappif::util::detail

#define SNAPPIF_ASSERT(expr)                                                       \
  do {                                                                             \
    if (!(expr)) {                                                                 \
      ::snappif::util::detail::assert_fail(#expr, __FILE__, __LINE__, "");         \
    }                                                                              \
  } while (false)

#define SNAPPIF_ASSERT_MSG(expr, msg)                                              \
  do {                                                                             \
    if (!(expr)) {                                                                 \
      ::snappif::util::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));      \
    }                                                                              \
  } while (false)
