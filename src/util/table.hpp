// ASCII table and CSV rendering for benchmark/experiment output.
//
// Every bench binary prints its results as a paper-style table; TablePrinter
// keeps the formatting uniform (right-aligned numerics, aligned columns,
// optional CSV sidecar output).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace snappif::util {

/// Column-aligned text table.  Usage:
///   Table t({"topology", "N", "rounds", "bound"});
///   t.add_row({"ring", "32", "17", "20"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t row, std::size_t col) const;

  /// Renders with a header rule, columns padded to the widest cell.
  [[nodiscard]] std::string render() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  [[nodiscard]] std::string render_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
[[nodiscard]] std::string fmt(double value, int digits = 2);
/// Formats an integer (any integral type).
[[nodiscard]] std::string fmt_int(std::int64_t value);
[[nodiscard]] std::string fmt_uint(std::uint64_t value);
template <typename T>
  requires std::is_integral_v<T>
[[nodiscard]] std::string fmt(T value) {
  if constexpr (std::is_signed_v<T>) {
    return fmt_int(static_cast<std::int64_t>(value));
  } else {
    return fmt_uint(static_cast<std::uint64_t>(value));
  }
}
/// "yes"/"no" for booleans (used in "bound satisfied?" columns).
[[nodiscard]] std::string fmt_bool(bool value);

}  // namespace snappif::util
