// Online statistics accumulators used by the experiment harness.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace snappif::util {

/// Streaming min/max/mean/variance accumulator (Welford's algorithm).
/// All operations are O(1); no samples are retained.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Smallest sample seen; +inf when empty.
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Largest sample seen; -inf when empty.
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Arithmetic mean; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample-retaining accumulator for exact quantiles.  Appropriate for the
/// experiment scales in this project (at most a few million samples).
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// Exact empirical quantile by linear interpolation, q in [0, 1].
  /// Must not be called on an empty accumulator.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

 private:
  // Sorted lazily on demand.
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width integer histogram over [0, bucket_count * bucket_width).
/// Out-of-range values are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(std::size_t bucket_count, double bucket_width);

  /// Clamping policy: negative values and NaN land in bucket 0; values at or
  /// beyond bucket_count * bucket_width (including +inf) land in the last
  /// bucket.  total() counts every add, clamped or not.
  void add(double x) noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept {
    return static_cast<double>(i) * width_;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Renders a compact ASCII bar chart, one line per non-empty bucket.
  [[nodiscard]] std::string render(std::size_t max_bar_width = 50) const;

  /// Merges another histogram of the *same shape* (bucket count and width)
  /// bucket-wise; asserts on shape mismatch.  Used to fold per-worker
  /// telemetry registries into one at shard join (obs::Registry::merge).
  void merge(const Histogram& other) noexcept;
  [[nodiscard]] double bucket_width() const noexcept { return width_; }

 private:
  std::vector<std::uint64_t> counts_;
  double width_;
  std::uint64_t total_ = 0;
};

}  // namespace snappif::util
