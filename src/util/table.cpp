#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/assert.hpp"

namespace snappif::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SNAPPIF_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  SNAPPIF_ASSERT_MSG(cells.size() == headers_.size(),
                     "row width must match header width");
  rows_.push_back(std::move(cells));
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(widths[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) {
    emit_row(row, out);
  }
  return out;
}

std::string Table::render_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') {
        quoted += '"';
      }
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out += ',';
      }
      out += escape(row[c]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return out;
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_int(std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

std::string fmt_uint(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  return buf;
}

std::string fmt_bool(bool value) { return value ? "yes" : "no"; }

}  // namespace snappif::util
