#include "util/cli.hpp"

#include <cerrno>
#include <cstdlib>

namespace snappif::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) {
    program_ = argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    if (body.empty()) {
      // "--" ends flag parsing, the rest are positionals.
      for (int j = i + 1; j < argc; ++j) {
        positional_.emplace_back(argv[j]);
      }
      break;
    }
    Flag flag;
    if (const auto eq = body.find('='); eq != std::string_view::npos) {
      flag.name = std::string(body.substr(0, eq));
      flag.value = std::string(body.substr(eq + 1));
      flag.has_value = true;
    } else if (body.starts_with("no-")) {
      flag.name = std::string(body.substr(3));
      flag.value = "false";
      flag.has_value = true;
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      flag.name = std::string(body);
      flag.value = argv[i + 1];
      flag.has_value = true;
      ++i;
    } else {
      flag.name = std::string(body);
      flag.value = "true";
      flag.has_value = true;
    }
    flags_.push_back(std::move(flag));
  }
}

std::optional<std::string> Cli::get(std::string_view name) const {
  // Last occurrence wins, so callers can override defaults on re-invocation.
  std::optional<std::string> found;
  for (const auto& flag : flags_) {
    if (flag.name == name) {
      found = flag.value;
    }
  }
  return found;
}

std::string Cli::get_string(std::string_view name, std::string default_value) const {
  if (auto v = get(name)) {
    return *v;
  }
  return default_value;
}

std::int64_t Cli::get_int(std::string_view name, std::int64_t default_value) const {
  if (auto v = get(name)) {
    char* end = nullptr;
    const long long parsed = std::strtoll(v->c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && !v->empty()) {
      return parsed;
    }
  }
  return default_value;
}

std::uint64_t Cli::get_u64(std::string_view name,
                           std::uint64_t default_value) const {
  if (auto v = get(name)) {
    // strtoull silently wraps negative input ("-1" -> UINT64_MAX) and a
    // plain range check misses it, so any sign character is rejected up
    // front; ERANGE catches values past UINT64_MAX.
    if (v->empty() || (*v)[0] == '-' || (*v)[0] == '+') {
      return default_value;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
    if (errno == 0 && end != nullptr && *end == '\0') {
      return parsed;
    }
  }
  return default_value;
}

double Cli::get_double(std::string_view name, double default_value) const {
  if (auto v = get(name)) {
    char* end = nullptr;
    const double parsed = std::strtod(v->c_str(), &end);
    if (end != nullptr && *end == '\0' && !v->empty()) {
      return parsed;
    }
  }
  return default_value;
}

bool Cli::get_bool(std::string_view name, bool default_value) const {
  if (auto v = get(name)) {
    return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
  }
  return default_value;
}

bool Cli::has(std::string_view name) const { return get(name).has_value(); }

}  // namespace snappif::util
