#include "util/rng.hpp"

// Header-only implementation; this translation unit exists so the library has
// a concrete object for the module and to host the static checks below.

namespace snappif::util {

static_assert(Rng::min() == 0);
static_assert(Rng::max() == 0xffffffffffffffffULL);

}  // namespace snappif::util
