// Minimal leveled logger (stderr).  The simulator core never logs on hot
// paths; logging is for examples and bench harness progress reporting.
//
// Runtime control without code changes: the first log call (or log_level()
// query) reads the SNAPPIF_LOG_LEVEL environment variable — one of
// debug | info | warn | error | off (case-insensitive, surrounding
// whitespace ignored).  Junk is rejected, not silently absorbed: an
// unrecognized name warns ONCE on stderr and falls back to `info`, so the
// operator both sees the typo and still gets the verbosity they were
// reaching for.  set_log_level() always wins over the environment.  Each line is prefixed with a
// wall-clock timestamp ("[HH:MM:SS.mmm]"); disable with
// set_log_timestamps(false) when diffing output.
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>

namespace snappif::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.  Overrides any
/// SNAPPIF_LOG_LEVEL from the environment.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parses a level name ("debug", "INFO", " Warn ", ...); `fallback` on
/// unrecognized input.
[[nodiscard]] LogLevel parse_log_level(std::string_view name,
                                       LogLevel fallback) noexcept;

/// Strict variant: writes the parsed level to `*out` and returns true, or
/// returns false (leaving `*out` untouched) on unrecognized input.  This is
/// the junk detector behind the SNAPPIF_LOG_LEVEL warning.
[[nodiscard]] bool parse_log_level_strict(std::string_view name,
                                          LogLevel* out) noexcept;

/// Re-applies SNAPPIF_LOG_LEVEL from the environment (tools call this after
/// flag parsing so the variable beats the built-in default but not explicit
/// --flags; tests use it to exercise the env path).
void reload_log_level_from_env() noexcept;

/// Toggles the "[HH:MM:SS.mmm]" line prefix (on by default).
void set_log_timestamps(bool enabled) noexcept;

/// printf-style logging.  Thread-safe: each line is formatted into one
/// buffer (timestamp, tag, message, newline) and emitted as a single write,
/// so concurrent callers — parallel fuzz/chaos/model-check workers
/// (src/par/) — never interleave mid-line.  The no-logging fast path is one
/// relaxed atomic load, no lock.  Level/timestamp setters are atomic too,
/// though tests that toggle them around concurrent logging should still
/// expect either value to apply to in-flight lines.
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace snappif::util

#define SNAPPIF_LOG_DEBUG(...) ::snappif::util::logf(::snappif::util::LogLevel::kDebug, __VA_ARGS__)
#define SNAPPIF_LOG_INFO(...) ::snappif::util::logf(::snappif::util::LogLevel::kInfo, __VA_ARGS__)
#define SNAPPIF_LOG_WARN(...) ::snappif::util::logf(::snappif::util::LogLevel::kWarn, __VA_ARGS__)
#define SNAPPIF_LOG_ERROR(...) ::snappif::util::logf(::snappif::util::LogLevel::kError, __VA_ARGS__)
