// Minimal leveled logger (stderr).  The simulator core never logs on hot
// paths; logging is for examples and bench harness progress reporting.
#pragma once

#include <cstdarg>
#include <string>

namespace snappif::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// printf-style logging.  Thread-compatible (callers serialize externally;
/// the simulator is single-threaded by design).
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace snappif::util

#define SNAPPIF_LOG_DEBUG(...) ::snappif::util::logf(::snappif::util::LogLevel::kDebug, __VA_ARGS__)
#define SNAPPIF_LOG_INFO(...) ::snappif::util::logf(::snappif::util::LogLevel::kInfo, __VA_ARGS__)
#define SNAPPIF_LOG_WARN(...) ::snappif::util::logf(::snappif::util::LogLevel::kWarn, __VA_ARGS__)
#define SNAPPIF_LOG_ERROR(...) ::snappif::util::logf(::snappif::util::LogLevel::kError, __VA_ARGS__)
