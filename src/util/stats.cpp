#include "util/stats.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace snappif::util {

void OnlineStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::min() const {
  SNAPPIF_ASSERT(!values_.empty());
  ensure_sorted();
  return values_.front();
}

double Samples::max() const {
  SNAPPIF_ASSERT(!values_.empty());
  ensure_sorted();
  return values_.back();
}

double Samples::mean() const {
  SNAPPIF_ASSERT(!values_.empty());
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

double Samples::quantile(double q) const {
  SNAPPIF_ASSERT(!values_.empty());
  SNAPPIF_ASSERT(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (values_.size() == 1) {
    return values_[0];
  }
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) {
    return values_.back();
  }
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

Histogram::Histogram(std::size_t bucket_count, double bucket_width)
    : counts_(bucket_count, 0), width_(bucket_width) {
  SNAPPIF_ASSERT(bucket_count > 0);
  SNAPPIF_ASSERT(bucket_width > 0.0);
}

void Histogram::add(double x) noexcept {
  // NaN fails the x > 0.0 test and lands in bucket 0 alongside negatives;
  // clamp to the last bucket *before* the size_t cast so +inf and huge
  // values stay defined behavior.
  std::size_t idx = 0;
  if (x > 0.0) {
    const double pos = x / width_;
    idx = pos >= static_cast<double>(counts_.size())
              ? counts_.size() - 1
              : static_cast<std::size_t>(pos);
  }
  ++counts_[idx];
  ++total_;
}

void Histogram::merge(const Histogram& other) noexcept {
  SNAPPIF_ASSERT(counts_.size() == other.counts_.size());
  SNAPPIF_ASSERT(width_ == other.width_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::uint64_t peak = 0;
  for (std::uint64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  if (peak == 0) {
    return "(empty histogram)\n";
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_bar_width));
    char head[64];
    std::snprintf(head, sizeof(head), "[%8.1f, %8.1f) %8llu ", bucket_lo(i),
                  bucket_lo(i) + width_,
                  static_cast<unsigned long long>(counts_[i]));
    out += head;
    out.append(std::max<std::size_t>(bar, 1), '#');
    out += '\n';
  }
  return out;
}

}  // namespace snappif::util
