#include "util/log.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace snappif::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
bool g_env_checked = false;
bool g_timestamps = true;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?    ";
}

void ensure_env_applied() {
  if (g_env_checked) {
    return;
  }
  g_env_checked = true;
  if (const char* env = std::getenv("SNAPPIF_LOG_LEVEL")) {
    g_level = parse_log_level(env, g_level);
  }
}

void print_timestamp(std::FILE* out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_buf{};
  localtime_r(&secs, &tm_buf);
  std::fprintf(out, "[%02d:%02d:%02d.%03d] ", tm_buf.tm_hour, tm_buf.tm_min,
               tm_buf.tm_sec, static_cast<int>(ms));
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_env_checked = true;  // explicit choice beats the environment
  g_level = level;
}

LogLevel log_level() noexcept {
  ensure_env_applied();
  return g_level;
}

LogLevel parse_log_level(std::string_view name, LogLevel fallback) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") {
    return LogLevel::kDebug;
  }
  if (lower == "info") {
    return LogLevel::kInfo;
  }
  if (lower == "warn" || lower == "warning") {
    return LogLevel::kWarn;
  }
  if (lower == "error") {
    return LogLevel::kError;
  }
  if (lower == "off" || lower == "none") {
    return LogLevel::kOff;
  }
  return fallback;
}

void reload_log_level_from_env() noexcept {
  g_env_checked = false;
  ensure_env_applied();
}

void set_log_timestamps(bool enabled) noexcept { g_timestamps = enabled; }

void logf(LogLevel level, const char* fmt, ...) {
  ensure_env_applied();
  if (static_cast<int>(level) < static_cast<int>(g_level)) {
    return;
  }
  if (g_timestamps) {
    print_timestamp(stderr);
  }
  std::fprintf(stderr, "[%s] ", level_tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace snappif::util
