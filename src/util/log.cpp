#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace snappif::util {

namespace {
// The fast path (logging disabled) must stay lock-free: one relaxed load of
// the level, compare, return.  The mutex only guards the env-application
// slow path; the emit itself is a single fwrite of a fully formatted line,
// which stdio already serializes against concurrent writers.
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::atomic<bool> g_env_checked{false};
std::atomic<bool> g_timestamps{true};
std::mutex g_env_mutex;
bool g_env_warned = false;  // guarded by g_env_mutex

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?    ";
}

void ensure_env_applied() {
  if (g_env_checked.load(std::memory_order_acquire)) {
    return;
  }
  const std::lock_guard<std::mutex> lock(g_env_mutex);
  if (g_env_checked.load(std::memory_order_relaxed)) {
    return;
  }
  if (const char* env = std::getenv("SNAPPIF_LOG_LEVEL")) {
    LogLevel level = LogLevel::kInfo;
    if (!parse_log_level_strict(env, &level)) {
      // Junk value: warn once, straight to stderr (logf would recurse into
      // this very function), and fall back to info — the operator was asking
      // for SOME verbosity change, and info both shows their runs and keeps
      // warnings visible.
      if (!g_env_warned) {
        g_env_warned = true;
        std::fprintf(stderr,
                     "[WARN ] SNAPPIF_LOG_LEVEL=\"%s\" is not a log level "
                     "(debug|info|warn|error|off); falling back to info\n",
                     env);
      }
    }
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  g_env_checked.store(true, std::memory_order_release);
}

/// Writes "[HH:MM:SS.mmm] " into `buf` (at least 16 bytes); returns the
/// number of characters written.
std::size_t format_timestamp(char* buf, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_buf{};
  localtime_r(&secs, &tm_buf);
  const int written =
      std::snprintf(buf, size, "[%02d:%02d:%02d.%03d] ", tm_buf.tm_hour,
                    tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(ms));
  return written > 0 ? static_cast<std::size_t>(written) : 0;
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_env_checked.store(true, std::memory_order_release);  // beats the env
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  ensure_env_applied();
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

LogLevel parse_log_level(std::string_view name, LogLevel fallback) noexcept {
  LogLevel level = fallback;
  (void)parse_log_level_strict(name, &level);
  return level;
}

bool parse_log_level_strict(std::string_view name, LogLevel* out) noexcept {
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (!name.empty() && is_space(name.front())) {
    name.remove_prefix(1);
  }
  while (!name.empty() && is_space(name.back())) {
    name.remove_suffix(1);
  }
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else if (lower == "off" || lower == "none") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void reload_log_level_from_env() noexcept {
  {
    // An explicit reload is a fresh look at the environment, so the one-shot
    // junk warning re-arms: each reload of a bad value warns exactly once.
    const std::lock_guard<std::mutex> lock(g_env_mutex);
    g_env_warned = false;
  }
  g_env_checked.store(false, std::memory_order_release);
  ensure_env_applied();
}

void set_log_timestamps(bool enabled) noexcept {
  g_timestamps.store(enabled, std::memory_order_relaxed);
}

void logf(LogLevel level, const char* fmt, ...) {
  ensure_env_applied();
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  // The whole line — timestamp, tag, message, newline — is assembled in one
  // buffer and handed to stderr in a single fwrite, so lines from concurrent
  // workers never interleave.  Over-long messages are truncated with a
  // marker rather than split across writes.
  char line[2048];
  std::size_t pos = 0;
  if (g_timestamps.load(std::memory_order_relaxed)) {
    pos += format_timestamp(line, sizeof(line));
  }
  const int tag = std::snprintf(line + pos, sizeof(line) - pos, "[%s] ",
                                level_tag(level));
  pos += tag > 0 ? static_cast<std::size_t>(tag) : 0;
  va_list args;
  va_start(args, fmt);
  const int body = std::vsnprintf(line + pos, sizeof(line) - pos, fmt, args);
  va_end(args);
  if (body > 0) {
    pos += static_cast<std::size_t>(body);
  }
  if (pos >= sizeof(line) - 1) {  // truncated: keep room for the newline
    pos = sizeof(line) - 5;
    std::memcpy(line + pos, "...", 3);
    pos += 3;
  }
  line[pos++] = '\n';
  std::fwrite(line, 1, pos, stderr);
}

}  // namespace snappif::util
