// Tiny command-line flag parser for the examples and bench binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name`.  Unknown flags are reported; positional arguments collected.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace snappif::util {

class Cli {
 public:
  /// Parses argv; never throws — malformed input is recorded in errors().
  Cli(int argc, const char* const* argv);

  /// Value of --name, if present.
  [[nodiscard]] std::optional<std::string> get(std::string_view name) const;

  /// Typed accessors with defaults.
  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string default_value) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name,
                                     std::int64_t default_value) const;
  /// Full-range unsigned accessor for 64-bit quantities (seeds, iteration
  /// counts).  get_int cannot represent values >= 2^63, so seeds printed by
  /// the fuzz/chaos tools (`%llu` of a raw rng draw) would fail to round-trip
  /// through it.  Rejects (returns the default for) empty strings, any sign
  /// character, non-digit trailers, and values that overflow uint64.
  [[nodiscard]] std::uint64_t get_u64(std::string_view name,
                                      std::uint64_t default_value) const;
  [[nodiscard]] double get_double(std::string_view name, double default_value) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool default_value) const;

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  [[nodiscard]] const std::vector<std::string>& errors() const noexcept {
    return errors_;
  }
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  struct Flag {
    std::string name;
    std::string value;  // empty for bare boolean flags
    bool has_value = false;
  };
  std::string program_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
};

}  // namespace snappif::util
