// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component of the simulator (daemons, fault injectors,
// workload generators) draws from an explicitly seeded Rng so that any run can
// be reproduced from its seed.  We implement xoshiro256** (Blackman/Vigna)
// seeded through SplitMix64, the combination recommended by the authors; both
// are tiny, fast, and have no global state, unlike std::mt19937 whose seeding
// via a single u32 is notoriously weak.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace snappif::util {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used standalone for hashing and for seeding xoshiro.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit constexpr Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
    // xoshiro must not start at the all-zero state; splitmix64 of any seed
    // cannot produce four zero words, but guard against logic rot.
    SNAPPIF_ASSERT((state_[0] | state_[1] | state_[2] | state_[3]) != 0);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  constexpr result_type operator()() noexcept {
    const std::uint64_t s1 = state_[1];
    const std::uint64_t result = rotl(s1 * 5, 7) * 9;
    const std::uint64_t t = s1 << 17;
    state_[2] ^= state_[0];
    state_[3] ^= s1;
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection method (no modulo bias).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    SNAPPIF_ASSERT(bound > 0);
    // 128-bit multiply; rejection loop runs < 2 iterations in expectation.
    while (true) {
      const std::uint64_t x = (*this)();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    SNAPPIF_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range.
    if (span == 0) {
      return static_cast<std::int64_t>((*this)());
    }
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p` of returning true.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Uniformly picks one element of a non-empty span.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) noexcept {
    SNAPPIF_ASSERT(!items.empty());
    return items[below(items.size())];
  }

  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& items) noexcept {
    return pick(std::span<const T>(items));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = below(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    shuffle(std::span<T>(items));
  }

  /// Derives an independent child generator; useful to give each component
  /// of an experiment its own stream while keeping one master seed.
  [[nodiscard]] Rng fork() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Stable 64-bit hash combiner (for configuration hashing in model checking).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t h,
                                                   std::uint64_t v) noexcept {
  std::uint64_t s = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  return splitmix64(s);
}

}  // namespace snappif::util
