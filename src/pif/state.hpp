// Per-processor state of the snap-stabilizing PIF protocol (Section 3).
//
// Every processor p maintains:
//   Pif_p   in {B, F, C} — broadcast / feedback / cleaning ("ready") phase
//   Fok_p   boolean      — the feedback-authorization wave flag
//   Count_p in [1, N']   — size estimate of the broadcast subtree under p
//   L_p     — level: 0 constant at the root, in [1, L_max] otherwise
//   Par_p   — parent in the dynamically built broadcast tree: a neighbor id
//             for p != r; the constant "bottom" at the root
#pragma once

#include <cstdint>

#include "sim/types.hpp"
#include "util/rng.hpp"

namespace snappif::pif {

/// Phase values of the Pif variable, in the paper's order.
enum class Phase : std::uint8_t { kB = 0, kF = 1, kC = 2 };

[[nodiscard]] constexpr char phase_char(Phase ph) noexcept {
  switch (ph) {
    case Phase::kB:
      return 'B';
    case Phase::kF:
      return 'F';
    case Phase::kC:
      return 'C';
  }
  return '?';
}

/// The root's Par constant (the paper's ⊥).
inline constexpr sim::ProcessorId kNoParent = 0xffffffffU;

struct State {
  Phase pif = Phase::kC;
  bool fok = false;
  std::uint32_t count = 1;
  std::uint32_t level = 0;
  sim::ProcessorId parent = kNoParent;

  [[nodiscard]] bool operator==(const State&) const noexcept = default;

  [[nodiscard]] std::uint64_t hash() const noexcept {
    std::uint64_t h = static_cast<std::uint64_t>(pif);
    h = util::hash_combine(h, fok ? 1 : 0);
    h = util::hash_combine(h, count);
    h = util::hash_combine(h, level);
    h = util::hash_combine(h, parent);
    return h;
  }
};

}  // namespace snappif::pif
