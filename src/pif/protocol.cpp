#include "pif/protocol.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace snappif::pif {

std::string_view action_label(sim::ActionId a) {
  switch (a) {
    case kBAction:
      return "B-action";
    case kFokAction:
      return "Fok-action";
    case kFAction:
      return "F-action";
    case kCAction:
      return "C-action";
    case kCountAction:
      return "Count-action";
    case kBCorrection:
      return "B-correction";
    case kFCorrection:
      return "F-correction";
    default:
      return "?";
  }
}

PifProtocol::PifProtocol(const graph::Graph& g, Params params)
    : graph_(&g), params_(params) {
  SNAPPIF_ASSERT_MSG(params_.n == g.n(), "Params.n must equal the graph order");
  SNAPPIF_ASSERT_MSG(params_.n_upper >= params_.n, "N' must be an upper bound of N");
  SNAPPIF_ASSERT_MSG(params_.n <= 1 || params_.l_max >= params_.n - 1,
                     "L_max must be >= N-1");
  SNAPPIF_ASSERT(params_.root < g.n());
}

State PifProtocol::initial_state(sim::ProcessorId p) const {
  State s;
  s.pif = Phase::kC;
  s.fok = false;
  s.count = 1;
  if (is_root(p)) {
    s.level = 0;
    s.parent = kNoParent;
  } else {
    s.level = 1;
    SNAPPIF_ASSERT_MSG(g().degree(p) > 0, "network must be connected");
    s.parent = g().neighbors(p)[0];
  }
  return s;
}

State PifProtocol::random_state(sim::ProcessorId p, util::Rng& rng) const {
  State s;
  switch (rng.below(3)) {
    case 0:
      s.pif = Phase::kB;
      break;
    case 1:
      s.pif = Phase::kF;
      break;
    default:
      s.pif = Phase::kC;
      break;
  }
  s.fok = rng.chance(0.5);
  s.count = 1 + static_cast<std::uint32_t>(rng.below(params_.n_upper));
  if (is_root(p)) {
    s.level = 0;
    s.parent = kNoParent;
  } else {
    s.level = 1 + static_cast<std::uint32_t>(rng.below(params_.l_max));
    const auto nbrs = g().neighbors(p);
    SNAPPIF_ASSERT(!nbrs.empty());
    s.parent = nbrs[rng.below(nbrs.size())];
  }
  return s;
}

std::vector<State> PifProtocol::all_states(sim::ProcessorId p) const {
  std::vector<State> out;
  const bool root = is_root(p);
  for (Phase pif : {Phase::kB, Phase::kF, Phase::kC}) {
    for (int fok = 0; fok < 2; ++fok) {
      for (std::uint32_t count = 1; count <= params_.n_upper; ++count) {
        if (root) {
          State s;
          s.pif = pif;
          s.fok = fok != 0;
          s.count = count;
          s.level = 0;
          s.parent = kNoParent;
          out.push_back(s);
          continue;
        }
        for (std::uint32_t level = 1; level <= params_.l_max; ++level) {
          for (sim::ProcessorId parent : g().neighbors(p)) {
            State s;
            s.pif = pif;
            s.fok = fok != 0;
            s.count = count;
            s.level = level;
            s.parent = parent;
            out.push_back(s);
          }
        }
      }
    }
  }
  return out;
}

// --- Macros ------------------------------------------------------------------

bool PifProtocol::in_sum_set(const Config& c, sim::ProcessorId p,
                             sim::ProcessorId q) const {
  const State& sp = c.state(p);
  const State& sq = c.state(q);
  // Sum_Set_p = { q in Neig_p :: Pif_q = B  /\  Par_q = p  /\  L_q = L_p + 1
  //               /\ ¬Fok_q }.
  // The conference text prints the last conjunct as ¬Fok_p (the set owner's
  // flag); DESIGN.md §2 item 1 explains the repair.  The literal reading is
  // available for the negative tests.
  const bool fok_filter =
      params_.literal_sumset_fok_owner ? !sp.fok : !sq.fok;
  return sq.pif == Phase::kB && sq.parent == p && sq.level == sp.level + 1 &&
         fok_filter;
}

std::uint64_t PifProtocol::sum(const Config& c, sim::ProcessorId p) const {
  std::uint64_t total = 1;
  for (sim::ProcessorId q : c.neighbors(p)) {
    if (in_sum_set(c, p, q)) {
      total += c.state(q).count;
    }
  }
  return total;
}

std::vector<sim::ProcessorId> PifProtocol::pre_potential(const Config& c,
                                                         sim::ProcessorId p) const {
  // Pre_Potential_p = { q in Neig_p :: Pif_q = B  AND  Par_q != p
  //                      AND  L_q < L_max  AND  ¬Fok_q }.
  // Repair (DESIGN.md §2 item 4): the printed ¬Fok_q conjunct is dropped.
  // With it, a processor stuck in phase C whose stale Par points at a
  // neighbor that is broadcasting with Fok raised can neither join the tree
  // (its only candidates are Fok'd) nor release that neighbor's BLeaf, and
  // the whole network deadlocks before the root ever broadcasts — the
  // exhaustive model checker produces the witness on a 3-processor path.
  // Allowing joins of Fok'd broadcasters is safe: in a root-initiated cycle
  // Fok_r rises only after Count_r = N, i.e. after every processor already
  // joined, so the relaxation is only ever exercised while recovering from
  // corrupted initial configurations.
  std::vector<sim::ProcessorId> out;
  for (sim::ProcessorId q : c.neighbors(p)) {
    const State& sq = c.state(q);
    if (sq.pif == Phase::kB && sq.parent != p && sq.level < params_.l_max &&
        (!params_.literal_prepotential_fok || !sq.fok)) {
      out.push_back(q);
    }
  }
  return out;
}

std::vector<sim::ProcessorId> PifProtocol::potential(const Config& c,
                                                     sim::ProcessorId p) const {
  // Potential_p = { q in Pre_Potential_p :: forall u in Pre_Potential_p,
  //                 L_u >= L_q }  (minimum-level members).
  std::vector<sim::ProcessorId> pre = pre_potential(c, p);
  if (!params_.min_level_potential || pre.empty()) {
    return pre;  // E7 ablation: no minimum-level restriction
  }
  std::uint32_t min_level = c.state(pre.front()).level;
  for (sim::ProcessorId q : pre) {
    min_level = std::min(min_level, c.state(q).level);
  }
  std::vector<sim::ProcessorId> out;
  for (sim::ProcessorId q : pre) {
    if (c.state(q).level == min_level) {
      out.push_back(q);
    }
  }
  return out;
}

// --- Predicates ----------------------------------------------------------------

bool PifProtocol::good_fok(const Config& c, sim::ProcessorId p) const {
  const State& sp = c.state(p);
  if (is_root(p)) {
    if (params_.literal_root_goodfok) {
      // Literal conference text: (Pif_r = B) => (Fok_r = (Sum_r = N)).
      if (sp.pif != Phase::kB) {
        return true;
      }
      return sp.fok == (sum(c, p) == params_.n);
    }
    // Repaired (DESIGN.md §2 item 2): the equivalence on *Count* rather than
    // Sum — Fok_r = (Count_r = N).  Both root actions establish it atomically
    // (B-action: Count=1, Fok=(1=N); Count-action: Count=Sum, Fok=(Sum=N)),
    // nothing invalidates it during a normal cycle (Count freezes once Fok
    // rises), and unlike the printed Sum version it stays true across the
    // feedback phase.  The equivalence direction matters: an arbitrary
    // initial configuration with Fok_r=false and Count_r=N would otherwise
    // deadlock the whole network (no guard fires; found by the exhaustive
    // model checker in tests/pif/test_model_check.cpp).
    if (sp.pif != Phase::kB) {
      return true;
    }
    if (params_.ablate_count_wait) {
      return true;  // E13: no constraint ties Fok_r to the count
    }
    return sp.fok == (sp.count == params_.n);
  }
  // Algorithm 2:
  //   ((Pif_p = B) => ((Fok_p != Fok_Par_p) => ¬Fok_p))
  //   /\ ((Pif_p = F) => ((Pif_Par_p = B) => Fok_Par_p))
  const State& spar = c.state(sp.parent);
  if (sp.pif == Phase::kB) {
    if (sp.fok != spar.fok && sp.fok) {
      return false;
    }
  }
  if (sp.pif == Phase::kF) {
    if (spar.pif == Phase::kB && !spar.fok) {
      return false;
    }
  }
  return true;
}

bool PifProtocol::good_pif(const Config& c, sim::ProcessorId p) const {
  SNAPPIF_ASSERT(!is_root(p));
  const State& sp = c.state(p);
  if (sp.pif == Phase::kC) {
    return true;
  }
  const State& spar = c.state(sp.parent);
  // (Pif_Par_p != Pif_p) => (Pif_Par_p = B)
  return spar.pif == sp.pif || spar.pif == Phase::kB;
}

bool PifProtocol::good_level(const Config& c, sim::ProcessorId p) const {
  SNAPPIF_ASSERT(!is_root(p));
  const State& sp = c.state(p);
  if (sp.pif == Phase::kC) {
    return true;
  }
  return sp.level == c.state(sp.parent).level + 1;
}

bool PifProtocol::good_count(const Config& c, sim::ProcessorId p) const {
  const State& sp = c.state(p);
  if (sp.pif != Phase::kB || sp.fok) {
    return true;
  }
  return sp.count <= sum(c, p);
}

bool PifProtocol::normal(const Config& c, sim::ProcessorId p) const {
  if (is_root(p)) {
    return good_fok(c, p) && good_count(c, p);
  }
  return good_pif(c, p) && good_level(c, p) && good_fok(c, p) &&
         good_count(c, p);
}

bool PifProtocol::leaf(const Config& c, sim::ProcessorId p) const {
  // Leaf(p) = forall q in Neig_p :: (Pif_q != C) => (Par_q != p)
  for (sim::ProcessorId q : c.neighbors(p)) {
    const State& sq = c.state(q);
    if (sq.pif != Phase::kC && sq.parent == p) {
      return false;
    }
  }
  return true;
}

bool PifProtocol::b_leaf(const Config& c, sim::ProcessorId p) const {
  // BLeaf(p) = (Pif_p = B) => (forall q in Neig_p :: (Par_q = p) => (Pif_q = F))
  if (c.state(p).pif != Phase::kB) {
    return true;
  }
  for (sim::ProcessorId q : c.neighbors(p)) {
    const State& sq = c.state(q);
    if (sq.parent == p && sq.pif != Phase::kF) {
      return false;
    }
  }
  return true;
}

bool PifProtocol::b_free(const Config& c, sim::ProcessorId p) const {
  for (sim::ProcessorId q : c.neighbors(p)) {
    if (c.state(q).pif == Phase::kB) {
      return false;
    }
  }
  return true;
}

// --- Guards --------------------------------------------------------------------

bool PifProtocol::broadcast_guard(const Config& c, sim::ProcessorId p) const {
  const State& sp = c.state(p);
  if (sp.pif != Phase::kC) {
    return false;
  }
  if (is_root(p)) {
    // Broadcast(r) = (Pif_r = C) /\ (forall q :: Pif_q = C)
    for (sim::ProcessorId q : c.neighbors(p)) {
      if (c.state(q).pif != Phase::kC) {
        return false;
      }
    }
    return true;
  }
  // Broadcast(p) = (Pif_p = C) /\ Leaf(p) /\ (Potential_p != {})
  return (params_.ablate_broadcast_leaf || leaf(c, p)) &&
         !potential(c, p).empty();
}

bool PifProtocol::change_fok_guard(const Config& c, sim::ProcessorId p) const {
  if (is_root(p)) {
    return false;  // Algorithm 1 has no Fok-action
  }
  const State& sp = c.state(p);
  return sp.pif == Phase::kB && normal(c, p) &&
         sp.fok != c.state(sp.parent).fok;
}

bool PifProtocol::feedback_guard(const Config& c, sim::ProcessorId p) const {
  const State& sp = c.state(p);
  if (sp.pif != Phase::kB || !sp.fok || !normal(c, p)) {
    return false;
  }
  if (is_root(p)) {
    // Feedback(r) = ... /\ (forall q :: Pif_q != B) /\ Fok_r
    for (sim::ProcessorId q : c.neighbors(p)) {
      if (c.state(q).pif == Phase::kB) {
        return false;
      }
    }
    return true;
  }
  // Feedback(p) = (Pif_p = B) /\ Normal(p) /\ BLeaf(p) /\ Fok_p
  return params_.ablate_feedback_bleaf || b_leaf(c, p);
}

bool PifProtocol::cleaning_guard(const Config& c, sim::ProcessorId p) const {
  const State& sp = c.state(p);
  if (sp.pif != Phase::kF) {
    return false;
  }
  if (is_root(p)) {
    // Cleaning(r) = (Pif_r = F) /\ (forall q :: Pif_q = C)
    for (sim::ProcessorId q : c.neighbors(p)) {
      if (c.state(q).pif != Phase::kC) {
        return false;
      }
    }
    return true;
  }
  // Cleaning(p) = (Pif_p = F) /\ Normal(p) /\ Leaf(p) /\ BFree(p)
  return normal(c, p) && leaf(c, p) && b_free(c, p);
}

bool PifProtocol::new_count_guard(const Config& c, sim::ProcessorId p) const {
  const State& sp = c.state(p);
  if (sp.pif != Phase::kB || sp.fok || !normal(c, p)) {
    return false;
  }
  return sp.count < sum(c, p);
}

bool PifProtocol::b_correction_guard(const Config& c, sim::ProcessorId p) const {
  if (is_root(p)) {
    // Algorithm 1: B-correction :: ¬Normal(r).  (Normal(r) is vacuous unless
    // Pif_r = B, so this only fires in the broadcast phase.)
    return !normal(c, p);
  }
  // AbnormalB(p) = ¬Normal(p) /\ (Pif_p = B)
  return c.state(p).pif == Phase::kB && !normal(c, p);
}

bool PifProtocol::f_correction_guard(const Config& c, sim::ProcessorId p) const {
  if (is_root(p)) {
    return false;  // Algorithm 1 has no F-correction
  }
  // AbnormalF(p) = ¬Normal(p) /\ (Pif_p = F)
  return c.state(p).pif == Phase::kF && !normal(c, p);
}

bool PifProtocol::enabled(const Config& c, sim::ProcessorId p,
                          sim::ActionId a) const {
  switch (a) {
    case kBAction:
      return broadcast_guard(c, p);
    case kFokAction:
      return change_fok_guard(c, p);
    case kFAction:
      return feedback_guard(c, p);
    case kCAction:
      return cleaning_guard(c, p);
    case kCountAction:
      return new_count_guard(c, p);
    case kBCorrection:
      return b_correction_guard(c, p);
    case kFCorrection:
      return f_correction_guard(c, p);
    default:
      return false;
  }
}

sim::ActionMask PifProtocol::enabled_mask(const Config& c,
                                          sim::ProcessorId p) const {
  return GuardEval(*this, c, p).mask;
}

GuardEval::GuardEval(const PifProtocol& proto, const sim::Configuration<State>& c,
                     sim::ProcessorId p) {
  const Params& params = proto.params();
  const State& sp = c.state(p);
  root = proto.is_root(p);

  // The single neighborhood walk.  Each flag mirrors one reference macro or
  // predicate clause in the methods above; the differential test asserts the
  // correspondence field by field.
  bool children_all_f = true;  // BLeaf's quantifier (meaningful when Pif_p = B)
  for (sim::ProcessorId q : c.neighbors(p)) {
    const State& sq = c.state(q);
    if (sq.pif != Phase::kC) {
      all_neighbors_c = false;
      if (sq.parent == p) {
        leaf = false;
      }
    }
    if (sq.pif == Phase::kB) {
      b_free = false;
      // Pre_Potential membership (repair: the printed ¬Fok_q is dropped
      // unless the literal reading is requested; see pre_potential()).
      if (sq.parent != p && sq.level < params.l_max &&
          (!params.literal_prepotential_fok || !sq.fok)) {
        has_potential = true;
      }
      // Sum_Set membership (repair: ¬Fok_q, not the owner's ¬Fok_p, unless
      // the literal reading is requested; see in_sum_set()).
      if (sq.parent == p && sq.level == sp.level + 1 &&
          (params.literal_sumset_fok_owner ? !sp.fok : !sq.fok)) {
        sum += sq.count;
      }
    }
    if (sq.parent == p && sq.pif != Phase::kF) {
      children_all_f = false;
    }
  }
  b_leaf = sp.pif != Phase::kB || children_all_f;

  // Predicates from the shared intermediates (plus O(1) parent reads).
  if (root) {
    if (sp.pif != Phase::kB) {
      good_fok = true;
    } else if (params.literal_root_goodfok) {
      good_fok = sp.fok == (sum == params.n);
    } else if (params.ablate_count_wait) {
      good_fok = true;
    } else {
      good_fok = sp.fok == (sp.count == params.n);
    }
  } else {
    const State& spar = c.state(sp.parent);
    good_fok = !(sp.pif == Phase::kB && sp.fok && sp.fok != spar.fok) &&
               !(sp.pif == Phase::kF && spar.pif == Phase::kB && !spar.fok);
    good_pif = sp.pif == Phase::kC || spar.pif == sp.pif || spar.pif == Phase::kB;
    good_level = sp.pif == Phase::kC || sp.level == spar.level + 1;
  }
  good_count = sp.pif != Phase::kB || sp.fok || sp.count <= sum;
  normal = root ? good_fok && good_count
                : good_pif && good_level && good_fok && good_count;

  // The seven guards.
  bool guard[kNumActions] = {};
  if (root) {
    guard[kBAction] = sp.pif == Phase::kC && all_neighbors_c;
    guard[kFAction] = sp.pif == Phase::kB && sp.fok && normal && b_free;
    guard[kCAction] = sp.pif == Phase::kF && all_neighbors_c;
    guard[kBCorrection] = !normal;
  } else {
    guard[kBAction] = sp.pif == Phase::kC &&
                      (params.ablate_broadcast_leaf || leaf) && has_potential;
    guard[kFokAction] = sp.pif == Phase::kB && normal &&
                        sp.fok != c.state(sp.parent).fok;
    guard[kFAction] = sp.pif == Phase::kB && sp.fok && normal &&
                      (params.ablate_feedback_bleaf || b_leaf);
    guard[kCAction] = sp.pif == Phase::kF && normal && leaf && b_free;
    guard[kBCorrection] = sp.pif == Phase::kB && !normal;
    guard[kFCorrection] = sp.pif == Phase::kF && !normal;
  }
  guard[kCountAction] = sp.pif == Phase::kB && !sp.fok && normal && sp.count < sum;
  for (sim::ActionId a = 0; a < kNumActions; ++a) {
    mask |= static_cast<sim::ActionMask>(guard[a] ? 1 : 0) << a;
  }
}

State PifProtocol::apply(const Config& c, sim::ProcessorId p,
                         sim::ActionId a) const {
  State next = c.state(p);
  switch (a) {
    case kBAction: {
      if (is_root(p)) {
        // B-action(r) :: Pif := B; Count := 1; Fok := (1 = N)
        next.pif = Phase::kB;
        next.count = 1;
        next.fok = (params_.n == 1);
      } else {
        // B-action(p) :: Par := min(Potential); L := L_Par + 1; Count := 1;
        //                Fok := false; Pif := B
        // min over >_p of the (possibly level-restricted) Pre_Potential,
        // computed in one allocation-free pass: neighbor lists are sorted
        // ascending = the local order >_p, so the first neighbor holding the
        // minimal level wins (strict < keeps the earliest).
        sim::ProcessorId chosen = kNoParent;
        std::uint32_t chosen_level = 0;
        for (sim::ProcessorId q : c.neighbors(p)) {
          const State& sq = c.state(q);
          if (sq.pif != Phase::kB || sq.parent == p ||
              sq.level >= params_.l_max ||
              (params_.literal_prepotential_fok && sq.fok)) {
            continue;
          }
          if (chosen == kNoParent) {
            chosen = q;
            chosen_level = sq.level;
            if (!params_.min_level_potential) {
              break;  // Pre_Potential's own minimum: the first qualifier
            }
          } else if (sq.level < chosen_level) {
            chosen = q;
            chosen_level = sq.level;
          }
        }
        SNAPPIF_ASSERT_MSG(chosen != kNoParent,
                           "B-action applied with empty Potential");
        next.parent = chosen;
        next.level = c.state(next.parent).level + 1;
        next.count = 1;
        next.fok = false;
        next.pif = Phase::kB;
      }
      break;
    }
    case kFokAction:
      // Fok-action(p) :: Fok := true
      next.fok = true;
      break;
    case kFAction:
      // F-action :: Pif := F
      next.pif = Phase::kF;
      break;
    case kCAction:
      // C-action :: Pif := C
      next.pif = Phase::kC;
      break;
    case kCountAction: {
      // Count-action :: Count := Sum  (root also: Fok := (Sum = N)).
      // The Count domain is [1, N']; an arbitrary initial configuration can
      // transiently make Sum exceed N' (bogus descendants), in which case
      // the stored value saturates at the domain ceiling.
      const std::uint64_t s = sum(c, p);
      next.count = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(s, params_.n_upper));
      if (is_root(p)) {
        next.fok = params_.ablate_count_wait || (s == params_.n);
      }
      break;
    }
    case kBCorrection:
      // Algorithm 1: Pif := C.  Algorithm 2: Pif := F.
      next.pif = is_root(p) ? Phase::kC : Phase::kF;
      break;
    case kFCorrection:
      // F-correction(p) :: Pif := C
      next.pif = Phase::kC;
      break;
    default:
      SNAPPIF_ASSERT_MSG(false, "unknown action id");
  }
  return next;
}

}  // namespace snappif::pif
