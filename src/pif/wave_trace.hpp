// Causal wave tracing for Simulator<PifProtocol> runs.
//
// WaveTraceProbe turns a run into the span tree of src/obs/trace.hpp:
//
//   * a WAVE span per PIF cycle — minted at the root's B-action (the paper's
//     cycle start, Definition 2) and closed at the root's F-action;
//   * a PHASE span per processor per Pif-phase residency ("B"/"F"/"C"
//     tracks, tid = processor), parented to the wave in flight;
//   * a CORRECTION burst span — a maximal run of rounds containing B-/F-
//     correction executions (the abnormal-tree digestion of Theorems 1-3),
//     closed at the first correction-free round boundary.
//
// Timekeeping: the probe keeps its OWN monotone tick (one per step) and
// round counters.  The engine's step/round counters restart on fault
// injection (set_state re-attach) and simulator rebuilds (link churn), but a
// single probe instance survives both — re-attached by the campaign engine —
// so span timestamps stay monotone across the whole campaign.
//
// Per-wave aggregates land in the optional Registry:
//   pif.wave.count                waves closed
//   pif.wave.latency_rounds       histogram, rounds from B-action to F-action
//   pif.wave.corrections          histogram, correction executions per wave
// (the SLO substrate of ROADMAP item 2: waves/s and p99 cycle latency).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pif/protocol.hpp"
#include "sim/probe.hpp"

namespace snappif::pif {

class WaveTraceProbe final : public sim::IProbe<PifProtocol> {
 public:
  using Config = sim::Configuration<State>;

  /// One wave as seen by the tracer (the `--waves` table rows).
  struct WaveSample {
    std::uint64_t index = 0;  // 1-based wave number
    obs::SpanId span = 0;
    std::uint64_t begin_round = 0;  // probe clock (monotone across faults)
    std::uint64_t end_round = 0;
    std::uint64_t corrections = 0;  // correction executions while in flight
    bool closed = false;
  };

  /// `root` is fixed for the lifetime of the probe (campaigns rebuild the
  /// simulator but never move the root).  `registry` may be null.
  WaveTraceProbe(sim::ProcessorId root, obs::SpanCollector& spans,
                 obs::Registry* registry = nullptr)
      : root_(root), spans_(&spans), reg_(registry) {
    if (reg_ != nullptr) {
      wave_count_ = &reg_->counter("pif.wave.count");
      latency_hist_ = &reg_->histogram("pif.wave.latency_rounds", 64, 4.0);
      corrections_hist_ = &reg_->histogram("pif.wave.corrections", 64, 1.0);
    }
  }

  [[nodiscard]] const std::vector<WaveSample>& waves() const noexcept {
    return waves_;
  }
  /// Wave span currently in flight (0 between waves) — link tracers use it
  /// to attribute frame spans.
  [[nodiscard]] obs::SpanId current_wave() const noexcept {
    return wave_span_;
  }
  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }

  void on_attach(const Config& config) override {
    // Re-attach happens after fault injection / simulator rebuild: the
    // configuration may have been rewritten wholesale, so close every open
    // phase span and restart the residency tracks from the new states.
    close_phase_spans();
    const std::size_t n = config.states().size();
    last_phase_.assign(n, Phase::kC);
    phase_span_.assign(n, 0);
    for (std::size_t p = 0; p < n; ++p) {
      last_phase_[p] = config.states()[p].pif;
      open_phase_span(static_cast<sim::ProcessorId>(p), last_phase_[p]);
    }
  }

  void on_step_begin(const sim::StepEvent& /*ev*/,
                     const Config& /*config*/) override {
    ++ticks_;
  }

  void on_apply(sim::ProcessorId p, sim::ActionId a, const Config& /*before*/,
                const State& after) override {
    // Root actions first, so the B-action's own C->B transition nests inside
    // the wave it just opened.
    if (p == root_ && a == kBAction) {
      open_wave();
    }
    if (a == kBCorrection || a == kFCorrection) {
      on_correction();
    }
    if (p < last_phase_.size() && after.pif != last_phase_[p]) {
      spans_->close(phase_span_[p], ticks_);
      last_phase_[p] = after.pif;
      open_phase_span(p, after.pif);
    }
    if (p == root_ && a == kFAction && wave_span_ != 0) {
      close_wave();
    }
  }

  void on_round_complete(std::uint64_t /*rounds*/, const sim::StepEvent& /*ev*/,
                         const Config& /*config*/) override {
    ++rounds_;
    // A burst span ends at the first correction-free round boundary.
    if (burst_span_ != 0 && !round_had_correction_) {
      spans_->close(burst_span_, ticks_);
      burst_span_ = 0;
    }
    round_had_correction_ = false;
  }

  /// Closes every open span at the current tick.  Call once when the run
  /// ends (before exporting); a wave still in flight stays marked unclosed
  /// in its WaveSample.
  void finish() {
    close_phase_spans();
    if (burst_span_ != 0) {
      spans_->close(burst_span_, ticks_);
      burst_span_ = 0;
    }
    if (wave_span_ != 0) {
      spans_->close(wave_span_, ticks_);
      if (!waves_.empty()) {
        waves_.back().end_round = rounds_;
      }
      wave_span_ = 0;
    }
  }

 private:
  void open_wave() {
    if (wave_span_ != 0) {
      // A second root B-action without a closing F-action means the previous
      // wave was aborted by a correction: close its span where it died.
      spans_->close(wave_span_, ticks_);
      if (!waves_.empty()) {
        waves_.back().end_round = rounds_;
      }
    }
    wave_span_ = spans_->open(obs::SpanKind::kWave, ticks_, root_);
    WaveSample w;
    w.index = waves_.size() + 1;
    w.span = wave_span_;
    w.begin_round = rounds_;
    waves_.push_back(w);
  }

  void close_wave() {
    spans_->close(wave_span_, ticks_);
    wave_span_ = 0;
    WaveSample& w = waves_.back();
    w.end_round = rounds_;
    w.closed = true;
    if (reg_ != nullptr) {
      wave_count_->inc();
      latency_hist_->add(static_cast<double>(w.end_round - w.begin_round));
      corrections_hist_->add(static_cast<double>(w.corrections));
    }
  }

  void on_correction() {
    round_had_correction_ = true;
    if (!waves_.empty() && wave_span_ != 0) {
      ++waves_.back().corrections;
    }
    if (burst_span_ == 0) {
      burst_span_ = spans_->open(obs::SpanKind::kCorrectionBurst, ticks_,
                                 /*tid=*/0, wave_span_, wave_span_, "burst");
    }
  }

  void open_phase_span(sim::ProcessorId p, Phase ph) {
    const char label[2] = {phase_char(ph), '\0'};
    phase_span_[p] = spans_->open(obs::SpanKind::kPhase, ticks_, p, wave_span_,
                                  wave_span_, label);
  }

  void close_phase_spans() {
    for (const obs::SpanId id : phase_span_) {
      spans_->close(id, ticks_);
    }
    phase_span_.assign(phase_span_.size(), 0);
  }

  sim::ProcessorId root_;
  obs::SpanCollector* spans_;
  obs::Registry* reg_;
  obs::Counter* wave_count_ = nullptr;
  util::Histogram* latency_hist_ = nullptr;
  util::Histogram* corrections_hist_ = nullptr;

  std::vector<Phase> last_phase_;
  std::vector<obs::SpanId> phase_span_;
  std::vector<WaveSample> waves_;
  obs::SpanId wave_span_ = 0;
  obs::SpanId burst_span_ = 0;
  bool round_had_correction_ = false;
  std::uint64_t ticks_ = 0;
  std::uint64_t rounds_ = 0;
};

}  // namespace snappif::pif
