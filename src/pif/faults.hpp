// Structured adversarial corruptions of PIF configurations.
//
// Uniform randomization (Simulator::randomize) produces states that mostly
// violate the local-checking predicates and are corrected within a round or
// two.  The corruptions here are *crafted to look locally consistent* — fake
// trees with coherent levels and counts, stray Fok waves, premature feedback
// phases — so they survive as long as the theory allows and exercise the
// correction machinery's worst cases (Theorems 1-3) and the snap property's
// hardest inputs (a root starting a broadcast while impostor trees occupy
// the network).
#pragma once

#include <cstdint>

#include "pif/protocol.hpp"
#include "sim/engine.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace snappif::pif {

using PifSimulator = sim::Simulator<PifProtocol>;

/// Plants a locally consistent fake broadcast tree: a random non-root seed
/// gets Pif=B at a random level, and a BFS region around it joins with
/// levels increasing by one and subtree counts consistent with GoodCount.
/// Processors outside the region are left untouched.
void plant_fake_tree(PifSimulator& sim, util::Rng& rng);

/// Sets Pif=F with plausible parent/level on a random subset (premature
/// feedback wave).
void plant_stray_feedback(PifSimulator& sim, util::Rng& rng, double fraction);

/// Raises Fok on a random subset of B-phase processors (premature Fok wave).
void plant_stray_fok(PifSimulator& sim, util::Rng& rng, double fraction);

/// Saturates Count at N' on a random subset (count inflation).
void inflate_counts(PifSimulator& sim, util::Rng& rng, double fraction);

/// The kitchen sink: fake trees + stray feedback + stray Fok + inflated
/// counts, composed from `rng`.  Produces the nastiest initial
/// configurations used by E1/E2/E4.
void adversarial_corruption(PifSimulator& sim, util::Rng& rng);

/// Enumerated corruption recipes for sweep tables.
enum class CorruptionKind {
  kUniformRandom,    // every variable uniform over its domain
  kFakeTree,
  kStrayFeedback,
  kStrayFok,
  kInflatedCounts,
  kAdversarialMix,
};

[[nodiscard]] std::string_view corruption_name(CorruptionKind kind);
void apply_corruption(PifSimulator& sim, CorruptionKind kind, util::Rng& rng);
/// Engine-agnostic overload: identical recipes (same rng draw sequence)
/// against any IEngine implementation, so SoA-engine runs corrupt
/// identically to mask-engine runs.
void apply_corruption(sim::IEngine<PifProtocol>& engine, CorruptionKind kind,
                      util::Rng& rng);
[[nodiscard]] std::span<const CorruptionKind> all_corruption_kinds();

}  // namespace snappif::pif
