#include "pif/soa_engine.hpp"

#include <algorithm>
#include <typeinfo>
#include <bit>
#include <utility>

#include "util/assert.hpp"

namespace snappif::pif {

SoaEngine::SoaEngine(PifProtocol protocol, const graph::Graph& g,
                     std::uint64_t seed)
    : protocol_(std::move(protocol)),
      config_(g, protocol_.initial_state(0)),
      csr_(g),
      kernel_(protocol_, csr_),
      rng_(seed) {
  for (sim::ProcessorId p = 0; p < config_.n(); ++p) {
    config_.state(p) = protocol_.initial_state(p);
  }
  soa_.load(config_);
  rebuild_enabled();
}

// (other.sync_mirror(), other.config_): the source's mirror must be
// materialized before it is copied — the comma expression sequences that
// before the copy-construction of config_.
SoaEngine::SoaEngine(const SoaEngine& other)
    : protocol_(other.protocol_),
      config_((other.sync_mirror(), other.config_)),
      csr_(other.csr_),
      kernel_(protocol_, csr_),
      soa_(other.soa_),
      rng_(other.rng_),
      policy_(other.policy_),
      score_(other.score_),
      masks_(other.masks_),
      enabled_list_(other.enabled_list_),
      enabled_pos_(other.enabled_pos_),
      dirty_(other.dirty_),
      pending_(other.pending_),
      pending_count_(other.pending_count_),
      rounds_count_(other.rounds_count_),
      steps_(other.steps_),
      action_counts_(other.action_counts_) {
  // Preserve the buffer invariants a fresh rebuild would establish.
  const sim::ProcessorId n = config_.n();
  mirror_stale_.assign(n, 0);
  dirty_list_.resize(static_cast<std::size_t>(n) + 1);
  dense_masks_.resize(n);
  enabled_list_.reserve(n);
  mirror_list_.reserve(n);
  selected_.reserve(n);
  staged_.reserve(n);
  choices_.reserve(n);
}

SoaEngine& SoaEngine::operator=(const SoaEngine& other) {
  if (this == &other) {
    return *this;
  }
  other.sync_mirror();
  protocol_ = other.protocol_;
  config_ = other.config_;
  csr_ = other.csr_;
  kernel_ = BatchedGuards(protocol_, csr_);
  soa_ = other.soa_;
  rng_ = other.rng_;
  policy_ = other.policy_;
  score_ = other.score_;
  masks_ = other.masks_;
  enabled_list_ = other.enabled_list_;
  enabled_pos_ = other.enabled_pos_;
  dirty_ = other.dirty_;
  pending_ = other.pending_;
  pending_count_ = other.pending_count_;
  rounds_count_ = other.rounds_count_;
  steps_ = other.steps_;
  action_counts_ = other.action_counts_;
  const sim::ProcessorId n = config_.n();
  mirror_stale_.assign(n, 0);
  mirror_list_.clear();
  dirty_list_.resize(static_cast<std::size_t>(n) + 1);
  dirty_len_ = 0;
  dense_masks_.resize(n);
  return *this;
}

void SoaEngine::set_state(sim::ProcessorId p, const State& s) {
  config_.state(p) = s;
  soa_.set(p, s);
  mark_dirty_around(p);
  flush_dirty();
  reset_rounds();
  notify_attach();
}

void SoaEngine::reset_to_initial() {
  for (sim::ProcessorId p = 0; p < config_.n(); ++p) {
    config_.state(p) = protocol_.initial_state(p);
  }
  soa_.load(config_);
  rebuild_enabled();
  steps_ = 0;
  action_counts_.assign(protocol_.num_actions(), 0);
  notify_attach();
}

void SoaEngine::randomize(util::Rng& rng) {
  for (sim::ProcessorId p = 0; p < config_.n(); ++p) {
    config_.state(p) = protocol_.random_state(p, rng);
  }
  soa_.load(config_);
  rebuild_enabled();
  notify_attach();
}

void SoaEngine::add_probe(Probe* probe) {
  SNAPPIF_ASSERT(probe != nullptr);
  probes_.push_back(probe);
  sync_mirror();
  probe->on_attach(config_);
}

void SoaEngine::remove_probe(Probe* probe) {
  std::erase(probes_, probe);
}

void SoaEngine::set_apply_hook(ApplyHook hook) {
  if (hook_probe_ != nullptr) {
    remove_probe(hook_probe_.get());
    hook_probe_.reset();
  }
  if (hook) {
    hook_probe_ =
        std::make_unique<sim::FunctionProbe<PifProtocol>>(std::move(hook));
    add_probe(hook_probe_.get());
  }
}

sim::ActionId SoaEngine::choose_action(sim::ProcessorId p) {
  const sim::ActionMask mask = masks_[p];
  SNAPPIF_ASSERT_MSG(mask != 0, "selected processor has no enabled action");
  if (policy_ == sim::ActionPolicy::kFirstEnabled) {
    return sim::first_action(mask);
  }
  const auto count = static_cast<std::uint32_t>(std::popcount(mask));
  return sim::nth_action(mask, static_cast<std::uint32_t>(rng_.below(count)));
}

bool SoaEngine::step(sim::IDaemon& daemon) {
  if (enabled_list_.empty()) {
    return false;
  }
  // Synchronous fast path: the daemon would select the whole enabled list in
  // order and draw no randomness, so skip the virtual select and the copy
  // and batch the round directly (behavior-preserving; see the header).
  // Exact-type match on purpose (and ~5x cheaper than a dynamic_cast on the
  // per-step miss path): a class derived from SynchronousDaemon may override
  // select and must go through the generic path.
  if (policy_ == sim::ActionPolicy::kFirstEnabled && probes_.empty() &&
      trace_ == nullptr && typeid(daemon) == typeid(sim::SynchronousDaemon)) {
    return synchronous_step();
  }

  sim::DaemonContext ctx;
  ctx.n = config_.n();
  ctx.step = steps_;
  if (score_) {
    sync_mirror();  // the score callback reads AoS rows during select
    ctx.score = [this](sim::ProcessorId p) { return score_(config_.state(p)); };
  }
  selected_.clear();
  daemon.select(enabled_list_, ctx, rng_, selected_);
  SNAPPIF_ASSERT_MSG(!selected_.empty(), "daemon must select a non-empty subset");

  // Phase 1: choose actions and compute new states against the pre-step
  // SoA snapshot (composite atomicity).
  staged_.clear();
  for (sim::ProcessorId p : selected_) {
    SNAPPIF_ASSERT_MSG(masks_[p] != 0, "daemon selected a disabled processor");
    const sim::ActionId a = choose_action(p);
    staged_.push_back({p, a, kernel_.apply(soa_, p, a)});
  }
  if (trace_ != nullptr) {
    sim::StepRecord rec;
    rec.step = steps_;
    rec.rounds_before = rounds_count_;
    for (const auto& s : staged_) {
      rec.choices.push_back({s.processor, s.action});
    }
    trace_->record(std::move(rec));
  }
  sim::StepEvent ev;
  if (!probes_.empty()) {
    sync_mirror();  // probes read the pre-step AoS configuration
    choices_.clear();
    for (const auto& s : staged_) {
      choices_.push_back({s.processor, s.action});
    }
    ev.step = steps_;
    ev.rounds_before = rounds_count_;
    ev.selected = selected_;
    ev.choices = choices_;
    ev.enabled_before = enabled_list_.size();
    ev.action_counts = action_counts_;
    for (Probe* probe : probes_) {
      probe->on_step_begin(ev, config_);
    }
    for (const auto& s : staged_) {
      for (Probe* probe : probes_) {
        probe->on_apply(s.processor, s.action, config_, s.next);
      }
    }
  }

  const bool round_done = commit_and_refresh();
  if (!probes_.empty()) {
    sync_mirror();  // ... and the post-step configuration
    ev.enabled_after = enabled_list_.size();
    for (Probe* probe : probes_) {
      probe->on_step_end(ev, config_);
    }
    if (round_done) {
      for (Probe* probe : probes_) {
        probe->on_round_complete(rounds_count_, ev, config_);
      }
    }
  }
  return true;
}

bool SoaEngine::synchronous_step() {
  // The whole enabled list executes; stage every apply against the pre-step
  // columns, then commit in one sweep.
  staged_.clear();
  for (sim::ProcessorId p : enabled_list_) {
    const sim::ActionId a = sim::first_action(masks_[p]);
    staged_.push_back({p, a, kernel_.apply(soa_, p, a)});
  }
  commit_and_refresh();
  return true;
}

// Phase 2 of a step, shared by both paths: commit all staged writes to the
// SoA columns, refresh enabledness around the writers with the batched
// kernel, and settle the round accounting.  Returns true iff the step
// completed a round.
bool SoaEngine::commit_and_refresh() {
  if (staged_.size() == 1) {
    // Single-writer fast path (every central-daemon step): the graph has no
    // self-loops, so {p} ∪ row(p) is duplicate-free and already in the
    // contract's insertion order — refresh straight off the CSR row and skip
    // the dirty-flag dedup machinery entirely.
    const Staged& s = staged_.front();
    const sim::ProcessorId p = s.processor;
    soa_.set(p, s.next);
    mark_mirror_stale(p);
    pending_count_ -= pending_[p];
    pending_[p] = 0;
    if (s.action < action_counts_.size()) {
      ++action_counts_[s.action];
    }
    refresh_processor(p, kernel_.mask_of(soa_, p));
    for (sim::ProcessorId q : csr_.row(p)) {
      refresh_processor(q, kernel_.mask_of(soa_, q));
    }
    ++steps_;
    if (pending_count_ != 0) {
      return false;
    }
    ++rounds_count_;
    for (sim::ProcessorId q : enabled_list_) {
      pending_[q] = 1;
    }
    pending_count_ = enabled_list_.size();
    return true;
  }
  for (auto& s : staged_) {
    const sim::ProcessorId p = s.processor;
    soa_.set(p, s.next);
    mark_mirror_stale(p);
    // Executing discharges the round obligation (RoundTracker's first
    // discharge condition), whatever enabledness becomes.
    pending_count_ -= pending_[p];
    pending_[p] = 0;
    if (s.action < action_counts_.size()) {
      ++action_counts_[s.action];
    }
  }
  for (const auto& s : staged_) {
    mark_dirty_around(s.processor);
  }
  flush_dirty();
  ++steps_;
  if (pending_count_ != 0) {
    return false;
  }
  // Round complete: the next round's obligations are the processors enabled
  // in the configuration just reached (pending_ is all-zero here — every
  // entry was discharged individually).
  ++rounds_count_;
  for (sim::ProcessorId q : enabled_list_) {
    pending_[q] = 1;
  }
  pending_count_ = enabled_list_.size();
  return true;
}

void SoaEngine::rebuild_enabled() {
  const sim::ProcessorId n = config_.n();
  masks_.assign(n, 0);
  enabled_pos_.assign(n, kNotInList);
  enabled_list_.clear();
  for (sim::ProcessorId p = 0; p < n; ++p) {
    masks_[p] = kernel_.mask_of(soa_, p);
    if (masks_[p] != 0) {
      enabled_pos_[p] = static_cast<std::uint32_t>(enabled_list_.size());
      enabled_list_.push_back(p);
    }
  }
  dirty_.assign(n, 0);
  dirty_list_.resize(static_cast<std::size_t>(n) + 1);
  dirty_len_ = 0;
  dense_masks_.resize(n);
  mirror_stale_.assign(n, 0);
  mirror_list_.clear();
  enabled_list_.reserve(n);
  mirror_list_.reserve(n);
  selected_.reserve(n);
  staged_.reserve(n);
  choices_.reserve(n);
  pending_.assign(n, 0);
  reset_rounds();
  if (action_counts_.size() != protocol_.num_actions()) {
    action_counts_.assign(protocol_.num_actions(), 0);
  }
}

void SoaEngine::reset_rounds() {
  std::fill(pending_.begin(), pending_.end(), 0);
  for (sim::ProcessorId q : enabled_list_) {
    pending_[q] = 1;
  }
  pending_count_ = enabled_list_.size();
  rounds_count_ = 0;
}

void SoaEngine::mark_dirty_around(sim::ProcessorId p) {
  // Branch-free dedup: speculatively append, then bump the length only when
  // the flag was clear.  Duplicates overwrite the slot one past the live
  // prefix (dirty_list_ holds n+1 slots), so first-visit insertion order —
  // part of the equivalence contract — is preserved exactly.
  sim::ProcessorId* __restrict out = dirty_list_.data();
  std::uint8_t* __restrict flag = dirty_.data();
  std::uint32_t len = dirty_len_;
  out[len] = p;
  len += 1u - flag[p];
  flag[p] = 1;
  for (sim::ProcessorId q : csr_.row(p)) {
    out[len] = q;
    len += 1u - flag[q];
    flag[q] = 1;
  }
  dirty_len_ = len;
}

void SoaEngine::mark_mirror_stale(sim::ProcessorId p) {
  if (!mirror_stale_[p]) {
    mirror_stale_[p] = 1;
    mirror_list_.push_back(p);
  }
}

void SoaEngine::sync_mirror() const {
  for (sim::ProcessorId p : mirror_list_) {
    config_.state(p) = soa_.get(p);
    mirror_stale_[p] = 0;
  }
  mirror_list_.clear();
}

void SoaEngine::flush_dirty() {
  // Batched refresh, then the same swap-remove list maintenance as the mask
  // engine, in insertion order — the list order (and hence RNG lockstep)
  // must match bit for bit.  The mask source is either a scattered sweep
  // over the dirty rows or, when most of the network is dirty, one dense
  // kernel pass in CSR row order (same masks, better memory behavior; the
  // maintenance order below is unaffected).
  const std::span<const sim::ProcessorId> work(dirty_list_.data(), dirty_len_);
  const bool dense = dirty_len_ > soa_.n() / 2;
  if (dense) {
    kernel_.masks_all(soa_, dense_masks_);
  }
  for (std::size_t i = 0; i < work.size(); ++i) {
    const sim::ProcessorId p = work[i];
    dirty_[p] = 0;
    // Scattered mode evaluates in place (the SoA is fixed for the whole
    // flush, so fused eval+maintenance computes the same masks the separate
    // sweep would); dense mode reads the full-network sweep done above.
    refresh_processor(p, dense ? dense_masks_[p] : kernel_.mask_of(soa_, p));
  }
  dirty_len_ = 0;
}

// Enabled-list maintenance for one refreshed mask: the same swap-remove the
// mask engine performs, shared by the dirty flush and the single-writer fast
// path so the list-order contract has exactly one implementation.
void SoaEngine::refresh_processor(sim::ProcessorId p, sim::ActionMask mask) {
  if (mask == masks_[p]) {
    return;
  }
  const bool was = masks_[p] != 0;
  const bool now = mask != 0;
  masks_[p] = mask;
  if (was == now) {
    return;
  }
  if (now) {
    enabled_pos_[p] = static_cast<std::uint32_t>(enabled_list_.size());
    enabled_list_.push_back(p);
  } else {
    const std::uint32_t pos = enabled_pos_[p];
    const sim::ProcessorId last = enabled_list_.back();
    enabled_list_[pos] = last;
    enabled_pos_[last] = pos;
    enabled_list_.pop_back();
    enabled_pos_[p] = kNotInList;
    // Disabled without executing: RoundTracker's second discharge
    // condition (the "disable action").  pending ⊆ enabled, so only a
    // 1→0 transition can carry an obligation.
    pending_count_ -= pending_[p];
    pending_[p] = 0;
  }
}

void SoaEngine::notify_attach() {
  sync_mirror();
  for (Probe* probe : probes_) {
    probe->on_attach(config_);
  }
}

sim::RunResult SoaEngine::run_until(
    sim::IDaemon& daemon, const std::function<bool(const Config&)>& goal,
    sim::RunLimits limits) {
  sim::RunResult result;
  const std::uint64_t rounds_at_start = rounds_count_;
  while (true) {
    result.rounds = rounds_count_ - rounds_at_start;
    if (goal(config())) {
      result.reason = sim::StopReason::kPredicate;
      return result;
    }
    if (result.steps >= limits.max_steps) {
      result.reason = sim::StopReason::kStepLimit;
      return result;
    }
    if (result.rounds >= limits.max_rounds) {
      result.reason = sim::StopReason::kRoundLimit;
      return result;
    }
    if (!step(daemon)) {
      result.reason = sim::StopReason::kTerminal;
      return result;
    }
    ++result.steps;
  }
}

std::unique_ptr<sim::IEngine<PifProtocol>> make_engine(sim::EngineKind kind,
                                                       const graph::Graph& g,
                                                       const Params& params,
                                                       std::uint64_t seed) {
  if (kind == sim::EngineKind::kSoa) {
    return std::make_unique<SoaEngine>(PifProtocol(g, params), g, seed);
  }
  return std::make_unique<sim::SimulatorEngine<PifProtocol>>(
      PifProtocol(g, params), g, seed);
}

}  // namespace snappif::pif
