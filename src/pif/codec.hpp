// Wire codec for pif::State: the whole record in one 64-bit word.
//
// Layout (low to high): count 20 bits | level 20 | parent 21 | pif 2 | fok 1.
// 20 bits bound N' and L_max at 2^20 — far beyond any simulated instance
// (the constructor asserts).  kNoParent maps to the all-ones 21-bit
// sentinel.
//
// decode() clamps every field back into the Section-3 domains for the owning
// processor: count into [1, N'], level to 0 at the root and [1, L_max]
// elsewhere, pif to a valid phase, and parent to a member of Neig_p (the
// smallest neighbor when the wire value is no neighbor of p).  Clamping
// turns channel garbage into an arbitrary-but-legal state — exactly the
// transient faults the algorithm already stabilizes from.
#pragma once

#include <algorithm>

#include "graph/graph.hpp"
#include "pif/params.hpp"
#include "pif/state.hpp"
#include "util/assert.hpp"

namespace snappif::pif {

class StateCodec {
 public:
  StateCodec(const graph::Graph& g, const Params& params)
      : graph_(&g), params_(params) {
    SNAPPIF_ASSERT_MSG(params.n_upper < (1U << 20) && params.l_max < (1U << 20),
                       "state codec fields are 20-bit");
    SNAPPIF_ASSERT(g.n() < kParentSentinel);
  }

  [[nodiscard]] std::uint64_t encode(const State& s) const {
    const std::uint64_t parent =
        s.parent == kNoParent ? kParentSentinel : s.parent;
    return (static_cast<std::uint64_t>(s.count) & 0xfffff) |
           ((static_cast<std::uint64_t>(s.level) & 0xfffff) << 20) |
           (parent << 40) |
           (static_cast<std::uint64_t>(s.pif) << 61) |
           (static_cast<std::uint64_t>(s.fok ? 1 : 0) << 63);
  }

  [[nodiscard]] State decode(sim::ProcessorId p, std::uint64_t w) const {
    State s;
    const auto pif_bits = static_cast<std::uint8_t>((w >> 61) & 0x3);
    s.pif = pif_bits <= 2 ? static_cast<Phase>(pif_bits) : Phase::kC;
    s.fok = (w >> 63) != 0;
    s.count = std::clamp<std::uint32_t>(
        static_cast<std::uint32_t>(w & 0xfffff), 1, params_.n_upper);
    if (p == params_.root) {
      s.level = 0;
      s.parent = kNoParent;
      return s;
    }
    s.level = std::clamp<std::uint32_t>(
        static_cast<std::uint32_t>((w >> 20) & 0xfffff), 1, params_.l_max);
    const auto parent = static_cast<sim::ProcessorId>((w >> 40) & 0x1fffff);
    const auto nbrs = graph_->neighbors(p);
    if (std::binary_search(nbrs.begin(), nbrs.end(), parent)) {
      s.parent = parent;
    } else {
      SNAPPIF_ASSERT_MSG(!nbrs.empty(), "non-root processor with no neighbor");
      s.parent = nbrs.front();
    }
    return s;
  }

 private:
  static constexpr std::uint64_t kParentSentinel = (1ULL << 21) - 1;

  const graph::Graph* graph_;
  Params params_;
};

}  // namespace snappif::pif
