#include "pif/multi.hpp"

#include "util/assert.hpp"

namespace snappif::pif {

MultiPifProtocol::MultiPifProtocol(const graph::Graph& g,
                                   std::vector<sim::ProcessorId> roots)
    : graph_(&g), scratch_(g, {}) {
  SNAPPIF_ASSERT_MSG(!roots.empty(), "need at least one initiator");
  SNAPPIF_ASSERT_MSG(roots.size() * kNumActions <= sim::kMaxMaskActions,
                     "too many initiators for the 64-bit action mask");
  for (sim::ProcessorId root : roots) {
    instances_.emplace_back(g, Params::for_graph(g, root));
  }
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    for (sim::ActionId a = 0; a < kNumActions; ++a) {
      action_names_.push_back("r" + std::to_string(instances_[i].root()) + ":" +
                              std::string(action_label(a)));
    }
  }
}

MultiState MultiPifProtocol::initial_state(sim::ProcessorId p) const {
  MultiState s;
  s.slots.reserve(instances_.size());
  for (const PifProtocol& instance : instances_) {
    s.slots.push_back(instance.initial_state(p));
  }
  return s;
}

std::string_view MultiPifProtocol::action_name(sim::ActionId a) const {
  return action_names_.at(a);
}

const sim::Configuration<pif::State>& MultiPifProtocol::slice(
    const Config& c, std::size_t i) const {
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    scratch_.state(p) = c.state(p).slots.at(i);
  }
  return scratch_;
}

bool MultiPifProtocol::enabled(const Config& c, sim::ProcessorId p,
                               sim::ActionId a) const {
  const std::size_t i = instance_of(a);
  SNAPPIF_ASSERT(i < instances_.size());
  return instances_[i].enabled(slice(c, i), p, base_action(a));
}

sim::ActionMask MultiPifProtocol::enabled_mask(const Config& c,
                                               sim::ProcessorId p) const {
  sim::ActionMask mask = 0;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    mask |= static_cast<sim::ActionMask>(instances_[i].enabled_mask(slice(c, i), p))
            << (i * kNumActions);
  }
  return mask;
}

MultiState MultiPifProtocol::apply(const Config& c, sim::ProcessorId p,
                                   sim::ActionId a) const {
  const std::size_t i = instance_of(a);
  SNAPPIF_ASSERT(i < instances_.size());
  MultiState next = c.state(p);
  next.slots[i] = instances_[i].apply(slice(c, i), p, base_action(a));
  return next;
}

MultiState MultiPifProtocol::random_state(sim::ProcessorId p,
                                          util::Rng& rng) const {
  MultiState s;
  s.slots.reserve(instances_.size());
  for (const PifProtocol& instance : instances_) {
    s.slots.push_back(instance.random_state(p, rng));
  }
  return s;
}

MultiGhost::MultiGhost(const graph::Graph& g, const MultiPifProtocol& protocol) {
  trackers_.reserve(protocol.instances());
  for (std::size_t i = 0; i < protocol.instances(); ++i) {
    trackers_.emplace_back(g, protocol.root_of(i));
  }
}

void MultiGhost::on_apply(sim::ProcessorId p, sim::ActionId a,
                          const MultiState& after) {
  const std::size_t i = MultiPifProtocol::instance_of(a);
  SNAPPIF_ASSERT(i < trackers_.size());
  trackers_[i].on_apply(p, MultiPifProtocol::base_action(a), after.slots[i]);
}

std::uint64_t MultiGhost::min_cycles_completed() const {
  std::uint64_t min_cycles = ~0ull;
  for (const GhostTracker& tracker : trackers_) {
    min_cycles = std::min(min_cycles, tracker.cycles_completed());
  }
  return min_cycles;
}

}  // namespace snappif::pif
