// Global aggregation over one PIF cycle — the "distributed infimum function
// computation" / snapshot use-case the paper's introduction lists, and the
// building block of the "universal transformer" its conclusion announces
// (wrap any request/response computation in a snap-stabilizing wave).
//
// Semantics: when a processor joins the broadcast (its B-action) it
// snapshots a local contribution; when it feeds back (its F-action) it folds
// its contribution with its tree children's folded values; the root's
// F-action completes the global fold.  Because the protocol is
// snap-stabilizing, the FIRST wave after any corruption already aggregates
// over *all* N processors — no stabilization period during which results
// silently cover only part of the network.
//
// Correctness requires each processor to contribute exactly once per cycle,
// which holds because a processor cannot rejoin the legal tree within one
// root-initiated cycle: re-joining requires having cleaned (C-action under
// BFree), and a broadcasting neighbor can only (re)appear next to a cleaned
// processor through a chain of B-actions that must terminate in a fresh
// join — impossible once Fok_r has risen, since Fok_r requires Count_r = N,
// i.e. everyone already joined.  The GhostTracker records per-cycle receive
// counts (CycleVerdict::max_receives) and the test suite asserts the
// invariant across every adversarial run.
//
// The fold must be a commutative monoid (fold order across siblings is
// schedule-dependent).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "pif/ghost.hpp"
#include "pif/protocol.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {

template <typename T>
class WaveAggregator {
 public:
  /// `local` is sampled at each processor the moment it joins the wave.
  /// `fold` combines two partial aggregates (commutative, associative).
  WaveAggregator(const graph::Graph& g, sim::ProcessorId root,
                 std::function<T(sim::ProcessorId)> local,
                 std::function<T(const T&, const T&)> fold)
      : root_(root),
        n_(g.n()),
        local_(std::move(local)),
        fold_(std::move(fold)),
        contribution_(g.n()),
        subtree_(g.n()) {}

  /// Wire AFTER the GhostTracker's own on_apply (the aggregator consults the
  /// tracker's view of the same step).
  void on_apply(sim::ProcessorId p, sim::ActionId a,
                const sim::Configuration<State>& before,
                const State& /*after*/, const GhostTracker& tracker) {
    if (a == kBAction) {
      if (p == root_) {
        contribution_[p] = local_(p);
        result_.reset();
      } else if (tracker.cycle_active() &&
                 tracker.message_of(p) == tracker.current_message()) {
        // p just received the current message: snapshot its contribution.
        contribution_[p] = local_(p);
      }
      return;
    }
    if (a != kFAction || !tracker.cycle_active()) {
      return;
    }
    if (tracker.message_of(p) != tracker.current_message()) {
      return;  // phantom-tree feedback: not part of this wave
    }
    // Fold p's subtree: its contribution plus every legal child's folded
    // value.  BLeaf(p) guarantees all pointers at p are already in F.
    T acc = contribution_[p];
    for (sim::ProcessorId q : before.neighbors(p)) {
      if (before.state(q).parent == p && before.state(q).pif == Phase::kF &&
          tracker.message_of(q) == tracker.current_message() &&
          tracker.received_current(q)) {
        acc = fold_(acc, subtree_[q]);
      }
    }
    if (p == root_) {
      result_ = acc;  // the global aggregate, available as the cycle closes
      ++results_computed_;
    } else {
      subtree_[p] = acc;
    }
  }

  /// The aggregate of the most recently completed wave, if any.
  [[nodiscard]] const std::optional<T>& result() const noexcept { return result_; }
  [[nodiscard]] std::uint64_t results_computed() const noexcept {
    return results_computed_;
  }

 private:
  sim::ProcessorId root_;
  sim::ProcessorId n_;
  std::function<T(sim::ProcessorId)> local_;
  std::function<T(const T&, const T&)> fold_;
  std::vector<T> contribution_;
  std::vector<T> subtree_;
  std::optional<T> result_;
  std::uint64_t results_computed_ = 0;
};

/// Convenience: installs tracker + aggregator as the simulator's apply hook.
/// Ordering matters: the aggregator must observe the root's F-action while
/// the tracker still reports the cycle as active (the tracker's own handler
/// closes it), but must see a joiner's ghost message only after the tracker
/// assigned it.
template <typename T>
void attach(sim::Simulator<PifProtocol>& sim, GhostTracker& tracker,
            WaveAggregator<T>& aggregator) {
  const sim::ProcessorId root = sim.protocol().root();
  sim.set_apply_hook([&sim, &tracker, &aggregator, root](
                         sim::ProcessorId p, sim::ActionId a,
                         const sim::Configuration<State>& before,
                         const State& after) {
    tracker.note_step(sim.steps());
    if (p == root && a == kFAction) {
      aggregator.on_apply(p, a, before, after, tracker);
      tracker.on_apply(p, a, after);
    } else {
      tracker.on_apply(p, a, after);
      aggregator.on_apply(p, a, before, after, tracker);
    }
  });
}

}  // namespace snappif::pif
