#include "pif/faults.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "util/assert.hpp"

namespace snappif::pif {
namespace {

// The corruption recipes only touch the engine-neutral surface — topology,
// protocol, config read, set_state, randomize, reset — so one template body
// serves both the mask Simulator and any sim::IEngine implementation.

template <typename Sim>
void plant_fake_tree_t(Sim& sim, util::Rng& rng) {
  const graph::Graph& g = sim.topology();
  const Params& params = sim.protocol().params();
  const sim::ProcessorId n = g.n();
  if (n <= 1) {
    return;
  }
  // Seed: a random non-root processor pretending to be deep in a broadcast.
  sim::ProcessorId seed;
  do {
    seed = static_cast<sim::ProcessorId>(rng.below(n));
  } while (seed == params.root);

  const auto region_target = 1 + rng.below(std::max<std::uint64_t>(1, n / 2));
  const std::uint32_t seed_level =
      1 + static_cast<std::uint32_t>(rng.below(std::max<std::uint32_t>(1, params.l_max / 2)));

  // Grow a BFS region from the seed with levels increasing hop by hop,
  // skipping the root and stopping at L_max.
  std::vector<bool> in_region(n, false);
  std::vector<std::uint32_t> fake_level(n, 0);
  std::vector<sim::ProcessorId> fake_parent(n, kNoParent);
  std::queue<sim::ProcessorId> frontier;
  in_region[seed] = true;
  fake_level[seed] = seed_level;
  // Seed's parent is an arbitrary neighbor; its level will generally be
  // inconsistent with that neighbor, making the seed the tree's abnormal
  // "source" — exactly the shape Definition 5's Tree(p) describes.
  fake_parent[seed] = g.neighbors(seed)[rng.below(g.degree(seed))];
  frontier.push(seed);
  std::size_t count_in_region = 1;
  std::vector<sim::ProcessorId> order{seed};
  while (!frontier.empty() && count_in_region < region_target) {
    const sim::ProcessorId v = frontier.front();
    frontier.pop();
    if (fake_level[v] >= params.l_max) {
      continue;
    }
    for (sim::ProcessorId w : g.neighbors(v)) {
      if (in_region[w] || w == params.root || count_in_region >= region_target) {
        continue;
      }
      in_region[w] = true;
      fake_level[w] = fake_level[v] + 1;
      fake_parent[w] = v;
      order.push_back(w);
      ++count_in_region;
      frontier.push(w);
    }
  }

  // Counts consistent with GoodCount: process in reverse BFS order so each
  // node's count is exactly 1 + sum of its fake children's counts.
  std::vector<std::uint32_t> fake_count(n, 1);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const sim::ProcessorId v = *it;
    std::uint64_t total = 1;
    for (sim::ProcessorId w : g.neighbors(v)) {
      if (in_region[w] && fake_parent[w] == v) {
        total += fake_count[w];
      }
    }
    fake_count[v] = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(total, params.n_upper));
  }
  for (sim::ProcessorId v : order) {
    State s;
    s.pif = Phase::kB;
    s.fok = false;
    s.level = fake_level[v];
    s.parent = fake_parent[v];
    s.count = fake_count[v];
    sim.set_state(v, s);
  }
}

template <typename Sim>
void plant_stray_feedback_t(Sim& sim, util::Rng& rng, double fraction) {
  const graph::Graph& g = sim.topology();
  const Params& params = sim.protocol().params();
  for (sim::ProcessorId v = 0; v < g.n(); ++v) {
    if (v == params.root || !rng.chance(fraction)) {
      continue;
    }
    State s = sim.config().state(v);
    s.pif = Phase::kF;
    s.parent = g.neighbors(v)[rng.below(g.degree(v))];
    s.level = 1 + static_cast<std::uint32_t>(rng.below(params.l_max));
    sim.set_state(v, s);
  }
}

template <typename Sim>
void plant_stray_fok_t(Sim& sim, util::Rng& rng, double fraction) {
  for (sim::ProcessorId v = 0; v < sim.topology().n(); ++v) {
    if (!rng.chance(fraction)) {
      continue;
    }
    State s = sim.config().state(v);
    if (s.pif == Phase::kB) {
      s.fok = true;
      sim.set_state(v, s);
    }
  }
}

template <typename Sim>
void inflate_counts_t(Sim& sim, util::Rng& rng, double fraction) {
  const Params& params = sim.protocol().params();
  for (sim::ProcessorId v = 0; v < sim.topology().n(); ++v) {
    if (!rng.chance(fraction)) {
      continue;
    }
    State s = sim.config().state(v);
    s.count = params.n_upper;
    sim.set_state(v, s);
  }
}

template <typename Sim>
void adversarial_corruption_t(Sim& sim, util::Rng& rng) {
  const auto trees = 1 + rng.below(3);
  for (std::uint64_t i = 0; i < trees; ++i) {
    plant_fake_tree_t(sim, rng);
  }
  plant_stray_feedback_t(sim, rng, 0.15);
  plant_stray_fok_t(sim, rng, 0.25);
  inflate_counts_t(sim, rng, 0.10);
  // Occasionally corrupt the root too: the snap property must survive the
  // root waking up mid-"cycle" of a phantom broadcast.
  if (rng.chance(0.5)) {
    State s = sim.config().state(sim.protocol().root());
    s.pif = rng.chance(0.5) ? Phase::kB : Phase::kF;
    s.fok = rng.chance(0.5);
    s.count = 1 + static_cast<std::uint32_t>(
                      rng.below(sim.protocol().params().n_upper));
    sim.set_state(sim.protocol().root(), s);
  }
}

template <typename Sim>
void apply_corruption_t(Sim& sim, CorruptionKind kind, util::Rng& rng) {
  switch (kind) {
    case CorruptionKind::kUniformRandom:
      sim.randomize(rng);
      return;
    case CorruptionKind::kFakeTree:
      sim.reset_to_initial();
      plant_fake_tree_t(sim, rng);
      return;
    case CorruptionKind::kStrayFeedback:
      sim.reset_to_initial();
      plant_fake_tree_t(sim, rng);
      plant_stray_feedback_t(sim, rng, 0.3);
      return;
    case CorruptionKind::kStrayFok:
      sim.reset_to_initial();
      plant_fake_tree_t(sim, rng);
      plant_stray_fok_t(sim, rng, 0.5);
      return;
    case CorruptionKind::kInflatedCounts:
      sim.reset_to_initial();
      plant_fake_tree_t(sim, rng);
      inflate_counts_t(sim, rng, 0.3);
      return;
    case CorruptionKind::kAdversarialMix:
      sim.reset_to_initial();
      adversarial_corruption_t(sim, rng);
      return;
  }
  SNAPPIF_ASSERT_MSG(false, "unknown corruption kind");
}

}  // namespace

void plant_fake_tree(PifSimulator& sim, util::Rng& rng) {
  plant_fake_tree_t(sim, rng);
}

void plant_stray_feedback(PifSimulator& sim, util::Rng& rng, double fraction) {
  plant_stray_feedback_t(sim, rng, fraction);
}

void plant_stray_fok(PifSimulator& sim, util::Rng& rng, double fraction) {
  plant_stray_fok_t(sim, rng, fraction);
}

void inflate_counts(PifSimulator& sim, util::Rng& rng, double fraction) {
  inflate_counts_t(sim, rng, fraction);
}

void adversarial_corruption(PifSimulator& sim, util::Rng& rng) {
  adversarial_corruption_t(sim, rng);
}

std::string_view corruption_name(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kUniformRandom:
      return "uniform";
    case CorruptionKind::kFakeTree:
      return "fake-tree";
    case CorruptionKind::kStrayFeedback:
      return "stray-F";
    case CorruptionKind::kStrayFok:
      return "stray-Fok";
    case CorruptionKind::kInflatedCounts:
      return "inflated";
    case CorruptionKind::kAdversarialMix:
      return "adversarial";
  }
  return "?";
}

void apply_corruption(PifSimulator& sim, CorruptionKind kind, util::Rng& rng) {
  apply_corruption_t(sim, kind, rng);
}

void apply_corruption(sim::IEngine<PifProtocol>& engine, CorruptionKind kind,
                      util::Rng& rng) {
  apply_corruption_t(engine, kind, rng);
}

std::span<const CorruptionKind> all_corruption_kinds() {
  static constexpr CorruptionKind kKinds[] = {
      CorruptionKind::kUniformRandom,  CorruptionKind::kFakeTree,
      CorruptionKind::kStrayFeedback,  CorruptionKind::kStrayFok,
      CorruptionKind::kInflatedCounts, CorruptionKind::kAdversarialMix,
  };
  return kKinds;
}

}  // namespace snappif::pif
