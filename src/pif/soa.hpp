// Struct-of-arrays layout of the PIF configuration.
//
// The mask engine stores one 16-byte pif::State per processor; guard
// evaluation touches at most three of its five fields per neighbor, so half
// of every cache line it pulls is dead weight.  PifSoa transposes the
// configuration into five parallel contiguous vectors — `Pif`/`Fok` as bytes,
// `Count`/`L`/`Par` as 32-bit words — so the batched kernel
// (pif/batched.hpp) streams exactly the fields a guard reads and the
// compiler can vectorize the per-neighbor arithmetic.
//
// A sixth, *derived* column rides along: `packed[p]` folds every field a
// guard reads about a NEIGHBOR into one 64-bit word
//
//     bits  0-1   Pif  (Phase byte)
//     bit   2     Fok
//     bit   3     overflow — level or count exceeds 20 bits; readers must
//                 fall back to the exact columns for this processor
//     bits  4-23  level  (low 20 bits)
//     bits 24-43  count  (low 20 bits)
//     bits 44-63  parent (exact when < n; any out-of-range parent — including
//                 the root's kNoParent — stores the all-ones pattern, which
//                 compares unequal to every valid id as long as n < 2^20)
//
// so the per-neighbor inner loop of the batched kernel issues ONE load per
// neighbor instead of five.  set() keeps the word in lockstep with the
// columns; the kernel only trusts it when n < 2^20 and no touched word has
// the overflow bit (tests drive out-of-domain states through set_state, so
// exactness is preserved by falling back, never by clamping silently).
//
// The arrays are the engine-internal representation only; everything at the
// edges (probes, goal predicates, serialization, the wire codec) keeps
// speaking pif::State.  get/set and load/store convert losslessly in both
// directions, and encode/set_encoded bridge through the packed 64-bit
// StateCodec word so SoA state can cross the same boundaries (snapshots,
// message payloads) the AoS state already does.
#pragma once

#include <cstdint>
#include <vector>

#include "pif/codec.hpp"
#include "pif/state.hpp"
#include "sim/configuration.hpp"
#include "sim/types.hpp"
#include "util/assert.hpp"

namespace snappif::pif {

struct PifSoa {
  /// Width of the packed level/count/parent fields.
  static constexpr std::uint32_t kPackedFieldBits = 20;
  static constexpr std::uint32_t kPackedFieldMax = (1u << kPackedFieldBits) - 1;

  std::vector<std::uint8_t> pif;       // Phase as its underlying byte
  std::vector<std::uint8_t> fok;       // 0 / 1
  std::vector<std::uint32_t> count;    // [1, N']
  std::vector<std::uint32_t> level;    // 0 at the root, [1, L_max] otherwise
  std::vector<sim::ProcessorId> parent;  // kNoParent at the root
  std::vector<std::uint64_t> packed;   // derived neighbor-guard word (above)

  [[nodiscard]] sim::ProcessorId n() const noexcept {
    return static_cast<sim::ProcessorId>(pif.size());
  }

  void resize(sim::ProcessorId n) {
    pif.assign(n, static_cast<std::uint8_t>(Phase::kC));
    fok.assign(n, 0);
    count.assign(n, 1);
    level.assign(n, 0);
    parent.assign(n, kNoParent);
    packed.assign(n, 0);
    for (sim::ProcessorId p = 0; p < n; ++p) {
      repack(p);
    }
  }

  [[nodiscard]] State get(sim::ProcessorId p) const {
    SNAPPIF_ASSERT(p < n());
    State s;
    s.pif = static_cast<Phase>(pif[p]);
    s.fok = fok[p] != 0;
    s.count = count[p];
    s.level = level[p];
    s.parent = parent[p];
    return s;
  }

  void set(sim::ProcessorId p, const State& s) {
    SNAPPIF_ASSERT(p < n());
    pif[p] = static_cast<std::uint8_t>(s.pif);
    fok[p] = s.fok ? 1 : 0;
    count[p] = s.count;
    level[p] = s.level;
    parent[p] = s.parent;
    repack(p);
  }

  /// Rebuilds the derived packed word of p from the exact columns.
  void repack(sim::ProcessorId p) {
    const std::uint32_t lvl = level[p];
    const std::uint32_t cnt = count[p];
    const std::uint32_t par = parent[p];
    const std::uint64_t ovf = (lvl > kPackedFieldMax) | (cnt > kPackedFieldMax);
    const std::uint64_t spar = par < n() ? par : kPackedFieldMax;
    packed[p] = static_cast<std::uint64_t>(pif[p] & 3) |
                (static_cast<std::uint64_t>(fok[p] & 1) << 2) | (ovf << 3) |
                (static_cast<std::uint64_t>(lvl & kPackedFieldMax) << 4) |
                (static_cast<std::uint64_t>(cnt & kPackedFieldMax) << 24) |
                (spar << 44);
  }

  /// Transposes a whole AoS configuration in (resizing to match).
  void load(const sim::Configuration<State>& c) {
    resize(c.n());
    for (sim::ProcessorId p = 0; p < c.n(); ++p) {
      set(p, c.state(p));
    }
  }

  /// Writes every processor's state back into an AoS configuration.
  void store(sim::Configuration<State>& c) const {
    SNAPPIF_ASSERT(c.n() == n());
    for (sim::ProcessorId p = 0; p < n(); ++p) {
      c.state(p) = get(p);
    }
  }

  // --- packed-codec bridge -------------------------------------------------

  /// p's state as the codec's 64-bit wire word.
  [[nodiscard]] std::uint64_t encode(sim::ProcessorId p,
                                     const StateCodec& codec) const {
    return codec.encode(get(p));
  }

  /// Installs a wire word at p, with the codec's domain clamping.
  void set_encoded(sim::ProcessorId p, std::uint64_t word,
                   const StateCodec& codec) {
    set(p, codec.decode(p, word));
  }
};

}  // namespace snappif::pif
