#include "pif/serialize.hpp"

#include <charconv>
#include <vector>

#include "util/assert.hpp"

namespace snappif::pif {

namespace {

std::optional<std::uint32_t> parse_u32(std::string_view text) {
  std::uint32_t value = 0;
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::string format_state(const State& s, bool is_root) {
  std::string out;
  out += phase_char(s.pif);
  if (s.fok) {
    out += '*';
  }
  out += ':';
  out += std::to_string(s.count);
  if (!is_root) {
    out += ':';
    out += std::to_string(s.level);
    out += ':';
    out += std::to_string(s.parent);
  }
  return out;
}

std::string format_config(const PifProtocol& protocol,
                          const sim::Configuration<State>& c) {
  std::string out;
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    if (p > 0) {
      out += ' ';
    }
    out += format_state(c.state(p), protocol.is_root(p));
  }
  return out;
}

std::optional<State> parse_state(const PifProtocol& protocol,
                                 sim::ProcessorId p, std::string_view token) {
  if (token.empty()) {
    return std::nullopt;
  }
  State s;
  switch (token.front()) {
    case 'B':
      s.pif = Phase::kB;
      break;
    case 'F':
      s.pif = Phase::kF;
      break;
    case 'C':
      s.pif = Phase::kC;
      break;
    default:
      return std::nullopt;
  }
  token.remove_prefix(1);
  if (!token.empty() && token.front() == '*') {
    s.fok = true;
    token.remove_prefix(1);
  }
  // Split remaining ":a:b:c" fields.
  std::vector<std::string_view> fields;
  while (!token.empty()) {
    if (token.front() != ':') {
      return std::nullopt;
    }
    token.remove_prefix(1);
    const auto next = token.find(':');
    fields.push_back(token.substr(0, next));
    token.remove_prefix(next == std::string_view::npos ? token.size() : next);
  }
  const bool is_root = protocol.is_root(p);
  const auto& params = protocol.params();

  s.count = 1;
  if (is_root) {
    s.level = 0;
    s.parent = kNoParent;
    if (fields.size() > 1) {
      return std::nullopt;
    }
  } else {
    s.level = 1;
    if (fields.size() > 3) {
      return std::nullopt;
    }
  }
  if (!fields.empty()) {
    const auto count = parse_u32(fields[0]);
    if (!count || *count < 1 || *count > params.n_upper) {
      return std::nullopt;
    }
    s.count = *count;
  }
  if (!is_root && fields.size() >= 2) {
    const auto level = parse_u32(fields[1]);
    if (!level || *level < 1 || *level > params.l_max) {
      return std::nullopt;
    }
    s.level = *level;
  }
  if (!is_root && fields.size() >= 3) {
    const auto parent = parse_u32(fields[2]);
    if (!parent) {
      return std::nullopt;
    }
    s.parent = *parent;
  }
  return s;
}

std::optional<sim::Configuration<State>> parse_config(
    const PifProtocol& protocol, const graph::Graph& g, std::string_view text) {
  sim::Configuration<State> c(g, protocol.initial_state(0));
  sim::ProcessorId p = 0;
  std::size_t pos = 0;
  while (pos < text.size() && p <= g.n()) {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\n' || text[pos] == '\t')) {
      ++pos;
    }
    if (pos >= text.size()) {
      break;
    }
    std::size_t end = pos;
    while (end < text.size() && text[end] != ' ' && text[end] != '\n' &&
           text[end] != '\t') {
      ++end;
    }
    if (p >= g.n()) {
      return std::nullopt;  // too many tokens
    }
    auto s = parse_state(protocol, p, text.substr(pos, end - pos));
    if (!s) {
      return std::nullopt;
    }
    if (!protocol.is_root(p)) {
      // Parent omitted in the token: default to the first neighbor.
      if (s->parent == kNoParent) {
        s->parent = g.neighbors(p)[0];
      }
      if (!g.has_edge(p, s->parent)) {
        return std::nullopt;
      }
    }
    c.state(p) = *s;
    ++p;
    pos = end;
  }
  if (p != g.n()) {
    return std::nullopt;  // too few tokens
  }
  return c;
}

}  // namespace snappif::pif
