// The data-oriented PIF engine: CSR adjacency + SoA state + batched guards.
//
// SoaEngine executes the same computation-step semantics as sim::Simulator —
// daemon selects a subset of the enabled processors, all statements read the
// pre-step configuration, enabledness refreshes incrementally around the
// writers — but stores the configuration as PifSoa column vectors and
// evaluates guards with the branch-free BatchedGuards kernel over Csr rows.
//
// Equivalence contract (the whole point): seeded identically and driven by
// the same daemon, SoaEngine and Simulator<PifProtocol> produce bit-for-bit
// identical trajectories — states, enabled masks, enabled-list order, RNG
// consumption, step/round/action counts.  That requires replicating the mask
// engine's bookkeeping *order*, not just its results:
//
//   * dirty marking visits each writer then its ascending neighbors, in
//     selection order (CSR rows are sorted, so the order matches);
//   * the dirty flush walks insertion order and maintains the enabled list
//     with the same swap-remove, so daemons see the same arbitrary-but-
//     deterministic list order and random daemons consume the same draws;
//   * action choice under kRandomEnabled draws rng.below(popcount) exactly
//     like Simulator::choose_action.
//
// Where the mask engine pays O(n) bookkeeping per step, this engine pays
// O(|selected| + |dirty|):
//
//   * Rounds are tracked incrementally instead of via sim::RoundTracker's
//     per-step scan.  The tracker's invariant — pending ⊆ enabled between
//     steps — lets the two discharge conditions ride existing loops: an
//     executed processor discharges at commit, a disabled one discharges on
//     the 1→0 transition inside the flush, and the completion check runs
//     once per step.  The sequence of (rounds, pending) values is identical
//     to RoundTracker's by construction.
//   * The AoS Configuration mirror is maintained lazily: commits mark
//     processors mirror-stale, and config() (or any probe/score/goal path
//     that reads AoS state) re-materializes exactly the stale rows.  Pure
//     stepping loops never touch the mirror at all.
//   * Dirty marking is branch-free (speculative append, flag-masked length
//     bump), and when a step dirties more than half the network the flush
//     switches from the scattered per-row walk to one dense kernel sweep in
//     CSR row order.  The enabled-list maintenance still walks the dirty
//     list in insertion order, so list order — and the equivalence contract
//     — is unchanged.
//
// Steady-state stepping performs no heap allocation (audited in
// tests/sim/test_simulator_alloc.cpp).
//
// A synchronous fast path batches whole rounds: when the daemon is the
// SynchronousDaemon, the policy is kFirstEnabled, and no observers are
// attached, step() skips the daemon virtual call and the selection copy and
// feeds the dense enabled list straight through the batched kernel.  The
// fast path is behavior-preserving (SynchronousDaemon selects the whole list
// in order and consumes no randomness), so it stays inside the equivalence
// contract.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "pif/batched.hpp"
#include "pif/protocol.hpp"
#include "pif/soa.hpp"
#include "sim/csr.hpp"
#include "sim/engine.hpp"

namespace snappif::pif {

class SoaEngine final : public sim::IEngine<PifProtocol> {
 public:
  using State = pif::State;
  using Config = sim::Configuration<State>;
  using Probe = sim::IProbe<PifProtocol>;
  using ApplyHook = sim::IEngine<PifProtocol>::ApplyHook;

  SoaEngine(PifProtocol protocol, const graph::Graph& g, std::uint64_t seed = 1);

  /// Copying forks the simulation state (SoA columns, mirror, cached masks,
  /// RNG, accounting) with the same semantics as Simulator: attached
  /// observers do not follow the copy.
  SoaEngine(const SoaEngine& other);
  SoaEngine& operator=(const SoaEngine& other);
  // No moves: kernel_ points at this engine's csr_; a default move would
  // leave it aimed at the moved-from instance.  Forking copies instead.

  [[nodiscard]] const PifProtocol& protocol() const noexcept override {
    return protocol_;
  }
  /// The AoS view.  Materializes any rows the hot path left stale — cost is
  /// O(|writes since the last read|), zero for repeat reads.
  [[nodiscard]] const Config& config() const override {
    sync_mirror();
    return config_;
  }
  [[nodiscard]] const graph::Graph& topology() const noexcept override {
    return config_.topology();
  }
  [[nodiscard]] util::Rng& rng() noexcept override { return rng_; }
  [[nodiscard]] std::string_view engine_name() const noexcept override {
    return "soa";
  }

  /// The SoA columns (read-only; tests and benches peek at the layout).
  [[nodiscard]] const PifSoa& soa() const noexcept { return soa_; }
  [[nodiscard]] const sim::Csr& csr() const noexcept { return csr_; }

  void set_state(sim::ProcessorId p, const State& s) override;
  void reset_to_initial() override;
  void randomize(util::Rng& rng) override;
  void set_action_policy(sim::ActionPolicy policy) override {
    policy_ = policy;
  }

  void add_probe(Probe* probe) override;
  void remove_probe(Probe* probe) override;
  void set_apply_hook(ApplyHook hook) override;
  void set_score(std::function<std::int64_t(const State&)> score) override {
    score_ = std::move(score);
  }
  void set_trace(sim::Trace* trace) override { trace_ = trace; }

  [[nodiscard]] bool is_enabled(sim::ProcessorId p) const override {
    return masks_[p] != 0;
  }
  [[nodiscard]] bool any_enabled() const override {
    return !enabled_list_.empty();
  }
  [[nodiscard]] sim::ActionMask enabled_mask_of(sim::ProcessorId p) const override {
    return masks_[p];
  }
  [[nodiscard]] std::span<const sim::ProcessorId> enabled_processors()
      const override {
    return enabled_list_;
  }

  bool step(sim::IDaemon& daemon) override;
  [[nodiscard]] sim::RunResult run_until(
      sim::IDaemon& daemon, const std::function<bool(const Config&)>& goal,
      sim::RunLimits limits) override;
  using sim::IEngine<PifProtocol>::run_until;

  [[nodiscard]] std::uint64_t steps() const noexcept override { return steps_; }
  [[nodiscard]] std::uint64_t rounds() const noexcept override {
    return rounds_count_;
  }
  [[nodiscard]] std::uint64_t action_count(sim::ActionId a) const override {
    return action_counts_.at(a);
  }

 private:
  struct Staged {
    sim::ProcessorId processor;
    sim::ActionId action;
    State next;
  };

  static constexpr std::uint32_t kNotInList = 0xffffffff;

  [[nodiscard]] sim::ActionId choose_action(sim::ProcessorId p);
  [[nodiscard]] bool synchronous_step();
  bool commit_and_refresh();  // true iff the step completed a round
  void refresh_processor(sim::ProcessorId p, sim::ActionMask mask);
  void rebuild_enabled();
  void reset_rounds();
  void mark_dirty_around(sim::ProcessorId p);
  void mark_mirror_stale(sim::ProcessorId p);
  void sync_mirror() const;
  void flush_dirty();
  void notify_attach();

  PifProtocol protocol_;
  // AoS mirror.  Lazily synced: mirror_stale_ flags the rows whose SoA state
  // is newer; sync_mirror() re-materializes exactly those.  mutable because
  // config() is a const read that may materialize.
  mutable Config config_;
  sim::Csr csr_;
  BatchedGuards kernel_;
  PifSoa soa_;
  util::Rng rng_;
  sim::ActionPolicy policy_ = sim::ActionPolicy::kFirstEnabled;
  std::vector<Probe*> probes_;
  std::unique_ptr<sim::FunctionProbe<PifProtocol>> hook_probe_;
  std::vector<sim::ActionChoice> choices_;
  std::function<std::int64_t(const State&)> score_;
  sim::Trace* trace_ = nullptr;

  std::vector<sim::ActionMask> masks_;
  std::vector<sim::ProcessorId> enabled_list_;
  std::vector<std::uint32_t> enabled_pos_;
  std::vector<std::uint8_t> dirty_;
  // Fixed-capacity worklist (size n+1: the branch-free mark writes one slot
  // past the last unique entry on duplicates); dirty_len_ is the live prefix.
  std::vector<sim::ProcessorId> dirty_list_;
  std::uint32_t dirty_len_ = 0;
  std::vector<sim::ActionMask> dense_masks_;  // dense-flush scratch (size n)
  std::vector<sim::ProcessorId> selected_;
  std::vector<Staged> staged_;
  mutable std::vector<std::uint8_t> mirror_stale_;
  mutable std::vector<sim::ProcessorId> mirror_list_;

  // Incremental round accounting (see the header comment): processors still
  // owed an action this round.  Invariant between steps: pending ⊆ enabled.
  std::vector<std::uint8_t> pending_;
  std::uint64_t pending_count_ = 0;
  std::uint64_t rounds_count_ = 0;

  std::uint64_t steps_ = 0;
  std::vector<std::uint64_t> action_counts_;
};

/// Builds the requested engine for a PIF instance.  Both engines produce
/// identical trajectories for identical seeds; kind trades construction cost
/// + per-step throughput only.
[[nodiscard]] std::unique_ptr<sim::IEngine<PifProtocol>> make_engine(
    sim::EngineKind kind, const graph::Graph& g, const Params& params,
    std::uint64_t seed = 1);

}  // namespace snappif::pif
