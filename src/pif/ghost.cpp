#include "pif/ghost.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace snappif::pif {

GhostTracker::GhostTracker(const graph::Graph& g, sim::ProcessorId root)
    : root_(root), n_(g.n()) {
  SNAPPIF_ASSERT(root < g.n());
  reset();
}

void GhostTracker::reset() {
  active_ = false;
  message_ = 0;
  height_ = 0;
  msg_.assign(n_, 0);
  received_.assign(n_, false);
  acked_.assign(n_, false);
  receive_counts_.assign(n_, 0);
  ack_counts_.assign(n_, 0);
  verdicts_.clear();
}

const CycleVerdict& GhostTracker::last_cycle() const {
  SNAPPIF_ASSERT_MSG(!verdicts_.empty(), "no cycle has completed yet");
  return verdicts_.back();
}

void GhostTracker::on_apply(sim::ProcessorId p, sim::ActionId a,
                            const State& after) {
  if (p == root_) {
    if (a == kBAction) {
      // Root broadcasts a fresh message m in this computation step.
      ++message_;
      active_ = true;
      broadcast_step_ = step_;
      height_ = 0;
      received_.assign(n_, false);
      acked_.assign(n_, false);
      receive_counts_.assign(n_, 0);
      ack_counts_.assign(n_, 0);
      msg_[root_] = message_;
      received_[root_] = true;
      acked_[root_] = true;  // trivially: the root needs no ack from itself
      return;
    }
    if (a == kFAction && active_) {
      // The feedback phase reached the root: the cycle ends here (Def. 2's
      // configuration gamma_t).
      CycleVerdict verdict;
      verdict.message = message_;
      verdict.broadcast_step = broadcast_step_;
      verdict.feedback_step = step_;
      verdict.tree_height = height_;
      verdict.pif1 = true;
      verdict.pif2 = true;
      verdict.max_receives = 0;
      verdict.max_acks = 0;
      for (sim::ProcessorId q = 0; q < n_; ++q) {
        verdict.pif1 = verdict.pif1 && received_[q];
        verdict.pif2 = verdict.pif2 && acked_[q];
        verdict.max_receives = std::max(verdict.max_receives, receive_counts_[q]);
        verdict.max_acks = std::max(verdict.max_acks, ack_counts_[q]);
      }
      verdicts_.push_back(verdict);
      active_ = false;
      return;
    }
    if (a == kBCorrection && active_) {
      // The root abandoned a broadcast mid-cycle — a specification abort.
      // Snap-stabilization promises this never happens; tests assert so.
      CycleVerdict verdict;
      verdict.message = message_;
      verdict.broadcast_step = broadcast_step_;
      verdict.feedback_step = step_;
      verdict.aborted = true;
      verdicts_.push_back(verdict);
      active_ = false;
      return;
    }
    return;
  }

  // Non-root processors.
  if (a == kBAction) {
    // p receives the message of the parent it just adopted.  The parent's
    // ghost value is stable within this step (see header comment).
    SNAPPIF_ASSERT(after.parent != kNoParent && after.parent < n_);
    msg_[p] = msg_[after.parent];
    if (active_ && msg_[p] == message_) {
      received_[p] = true;
      ++receive_counts_[p];
      height_ = std::max(height_, after.level);
    }
    return;
  }
  if (a == kFAction) {
    // p acknowledges the message it holds.
    if (active_ && msg_[p] == message_ && received_[p]) {
      acked_[p] = true;
      ++ack_counts_[p];
    }
    return;
  }
}

}  // namespace snappif::pif
