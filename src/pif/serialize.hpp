// Text serialization of PIF configurations — model-check witnesses, test
// fixtures and bug reports share a stable, human-editable format:
//
//   B*:3:2:5    one processor: Phase[Fok-star][:count[:level[:parent]]]
//
// A configuration is processors separated by whitespace, in id order.  The
// root omits level/parent (constants).  Examples:
//   "C C C"                          the 3-processor quiet configuration
//   "B*:3 B*:1:1:0 C:1:1:1"          the Pre_Potential deadlock witness
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "pif/protocol.hpp"
#include "sim/configuration.hpp"

namespace snappif::pif {

/// Renders one processor's state ("B*:3:2:5" — phase, fok star, count,
/// level, parent; root renders phase/fok/count only).
[[nodiscard]] std::string format_state(const State& s, bool is_root);

/// Renders a whole configuration, one token per processor, space-separated.
[[nodiscard]] std::string format_config(const PifProtocol& protocol,
                                        const sim::Configuration<State>& c);

/// Parses one processor token.  Omitted fields default to count=1, level=1
/// (0 for the root), parent = first neighbor.  Returns nullopt on malformed
/// input or out-of-domain values.
[[nodiscard]] std::optional<State> parse_state(const PifProtocol& protocol,
                                               sim::ProcessorId p,
                                               std::string_view token);

/// Parses a whole configuration (exactly n whitespace-separated tokens).
[[nodiscard]] std::optional<sim::Configuration<State>> parse_config(
    const PifProtocol& protocol, const graph::Graph& g, std::string_view text);

}  // namespace snappif::pif
