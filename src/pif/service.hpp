// WaveService — a snap-stabilizing request/response service, the shape of
// the "universal transformer" the paper's conclusion announces (reference
// [13]): wrap a terminating request -> distributed-computation -> response
// task into PIF waves so that it inherits snap-stabilization.
//
// The root owns a request queue.  Each PIF cycle serves the front request:
// the broadcast carries it to every processor (conceptually — the payload
// rides the same tree the ghost message does), each processor computes its
// local share on receipt, and the feedback folds the shares into the
// response delivered with the root's F-action.  Snap-stabilization
// guarantees the FIRST response after any transient fault is already
// computed over all N processors.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "pif/aggregate.hpp"

namespace snappif::pif {

template <typename Req, typename Resp>
class WaveService {
 public:
  struct Completed {
    Req request;
    Resp response;
    bool wave_ok = false;  // the serving cycle satisfied PIF1 and PIF2
  };

  /// `handler(request, p)` computes processor p's share of the response;
  /// `fold` combines shares (commutative monoid, like WaveAggregator's).
  WaveService(const graph::Graph& g, sim::ProcessorId root,
              std::function<Resp(const Req&, sim::ProcessorId)> handler,
              std::function<Resp(const Resp&, const Resp&)> fold)
      : root_(root),
        handler_(std::move(handler)),
        aggregator_(
            g, root,
            [this](sim::ProcessorId p) {
              // Sampled while a wave with an in-flight request is running.
              return handler_(*in_flight_, p);
            },
            std::move(fold)) {}

  /// Enqueues a request; served by the next wave the root initiates.
  void submit(Req request) { queue_.push_back(std::move(request)); }

  [[nodiscard]] std::size_t pending() const noexcept {
    return queue_.size() + (in_flight_.has_value() ? 1 : 0);
  }

  /// Pops the next completed request/response, if any.
  [[nodiscard]] std::optional<Completed> poll() {
    if (completed_.empty()) {
      return std::nullopt;
    }
    Completed out = std::move(completed_.front());
    completed_.pop_front();
    return out;
  }

  /// Wire as the simulator hook together with a GhostTracker — same
  /// contract as WaveAggregator (see attach below).
  void on_apply(sim::ProcessorId p, sim::ActionId a,
                const sim::Configuration<State>& before, const State& after,
                const GhostTracker& tracker) {
    if (p == root_ && a == kBAction) {
      // A new wave opens: dedicate it to the front request, if any.
      if (!in_flight_ && !queue_.empty()) {
        in_flight_ = std::move(queue_.front());
        queue_.pop_front();
      }
      serving_message_ = in_flight_ ? tracker.current_message() : 0;
    }
    if (!in_flight_ || tracker.current_message() != serving_message_) {
      return;  // idle wave (no request) or unrelated bookkeeping
    }
    aggregator_.on_apply(p, a, before, after, tracker);
    if (p == root_ && a == kFAction && aggregator_.result().has_value()) {
      Completed done;
      done.request = std::move(*in_flight_);
      done.response = *aggregator_.result();
      // The serving wave's verdict closes in the same step, after this
      // handler (attach() orders service before tracker on the root's
      // F-action) — record obligations via the tracker's live view.
      bool all = true;
      for (sim::ProcessorId q = 0; q < before.n(); ++q) {
        all = all && tracker.received_current(q) && tracker.acked_current(q);
      }
      done.wave_ok = all;
      completed_.push_back(std::move(done));
      in_flight_.reset();
      serving_message_ = 0;
    }
  }

 private:
  sim::ProcessorId root_;
  std::function<Resp(const Req&, sim::ProcessorId)> handler_;
  WaveAggregator<Resp> aggregator_;
  std::deque<Req> queue_;
  std::optional<Req> in_flight_;
  std::uint64_t serving_message_ = 0;
  std::deque<Completed> completed_;
};

/// Installs tracker + service with the same ordering contract as the
/// aggregator attach (service sees the root's F-action while the cycle is
/// still active).
template <typename Req, typename Resp>
void attach(sim::Simulator<PifProtocol>& sim, GhostTracker& tracker,
            WaveService<Req, Resp>& service) {
  const sim::ProcessorId root = sim.protocol().root();
  sim.set_apply_hook([&sim, &tracker, &service, root](
                         sim::ProcessorId p, sim::ActionId a,
                         const sim::Configuration<State>& before,
                         const State& after) {
    tracker.note_step(sim.steps());
    if (p == root && a == kFAction) {
      service.on_apply(p, a, before, after, tracker);
      tracker.on_apply(p, a, after);
    } else {
      tracker.on_apply(p, a, after);
      service.on_apply(p, a, before, after, tracker);
    }
  });
}

}  // namespace snappif::pif
