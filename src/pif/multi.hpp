// Concurrent multi-initiator PIF (Section 1: "any processor can be an
// initiator in a PIF protocol, and several PIF protocols may be running
// simultaneously.  To cope with this concurrent execution, every processor
// maintains the identity of the initiators.")
//
// Realized as the product composition of k independent single-initiator
// instances: each processor's state is the vector of its k per-initiator
// PIF states (indexed by initiator identity), and the action set is the
// disjoint union of the instances' actions.  Instances never read each
// other's variables, so each one retains its snap-stabilization guarantee
// verbatim under the product's daemon — the composition theorem the paper
// appeals to implicitly.  The test suite verifies all k first cycles succeed
// concurrently from jointly corrupted starts.
#pragma once

#include <string>
#include <vector>

#include "pif/ghost.hpp"
#include "pif/protocol.hpp"
#include "sim/configuration.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace snappif::pif {

struct MultiState {
  std::vector<State> slots;  // one per initiator, same order as the roots

  [[nodiscard]] bool operator==(const MultiState&) const noexcept = default;
  [[nodiscard]] std::uint64_t hash() const noexcept {
    std::uint64_t h = slots.size();
    for (const State& s : slots) {
      h = util::hash_combine(h, s.hash());
    }
    return h;
  }
};

class MultiPifProtocol {
 public:
  using State = MultiState;
  using Config = sim::Configuration<MultiState>;

  /// One PIF instance per entry of `roots` (canonical Params each).
  MultiPifProtocol(const graph::Graph& g, std::vector<sim::ProcessorId> roots);

  [[nodiscard]] std::size_t instances() const noexcept { return instances_.size(); }
  [[nodiscard]] const PifProtocol& instance(std::size_t i) const {
    return instances_.at(i);
  }
  [[nodiscard]] sim::ProcessorId root_of(std::size_t i) const {
    return instances_.at(i).root();
  }

  /// Maps a composite action id to (instance, per-instance action).
  [[nodiscard]] static constexpr std::size_t instance_of(sim::ActionId a) noexcept {
    return a / kNumActions;
  }
  [[nodiscard]] static constexpr sim::ActionId base_action(sim::ActionId a) noexcept {
    return a % kNumActions;
  }

  // Protocol concept.
  [[nodiscard]] MultiState initial_state(sim::ProcessorId p) const;
  [[nodiscard]] sim::ActionId num_actions() const noexcept {
    return static_cast<sim::ActionId>(instances_.size() * kNumActions);
  }
  [[nodiscard]] std::string_view action_name(sim::ActionId a) const;
  [[nodiscard]] bool enabled(const Config& c, sim::ProcessorId p,
                             sim::ActionId a) const;
  /// Per-instance masks shifted into the composite action-id space: one
  /// slice + GuardEval per instance (k walks) instead of one slice per
  /// composite action (7k walks).
  [[nodiscard]] sim::ActionMask enabled_mask(const Config& c,
                                             sim::ProcessorId p) const;
  [[nodiscard]] MultiState apply(const Config& c, sim::ProcessorId p,
                                 sim::ActionId a) const;
  [[nodiscard]] MultiState random_state(sim::ProcessorId p, util::Rng& rng) const;

 private:
  /// Copies instance i's slice of `c` into the scratch configuration.
  [[nodiscard]] const sim::Configuration<pif::State>& slice(const Config& c,
                                                            std::size_t i) const;

  const graph::Graph* graph_;
  std::vector<PifProtocol> instances_;
  std::vector<std::string> action_names_;
  // Scratch slice rebuilt on each guard/statement evaluation.  Mutable by
  // design: slicing is a view-construction detail, not observable state.
  mutable sim::Configuration<pif::State> scratch_;
};

/// Per-instance ghost tracking for the product protocol: decodes composite
/// action ids and forwards to k single-instance trackers.
class MultiGhost {
 public:
  MultiGhost(const graph::Graph& g, const MultiPifProtocol& protocol);

  void on_apply(sim::ProcessorId p, sim::ActionId a, const MultiState& after);

  [[nodiscard]] const GhostTracker& tracker(std::size_t i) const {
    return trackers_.at(i);
  }
  [[nodiscard]] std::size_t instances() const noexcept { return trackers_.size(); }
  /// Cycles completed by every instance (minimum across instances).
  [[nodiscard]] std::uint64_t min_cycles_completed() const;

 private:
  std::vector<GhostTracker> trackers_;
};

}  // namespace snappif::pif
