#include "pif/batched.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace snappif::pif {

sim::ActionMask BatchedGuards::mask_of_columns(const PifSoa& soa,
                                               sim::ProcessorId p) const {
  // The exact reduction: five column loads per neighbor, no packing, no
  // domain limit.  Same 0/1-word arithmetic as the packed path — only the
  // loads differ — and the same shared tail, so the two paths cannot drift.
  const std::uint8_t* __restrict c_pif = soa.pif.data();
  const std::uint8_t* __restrict c_fok = soa.fok.data();
  const std::uint32_t* __restrict c_count = soa.count.data();
  const std::uint32_t* __restrict c_level = soa.level.data();
  const sim::ProcessorId* __restrict c_parent = soa.parent.data();
  const sim::ProcessorId* __restrict adj = csr_->adjacency().data();
  const std::uint32_t* __restrict offsets = csr_->offsets().data();

  const std::uint32_t lp1 = c_level[p] + 1;
  const std::uint32_t l_max = params_.l_max;
  const std::uint32_t owner_term =
      lit_sumset_owner_ & (static_cast<std::uint32_t>(c_fok[p]) ^ 1u);
  const std::uint32_t member_mode = lit_sumset_owner_ ^ 1u;
  const std::uint32_t prepot_pass = lit_prepot_fok_ ^ 1u;

  std::uint32_t all_c = 1;
  std::uint32_t leaf = 1;
  std::uint32_t b_free = 1;
  std::uint32_t has_pot = 0;
  std::uint32_t child_all_f = 1;
  std::uint64_t sum = 1;

  const std::uint32_t row_end = offsets[p + 1];
  for (std::uint32_t i = offsets[p]; i < row_end; ++i) {
    const sim::ProcessorId q = adj[i];
    const std::uint32_t qp = c_pif[q];
    const std::uint32_t qf = c_fok[q];
    const std::uint32_t ql = c_level[q];
    const std::uint32_t is_b = qp == static_cast<std::uint32_t>(Phase::kB);
    const std::uint32_t is_f = qp == static_cast<std::uint32_t>(Phase::kF);
    const std::uint32_t is_c = qp == static_cast<std::uint32_t>(Phase::kC);
    const std::uint32_t par_is_p = c_parent[q] == p;

    all_c &= is_c;
    leaf &= is_c | (par_is_p ^ 1u);
    b_free &= is_b ^ 1u;
    child_all_f &= (par_is_p ^ 1u) | is_f;
    has_pot |= is_b & (par_is_p ^ 1u) & static_cast<std::uint32_t>(ql < l_max) &
               (prepot_pass | (qf ^ 1u));
    const std::uint32_t in_sum =
        is_b & par_is_p & static_cast<std::uint32_t>(ql == lp1) &
        (owner_term | (member_mode & (qf ^ 1u)));
    sum += static_cast<std::uint64_t>(c_count[q]) &
           (0ULL - static_cast<std::uint64_t>(in_sum));
  }
  return mask_tail(soa, p, all_c, leaf, b_free, has_pot, child_all_f, sum);
}

void BatchedGuards::masks_for(const PifSoa& soa,
                              std::span<const sim::ProcessorId> list,
                              std::span<sim::ActionMask> out) const {
  SNAPPIF_ASSERT(out.size() >= list.size());
  for (std::size_t i = 0; i < list.size(); ++i) {
    out[i] = mask_of(soa, list[i]);
  }
}

void BatchedGuards::masks_all(const PifSoa& soa,
                              std::span<sim::ActionMask> out) const {
  const sim::ProcessorId n = soa.n();
  SNAPPIF_ASSERT(out.size() >= n);
  // mask_of is inline: its n-gate hoists out of the loop, leaving a straight
  // ascending sweep over the CSR — rows and adjacency stream sequentially.
  for (sim::ProcessorId p = 0; p < n; ++p) {
    out[p] = mask_of(soa, p);
  }
}

std::uint64_t BatchedGuards::sum_of(const PifSoa& soa, sim::ProcessorId p) const {
  const std::uint32_t sp_fok = soa.fok[p];
  const std::uint32_t lp1 = soa.level[p] + 1;
  std::uint64_t sum = 1;
  for (sim::ProcessorId q : csr_->row(p)) {
    if (soa.pif[q] != static_cast<std::uint8_t>(Phase::kB) ||
        soa.parent[q] != p || soa.level[q] != lp1) {
      continue;
    }
    const bool fok_filter =
        lit_sumset_owner_ != 0 ? sp_fok == 0 : soa.fok[q] == 0;
    if (fok_filter) {
      sum += soa.count[q];
    }
  }
  return sum;
}

State BatchedGuards::apply(const PifSoa& soa, sim::ProcessorId p,
                           sim::ActionId a) const {
  State next = soa.get(p);
  const bool root = p == root_;
  switch (a) {
    case kBAction: {
      if (root) {
        next.pif = Phase::kB;
        next.count = 1;
        next.fok = (params_.n == 1);
        break;
      }
      // min over >_p of the (possibly level-restricted) Pre_Potential: CSR
      // rows are sorted ascending = the local order >_p, so the first
      // neighbor holding the minimal level wins (strict < keeps the
      // earliest) — the same scan as PifProtocol::apply, over SoA columns.
      sim::ProcessorId chosen = kNoParent;
      std::uint32_t chosen_level = 0;
      for (sim::ProcessorId q : csr_->row(p)) {
        if (soa.pif[q] != static_cast<std::uint8_t>(Phase::kB) ||
            soa.parent[q] == p || soa.level[q] >= params_.l_max ||
            (lit_prepot_fok_ != 0 && soa.fok[q] != 0)) {
          continue;
        }
        if (chosen == kNoParent) {
          chosen = q;
          chosen_level = soa.level[q];
          if (!params_.min_level_potential) {
            break;
          }
        } else if (soa.level[q] < chosen_level) {
          chosen = q;
          chosen_level = soa.level[q];
        }
      }
      SNAPPIF_ASSERT_MSG(chosen != kNoParent,
                         "B-action applied with empty Potential");
      next.parent = chosen;
      next.level = chosen_level + 1;
      next.count = 1;
      next.fok = false;
      next.pif = Phase::kB;
      break;
    }
    case kFokAction:
      next.fok = true;
      break;
    case kFAction:
      next.pif = Phase::kF;
      break;
    case kCAction:
      next.pif = Phase::kC;
      break;
    case kCountAction: {
      const std::uint64_t s = sum_of(soa, p);
      next.count =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(s, params_.n_upper));
      if (root) {
        next.fok = params_.ablate_count_wait || (s == params_.n);
      }
      break;
    }
    case kBCorrection:
      next.pif = root ? Phase::kC : Phase::kF;
      break;
    case kFCorrection:
      next.pif = Phase::kC;
      break;
    default:
      SNAPPIF_ASSERT_MSG(false, "unknown action id");
  }
  return next;
}

}  // namespace snappif::pif
