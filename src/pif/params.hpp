// Protocol parameters (the paper's Inputs/Constants).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "sim/types.hpp"

namespace snappif::pif {

struct Params {
  /// The initiator r.  Any processor may be the root; the algorithm is run
  /// with one designated initiator per instance (Section 2, "The problem to
  /// be solved").
  sim::ProcessorId root = 0;
  /// Exact network size N, known at the root (the snap-stabilization
  /// linchpin: the root starts the Fok wave only once Count_r = N).
  std::uint32_t n = 0;
  /// N': upper bound of N; the Count variable's domain is [1, N'].
  std::uint32_t n_upper = 0;
  /// L_max >= N-1; the level variable's domain is [1, L_max] for p != r.
  std::uint32_t l_max = 0;

  // --- experiment hooks (all default to the paper's algorithm) ---

  /// E7 ablation: when false, B-action picks min_{>_p}(Pre_Potential_p)
  /// instead of restricting to minimum-level neighbors; chordless-path
  /// guarantee (Theorem 4) is lost.
  bool min_level_potential = true;

  // --- E13 guard ablations: each removes one safety guard to demonstrate
  // it is load-bearing (the model checker finds snap violations) ---

  /// Drop Leaf(p) from Broadcast(p): a processor may join the wave while a
  /// stale child still points at it — pre-existing debris with luckily
  /// consistent levels gets adopted (and counted) without ever receiving
  /// the message: [PIF1] violations.
  bool ablate_broadcast_leaf = false;
  /// Drop BLeaf(p) from Feedback(p): a processor may feed back while its
  /// children are still broadcasting — their acknowledgments are lost to
  /// corrections: [PIF2] violations.
  bool ablate_feedback_bleaf = false;
  /// Root raises Fok on its first Count-action regardless of Sum = N: the
  /// feedback is authorized before the broadcast covered the network —
  /// the cycle closes early: [PIF1] violations.  (Root GoodFok is waived
  /// accordingly.)  This is the ablation of the snap linchpin itself.
  bool ablate_count_wait = false;
  /// Literal-typo mode (tests only): root GoodFok as printed,
  /// `Fok_r = (Sum_r = N)`, which self-destroys mid-cycle.
  bool literal_root_goodfok = false;
  /// Literal-typo mode (tests only): Sum_Set filters on the set owner's
  /// ¬Fok_p instead of the member's ¬Fok_q.
  bool literal_sumset_fok_owner = false;
  /// Literal mode (tests only): keep the printed ¬Fok_q conjunct in
  /// Pre_Potential.  With it, a processor left in phase C with a stale Par
  /// pointer into a Fok'd tree can never join nor unblock its "parent" —
  /// the model checker exhibits a global deadlock (DESIGN.md §2 item 4).
  bool literal_prepotential_fok = false;

  /// Canonical parameters for a graph: N' = N, L_max = N-1.
  [[nodiscard]] static Params for_graph(const graph::Graph& g,
                                        sim::ProcessorId root = 0) {
    Params params;
    params.root = root;
    params.n = g.n();
    params.n_upper = g.n();
    params.l_max = g.n() > 1 ? g.n() - 1 : 1;
    return params;
  }
};

}  // namespace snappif::pif
