// Ghost-variable instrumentation of the PIF specification (Definition 2).
//
// The PIF Cycle specification speaks about a *message* m broadcast by the
// root and acknowledged by every other processor.  The algorithm itself
// carries no message payload (the broadcast value rides along with the
// B-action in a real deployment), so the checker attaches ghost variables
// that the protocol cannot read:
//
//   * each root B-action mints a fresh message id m and opens a cycle;
//   * a non-root B-action "receives" its chosen parent's ghost message;
//   * [PIF1] is satisfied when every p != r has received the open cycle's m;
//   * a non-root F-action while holding m "acknowledges" m;
//   * the root's F-action closes the cycle; [PIF2] requires every p != r to
//     have acknowledged m by then.
//
// Ghost updates are order-independent within one computation step: a freshly
// joining processor's parent had Pif = B in the pre-step configuration, so
// that parent cannot execute a ghost-changing action (B-action requires
// Pif = C) in the same step.
#pragma once

#include <cstdint>
#include <vector>

#include "pif/protocol.hpp"
#include "sim/types.hpp"

namespace snappif::pif {

/// Verdict for one completed (root B-action .. root F-action) cycle.
struct CycleVerdict {
  std::uint64_t message = 0;
  bool pif1 = false;        // every p != r received m
  bool pif2 = false;        // every p != r acknowledged m
  bool aborted = false;     // root executed B-correction mid-cycle
  std::uint64_t broadcast_step = 0;
  std::uint64_t feedback_step = 0;
  /// h: height of the tree constructed by this cycle's broadcast (max level
  /// among processors that joined with the cycle's message).
  std::uint32_t tree_height = 0;
  /// Largest number of times any single processor received this cycle's
  /// message (B-joined the legal tree).  In a cycle initiated from SBN this
  /// is exactly 1; re-joins can only occur while digesting corrupted debris,
  /// and even then only via phantom trees (stale messages) — every tracked
  /// cycle observed 1 (asserted in tests; the WaveAggregator relies on it).
  std::uint32_t max_receives = 0;
  /// Same for acknowledgments of this cycle's message.
  std::uint32_t max_acks = 0;

  [[nodiscard]] bool ok() const noexcept { return pif1 && pif2 && !aborted; }
};

class GhostTracker {
 public:
  GhostTracker(const graph::Graph& g, sim::ProcessorId root);

  /// Wire into Simulator<PifProtocol>::set_apply_hook.  Only the acting
  /// processor's id, action, and *new* state are needed.
  void on_apply(sim::ProcessorId p, sim::ActionId a, const State& after);

  /// Advances the step counter; call once per Simulator::step executed (the
  /// harness uses run_until's step count; simplest is to call via hook —
  /// instead we stamp with an internal counter incremented per root action).
  void note_step(std::uint64_t step) noexcept { step_ = step; }

  [[nodiscard]] bool cycle_active() const noexcept { return active_; }
  [[nodiscard]] std::uint64_t current_message() const noexcept { return message_; }
  [[nodiscard]] std::uint64_t cycles_completed() const noexcept {
    return verdicts_.size();
  }
  [[nodiscard]] const std::vector<CycleVerdict>& verdicts() const noexcept {
    return verdicts_;
  }
  /// Must not be called before a cycle completed.
  [[nodiscard]] const CycleVerdict& last_cycle() const;

  /// Ghost message currently held by p (0 = never received anything).
  [[nodiscard]] std::uint64_t message_of(sim::ProcessorId p) const {
    return msg_.at(p);
  }
  [[nodiscard]] bool received_current(sim::ProcessorId p) const {
    return received_.at(p);
  }
  [[nodiscard]] bool acked_current(sim::ProcessorId p) const {
    return acked_.at(p);
  }

  void reset();

 private:
  sim::ProcessorId root_;
  sim::ProcessorId n_;
  bool active_ = false;
  std::uint64_t message_ = 0;
  std::uint64_t step_ = 0;
  std::uint64_t broadcast_step_ = 0;
  std::uint32_t height_ = 0;
  std::vector<std::uint64_t> msg_;
  std::vector<bool> received_;
  std::vector<bool> acked_;
  std::vector<std::uint32_t> receive_counts_;
  std::vector<std::uint32_t> ack_counts_;
  std::vector<CycleVerdict> verdicts_;
};

}  // namespace snappif::pif
