// Glue: attach a GhostTracker to a running Simulator<PifProtocol>.
#pragma once

#include "pif/ghost.hpp"
#include "pif/protocol.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {

/// Installs `tracker` as the simulator's apply hook.  The tracker is stamped
/// with the current step index before each ghost update so cycle verdicts
/// carry meaningful step ranges.  `tracker` must outlive `sim`'s hook.
inline void attach(sim::Simulator<PifProtocol>& sim, GhostTracker& tracker) {
  sim.set_apply_hook([&sim, &tracker](sim::ProcessorId p, sim::ActionId a,
                                      const sim::Configuration<State>& /*before*/,
                                      const State& after) {
    tracker.note_step(sim.steps());
    tracker.on_apply(p, a, after);
  });
}

}  // namespace snappif::pif
