// PIF-specific observability.
//
// Two layers:
//   * attach(): wires a GhostTracker (specification checking, Definition 2)
//     into a simulator as an owned probe — unchanged public API.
//   * PifMetricsProbe: derives the run-time quantities the paper's proofs
//     reason about and feeds them into an obs::Registry (and optionally an
//     obs::EventLog for timeline export):
//       - per-round phase occupancy (#B / #F / #C, #Fok raised)  — the Pif
//         variable distribution Theorems 1-4 argue over;
//       - Count_r progress — the counting wave (Count_r = N gates the root's
//         Fok; see GoodCount / the counting lemmas of Section 4);
//       - Fok-wave latency — rounds from the root's B-action until Fok_r
//         rises, and the feedback tail until the root's F-action closes the
//         cycle (Theorem 4's 5h + 5 budget);
//       - broadcast-tree churn — Par rewrites per round (tree formation and
//         abnormal-tree digestion);
//       - correction totals — B-/F-correction executions (Theorems 1-3 bound
//         when these can still fire).
// See src/obs/README.md for the metric naming scheme.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "pif/ghost.hpp"
#include "pif/protocol.hpp"
#include "sim/engine.hpp"
#include "sim/probe.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {

/// Installs `tracker` as the simulator's apply hook.  The tracker is stamped
/// with the current step index before each ghost update so cycle verdicts
/// carry meaningful step ranges.  `tracker` must outlive `sim`'s hook.
inline void attach(sim::Simulator<PifProtocol>& sim, GhostTracker& tracker) {
  sim.set_apply_hook([&sim, &tracker](sim::ProcessorId p, sim::ActionId a,
                                      const sim::Configuration<State>& /*before*/,
                                      const State& after) {
    tracker.note_step(sim.steps());
    tracker.on_apply(p, a, after);
  });
}

/// Engine-agnostic overload: same hook against any IEngine implementation
/// (mask or SoA), so the experiment runners can instrument either.
inline void attach(sim::IEngine<PifProtocol>& engine, GhostTracker& tracker) {
  engine.set_apply_hook([&engine, &tracker](
                            sim::ProcessorId p, sim::ActionId a,
                            const sim::Configuration<State>& /*before*/,
                            const State& after) {
    tracker.note_step(engine.steps());
    tracker.on_apply(p, a, after);
  });
}

/// Registry- and event-backed telemetry for Simulator<PifProtocol> runs.
/// Attach with sim.add_probe(&probe); detach with sim.remove_probe(&probe).
/// The probe must outlive its attachment.
class PifMetricsProbe final : public sim::IProbe<PifProtocol> {
 public:
  using Config = sim::Configuration<State>;

  /// One completed round's derived quantities.
  struct RoundSample {
    std::uint64_t round = 0;        // 1-based completed-round index
    std::uint64_t step = 0;         // step that completed the round
    std::uint32_t in_b = 0;         // processors with Pif = B
    std::uint32_t in_f = 0;         // processors with Pif = F
    std::uint32_t in_c = 0;         // processors with Pif = C
    std::uint32_t fok_raised = 0;   // processors with Fok = true
    std::uint64_t count_root = 0;   // Count_r
    std::uint64_t par_changes = 0;  // Par rewrites during this round
    std::uint64_t corrections = 0;  // correction actions during this round
  };

  PifMetricsProbe(const PifProtocol& protocol, obs::Registry& registry,
                  obs::EventLog* events = nullptr)
      : protocol_(&protocol), reg_(&registry), events_(events) {
    for (sim::ActionId a = 0; a < kNumActions; ++a) {
      action_counters_[a] = &reg_->counter(
          std::string("pif.action.") + std::string(action_label(a)));
    }
  }

  [[nodiscard]] const std::vector<RoundSample>& round_samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::uint64_t cycles_closed() const noexcept {
    return cycles_closed_;
  }

  void on_attach(const Config& config) override {
    prev_root_fok_ = config.state(protocol_->root()).fok;
    round_par_changes_ = 0;
    round_corrections_ = 0;
    cycle_open_ = false;
  }

  void on_step_begin(const sim::StepEvent& ev, const Config& /*config*/) override {
    cur_step_ = ev.step;
    cur_rounds_ = ev.rounds_before;
    reg_->stats("sim.step.selected").add(static_cast<double>(ev.selected.size()));
    reg_->stats("sim.step.enabled").add(static_cast<double>(ev.enabled_before));
  }

  void on_apply(sim::ProcessorId p, sim::ActionId a, const Config& before,
                const State& after) override {
    if (a < kNumActions) {
      action_counters_[a]->inc();
    }
    if (after.parent != before.state(p).parent) {
      ++round_par_changes_;
      reg_->counter("pif.par_changes").inc();
    }
    if (a == kBCorrection || a == kFCorrection) {
      ++round_corrections_;
      reg_->counter("pif.corrections").inc();
      if (events_ != nullptr) {
        obs::TraceEvent e("pif.correction", 'i', cur_step_);
        e.tid = p;
        events_->emit(std::move(e).arg("action", action_label(a)));
      }
    }
    if (p == protocol_->root()) {
      on_root_action(a);
    }
  }

  void on_step_end(const sim::StepEvent& ev, const Config& config) override {
    // Detect the Fok wave reaching the root (Fok_r rising edge).
    const bool root_fok = config.state(protocol_->root()).fok;
    if (root_fok && !prev_root_fok_ && cycle_open_) {
      fok_rise_round_ = ev.rounds_before;
      fok_rise_valid_ = true;
      reg_->stats("pif.fok_wave_rounds")
          .add(static_cast<double>(ev.rounds_before - cycle_start_round_));
      if (events_ != nullptr) {
        events_->emit(obs::TraceEvent("pif.fok_at_root", 'i', ev.step));
      }
    }
    prev_root_fok_ = root_fok;
  }

  void on_round_complete(std::uint64_t rounds, const sim::StepEvent& ev,
                         const Config& config) override {
    RoundSample s;
    s.round = rounds;
    s.step = ev.step;
    for (const State& st : config.states()) {
      switch (st.pif) {
        case Phase::kB:
          ++s.in_b;
          break;
        case Phase::kF:
          ++s.in_f;
          break;
        case Phase::kC:
          ++s.in_c;
          break;
      }
      if (st.fok) {
        ++s.fok_raised;
      }
    }
    s.count_root = config.state(protocol_->root()).count;
    s.par_changes = round_par_changes_;
    s.corrections = round_corrections_;
    round_par_changes_ = 0;
    round_corrections_ = 0;
    samples_.push_back(s);

    reg_->stats("pif.round.occupancy_b").add(s.in_b);
    reg_->stats("pif.round.occupancy_f").add(s.in_f);
    reg_->stats("pif.round.occupancy_c").add(s.in_c);
    reg_->stats("pif.round.fok_raised").add(s.fok_raised);
    reg_->stats("pif.round.par_changes").add(static_cast<double>(s.par_changes));
    reg_->gauge("pif.count_root").set(static_cast<double>(s.count_root));
    switch (config.state(protocol_->root()).pif) {
      case Phase::kB:
        reg_->counter("pif.rounds_root_b").inc();
        break;
      case Phase::kF:
        reg_->counter("pif.rounds_root_f").inc();
        break;
      case Phase::kC:
        reg_->counter("pif.rounds_root_c").inc();
        break;
    }

    if (events_ != nullptr) {
      events_->emit(obs::TraceEvent("pif.phase", 'C', ev.step)
                        .arg("B", static_cast<std::uint64_t>(s.in_b))
                        .arg("F", static_cast<std::uint64_t>(s.in_f))
                        .arg("C", static_cast<std::uint64_t>(s.in_c)));
      events_->emit(obs::TraceEvent("pif.wave", 'C', ev.step)
                        .arg("fok", static_cast<std::uint64_t>(s.fok_raised))
                        .arg("count_root", s.count_root)
                        .arg("par_changes", s.par_changes));
    }
  }

 private:
  void on_root_action(sim::ActionId a) {
    if (a == kBAction) {
      cycle_open_ = true;
      fok_rise_valid_ = false;
      cycle_start_round_ = cur_rounds_;
      if (events_ != nullptr) {
        events_->emit(obs::TraceEvent("pif.cycle", 'B', cur_step_));
      }
    } else if (a == kFAction && cycle_open_) {
      cycle_open_ = false;
      ++cycles_closed_;
      reg_->stats("pif.cycle_rounds")
          .add(static_cast<double>(cur_rounds_ - cycle_start_round_));
      if (fok_rise_valid_) {
        reg_->stats("pif.feedback_wait_rounds")
            .add(static_cast<double>(cur_rounds_ - fok_rise_round_));
      }
      if (events_ != nullptr) {
        events_->emit(obs::TraceEvent("pif.cycle", 'E', cur_step_));
      }
    }
  }

  const PifProtocol* protocol_;
  obs::Registry* reg_;
  obs::EventLog* events_;
  obs::Counter* action_counters_[kNumActions] = {};

  std::vector<RoundSample> samples_;
  std::uint64_t round_par_changes_ = 0;
  std::uint64_t round_corrections_ = 0;

  bool prev_root_fok_ = false;
  bool cycle_open_ = false;
  bool fok_rise_valid_ = false;
  std::uint64_t cycle_start_round_ = 0;
  std::uint64_t fok_rise_round_ = 0;
  std::uint64_t cycles_closed_ = 0;
  std::uint64_t cur_step_ = 0;
  std::uint64_t cur_rounds_ = 0;
};

}  // namespace snappif::pif
