// Batched, branch-free guard evaluation over CSR rows.
//
// pif::GuardEval walks one neighborhood with data-dependent branches on every
// neighbor (phase tests, parent tests, Sum_Set membership).  On random
// initial configurations those branches are unpredictable, and at n = 10^5+
// the mispredicts dominate the walk.  BatchedGuards computes the same seven
// guard bits with straight-line mask arithmetic: every per-neighbor predicate
// becomes a 0/1 word, conjunctions become `&`, the Sum accumulation becomes
// an AND with an all-ones/all-zeros mask — no branch in the inner loop, so
// the compiler if-converts it.  The per-row tail that derives the guard bits
// from the reduced intermediates is branch-light and builds the action mask
// with shifts directly (no bool array round-trip through the store buffer).
//
// The inner loop reads ONE 64-bit word per neighbor — PifSoa's derived
// `packed` column — instead of five scattered column loads.  Packing is a
// lossy 20-bit compression of level/count, so exactness is preserved by a
// per-row fallback: any touched word with the overflow bit (or n >= 2^20,
// where the packed parent field cannot represent every id) reroutes that row
// through `mask_of_columns`, the original exact column walk.  In-domain
// configurations (level <= L_max <= n, count <= N' <= n, n <= 10^6) never
// overflow, so the fallback exists for adversarial set_state values only.
//
// Bit-for-bit contract: for every configuration, every processor, and every
// Params variant, `mask_of` equals GuardEval::mask and `apply` equals
// PifProtocol::apply — the SoA engine's trajectories are then identical to
// the mask engine's by induction.  Enforced across protocols, topologies and
// daemons by tests/sim/test_soa_differential.cpp.
//
// TRACEABILITY.md maps each intermediate below to its Section-3 macro or
// predicate; the per-clause comments in GuardEval (protocol.cpp) remain the
// readable reference.
#pragma once

#include <cstdint>
#include <span>

#include "pif/protocol.hpp"
#include "pif/soa.hpp"
#include "sim/csr.hpp"
#include "sim/types.hpp"

namespace snappif::pif {

class BatchedGuards {
 public:
  /// Captures the Params switches as 0/1 words so the kernel never branches
  /// on them.  `csr` must outlive the kernel and describe the same graph the
  /// protocol was built on.
  BatchedGuards(const PifProtocol& proto, const sim::Csr& csr)
      : csr_(&csr),
        params_(proto.params()),
        root_(proto.root()),
        lit_sumset_owner_(params_.literal_sumset_fok_owner ? 1 : 0),
        lit_prepot_fok_(params_.literal_prepotential_fok ? 1 : 0) {}

  /// All seven guard bits of p.  Agrees with GuardEval(proto, config, p).mask.
  /// One packed load per neighbor; exact-column fallback on overflow.
  [[nodiscard]] sim::ActionMask mask_of(const PifSoa& soa,
                                        sim::ProcessorId p) const {
    if (soa.n() > PifSoa::kPackedFieldMax) {
      return mask_of_columns(soa, p);  // packed parent field too narrow
    }
    // Raw pointers: the row loop must stay free of bounds-check calls.
    const std::uint64_t* __restrict packed = soa.packed.data();
    const sim::ProcessorId* __restrict adj = csr_->adjacency().data();
    const std::uint32_t* __restrict offsets = csr_->offsets().data();

    // p's own fields from its packed word (one load instead of five column
    // reads; a set self-overflow bit joins the same fallback as neighbors).
    const std::uint64_t selfw = packed[p];
    const std::uint32_t sp_pif = selfw & 3;
    const std::uint32_t sp_fok = (selfw >> 2) & 1;
    const std::uint32_t sp_level =
        (selfw >> 4) & PifSoa::kPackedFieldMax;
    const std::uint32_t sp_count =
        (selfw >> 24) & PifSoa::kPackedFieldMax;
    const std::uint32_t lp1 = sp_level + 1;
    const std::uint32_t l_max = params_.l_max;
    // Sum_Set's ¬Fok conjunct: the member's ¬Fok_q, or the owner's ¬Fok_p in
    // the literal-typo reading.  Both operands are loop-invariant 0/1 words.
    const std::uint32_t owner_term = lit_sumset_owner_ & (sp_fok ^ 1u);
    const std::uint32_t member_mode = lit_sumset_owner_ ^ 1u;
    // Pre_Potential's printed ¬Fok_q conjunct is a repair-dropped no-op
    // unless the literal reading is on: (¬lit) | ¬Fok_q.
    const std::uint32_t prepot_pass = lit_prepot_fok_ ^ 1u;

    std::uint32_t all_c = 1;        // forall q :: Pif_q = C
    std::uint32_t leaf = 1;         // Leaf(p)'s quantifier
    std::uint32_t b_free = 1;       // BFree(p)
    std::uint32_t has_pot = 0;      // Pre_Potential_p != {}
    std::uint32_t child_all_f = 1;  // BLeaf(p)'s quantifier
    std::uint64_t sum = 1;          // Sum_p
    std::uint64_t ovf = selfw & 8;  // self/neighbor outside the packed domain

    const std::uint32_t row_end = offsets[p + 1];
    for (std::uint32_t i = offsets[p]; i < row_end; ++i) {
      const std::uint64_t qw = packed[adj[i]];
      const std::uint32_t qp = qw & 3;
      const std::uint32_t qf = (qw >> 2) & 1;
      const std::uint32_t ql = (qw >> 4) & PifSoa::kPackedFieldMax;
      const std::uint32_t qc = (qw >> 24) & PifSoa::kPackedFieldMax;
      const std::uint32_t qpar = static_cast<std::uint32_t>(qw >> 44);
      ovf |= qw & 8;
      const std::uint32_t is_b = qp == static_cast<std::uint32_t>(Phase::kB);
      const std::uint32_t is_f = qp == static_cast<std::uint32_t>(Phase::kF);
      const std::uint32_t is_c = qp == static_cast<std::uint32_t>(Phase::kC);
      const std::uint32_t par_is_p = qpar == p;

      all_c &= is_c;
      leaf &= is_c | (par_is_p ^ 1u);
      b_free &= is_b ^ 1u;
      child_all_f &= (par_is_p ^ 1u) | is_f;
      has_pot |= is_b & (par_is_p ^ 1u) &
                 static_cast<std::uint32_t>(ql < l_max) &
                 (prepot_pass | (qf ^ 1u));
      const std::uint32_t in_sum =
          is_b & par_is_p & static_cast<std::uint32_t>(ql == lp1) &
          (owner_term | (member_mode & (qf ^ 1u)));
      sum += static_cast<std::uint64_t>(qc) &
             (0ULL - static_cast<std::uint64_t>(in_sum));
    }
    if (ovf != 0) {
      return mask_of_columns(soa, p);  // a 20-bit field clipped; redo exactly
    }

    // The tail, against the packed self/parent words.  Mirrors mask_tail
    // clause for clause (the differential suite holds the two in lockstep);
    // duplicated so the hot path touches only the packed column.
    const std::uint32_t is_b_p =
        sp_pif == static_cast<std::uint32_t>(Phase::kB);
    const std::uint32_t is_f_p =
        sp_pif == static_cast<std::uint32_t>(Phase::kF);
    const std::uint32_t is_c_p =
        sp_pif == static_cast<std::uint32_t>(Phase::kC);
    const std::uint32_t good_count =
        (is_b_p ^ 1u) | sp_fok | static_cast<std::uint32_t>(sp_count <= sum);

    std::uint32_t mask;
    if (p == root_) {
      std::uint32_t good_fok = 1;
      if (is_b_p != 0) {
        if (params_.literal_root_goodfok) {
          good_fok = sp_fok == static_cast<std::uint32_t>(sum == params_.n);
        } else if (!params_.ablate_count_wait) {
          good_fok =
              sp_fok == static_cast<std::uint32_t>(sp_count == params_.n);
        }
      }
      const std::uint32_t normal = good_fok & good_count;
      mask = ((is_c_p & all_c) << kBAction) |
             ((is_b_p & sp_fok & normal & b_free) << kFAction) |
             ((is_f_p & all_c) << kCAction) |
             ((is_b_p & (sp_fok ^ 1u) & normal &
               static_cast<std::uint32_t>(sp_count < sum))
              << kCountAction) |
             ((normal ^ 1u) << kBCorrection);
    } else {
      // In-domain non-root parents are genuine neighbor ids (< n), so the
      // packed parent field is exact here; its level matters for GoodLevel,
      // so a clipped parent word takes the same exact fallback.
      const auto par = static_cast<sim::ProcessorId>(selfw >> 44);
      const std::uint64_t parw = packed[par];
      if ((parw & 8) != 0) {
        return mask_of_columns(soa, p);
      }
      const std::uint32_t parp = parw & 3;
      const std::uint32_t parf = (parw >> 2) & 1;
      const std::uint32_t par_level =
          (parw >> 4) & PifSoa::kPackedFieldMax;
      const std::uint32_t good_fok =
          static_cast<std::uint32_t>(
              !((is_b_p & sp_fok) != 0 && sp_fok != parf)) &
          static_cast<std::uint32_t>(
              !(is_f_p != 0 &&
                parp == static_cast<std::uint32_t>(Phase::kB) && parf == 0));
      const std::uint32_t good_pif =
          is_c_p | static_cast<std::uint32_t>(parp == sp_pif) |
          static_cast<std::uint32_t>(parp ==
                                     static_cast<std::uint32_t>(Phase::kB));
      const std::uint32_t good_level =
          is_c_p | static_cast<std::uint32_t>(sp_level == par_level + 1);
      const std::uint32_t normal =
          good_pif & good_level & good_fok & good_count;
      mask = ((is_c_p &
               (static_cast<std::uint32_t>(params_.ablate_broadcast_leaf) |
                leaf) &
               has_pot)
              << kBAction) |
             ((is_b_p & normal & (sp_fok ^ parf)) << kFokAction) |
             ((is_b_p & sp_fok & normal &
               (static_cast<std::uint32_t>(params_.ablate_feedback_bleaf) |
                child_all_f))
              << kFAction) |
             ((is_f_p & normal & leaf & b_free) << kCAction) |
             ((is_b_p & (sp_fok ^ 1u) & normal &
               static_cast<std::uint32_t>(sp_count < sum))
              << kCountAction) |
             ((is_b_p & (normal ^ 1u)) << kBCorrection) |
             ((is_f_p & (normal ^ 1u)) << kFCorrection);
    }
    return mask;
  }

  /// The exact column walk (the original kernel): five column loads per
  /// neighbor, no packing.  The fallback target of mask_of, and the whole
  /// story when n does not fit the packed parent field.
  [[nodiscard]] sim::ActionMask mask_of_columns(const PifSoa& soa,
                                                sim::ProcessorId p) const;

  /// Batched refresh: out[i] = mask_of(list[i]).  One tight loop over CSR
  /// rows — the engine's dirty-flush feeds its worklist through here.
  void masks_for(const PifSoa& soa, std::span<const sim::ProcessorId> list,
                 std::span<sim::ActionMask> out) const;

  /// Dense refresh: out[p] = mask_of(p) for every processor, streaming the
  /// CSR in row order.  When a step dirties most of the network (synchronous
  /// rounds on corrupted configurations), the sequential sweep beats the
  /// scattered per-row walk on memory behavior alone.
  void masks_all(const PifSoa& soa, std::span<sim::ActionMask> out) const;

  /// The statement of action `a` at p against the current SoA snapshot.
  /// Agrees with PifProtocol::apply on the equivalent configuration.
  [[nodiscard]] State apply(const PifSoa& soa, sim::ProcessorId p,
                            sim::ActionId a) const;

  /// Sum_p from the SoA arrays (the Count-action's macro).
  [[nodiscard]] std::uint64_t sum_of(const PifSoa& soa, sim::ProcessorId p) const;

 private:
  /// Folds the reduced neighborhood intermediates and p's own (exact-column)
  /// fields into the seven-bit action mask.  Shared by the packed fast path
  /// and the exact column walk — the tail never reads compressed data, so
  /// both paths land here with identical inputs and produce identical masks.
  [[nodiscard]] sim::ActionMask mask_tail(const PifSoa& soa, sim::ProcessorId p,
                                          std::uint32_t all_c,
                                          std::uint32_t leaf,
                                          std::uint32_t b_free,
                                          std::uint32_t has_pot,
                                          std::uint32_t child_all_f,
                                          std::uint64_t sum) const {
    const std::uint32_t sp_pif = soa.pif[p];
    const std::uint32_t sp_fok = soa.fok[p];
    const std::uint32_t sp_count = soa.count[p];
    const std::uint32_t sp_level = soa.level[p];
    const std::uint32_t is_b_p =
        sp_pif == static_cast<std::uint32_t>(Phase::kB);
    const std::uint32_t is_f_p =
        sp_pif == static_cast<std::uint32_t>(Phase::kF);
    const std::uint32_t is_c_p =
        sp_pif == static_cast<std::uint32_t>(Phase::kC);
    const std::uint32_t good_count =
        (is_b_p ^ 1u) | sp_fok | static_cast<std::uint32_t>(sp_count <= sum);

    std::uint32_t mask;
    if (p == root_) {
      std::uint32_t good_fok = 1;
      if (is_b_p != 0) {
        if (params_.literal_root_goodfok) {
          good_fok = sp_fok == static_cast<std::uint32_t>(sum == params_.n);
        } else if (!params_.ablate_count_wait) {
          good_fok =
              sp_fok == static_cast<std::uint32_t>(sp_count == params_.n);
        }
      }
      const std::uint32_t normal = good_fok & good_count;
      mask = ((is_c_p & all_c) << kBAction) |
             ((is_b_p & sp_fok & normal & b_free) << kFAction) |
             ((is_f_p & all_c) << kCAction) |
             ((is_b_p & (sp_fok ^ 1u) & normal &
               static_cast<std::uint32_t>(sp_count < sum))
              << kCountAction) |
             ((normal ^ 1u) << kBCorrection);
    } else {
      const sim::ProcessorId par = soa.parent[p];
      const std::uint32_t parp = soa.pif[par];
      const std::uint32_t parf = soa.fok[par];
      const std::uint32_t good_fok =
          static_cast<std::uint32_t>(
              !((is_b_p & sp_fok) != 0 && sp_fok != parf)) &
          static_cast<std::uint32_t>(
              !(is_f_p != 0 &&
                parp == static_cast<std::uint32_t>(Phase::kB) && parf == 0));
      const std::uint32_t good_pif =
          is_c_p | static_cast<std::uint32_t>(parp == sp_pif) |
          static_cast<std::uint32_t>(parp ==
                                     static_cast<std::uint32_t>(Phase::kB));
      const std::uint32_t good_level =
          is_c_p | static_cast<std::uint32_t>(sp_level == soa.level[par] + 1);
      const std::uint32_t normal =
          good_pif & good_level & good_fok & good_count;
      mask = ((is_c_p &
               (static_cast<std::uint32_t>(params_.ablate_broadcast_leaf) |
                leaf) &
               has_pot)
              << kBAction) |
             ((is_b_p & normal & (sp_fok ^ parf)) << kFokAction) |
             ((is_b_p & sp_fok & normal &
               (static_cast<std::uint32_t>(params_.ablate_feedback_bleaf) |
                child_all_f))
              << kFAction) |
             ((is_f_p & normal & leaf & b_free) << kCAction) |
             ((is_b_p & (sp_fok ^ 1u) & normal &
               static_cast<std::uint32_t>(sp_count < sum))
              << kCountAction) |
             ((is_b_p & (normal ^ 1u)) << kBCorrection) |
             ((is_f_p & (normal ^ 1u)) << kFCorrection);
    }
    return mask;
  }

  const sim::Csr* csr_;
  Params params_;
  sim::ProcessorId root_;
  std::uint32_t lit_sumset_owner_;
  std::uint32_t lit_prepot_fok_;
};

}  // namespace snappif::pif
