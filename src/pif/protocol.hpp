// Algorithms 1 and 2 of the paper: the snap-stabilizing PIF protocol for the
// root (Algorithm 1) and the other processors (Algorithm 2).
//
// All of the paper's macros (Sum_Set, Sum, Pre_Potential, Potential),
// predicates (GoodFok, GoodPif, GoodLevel, GoodCount, Normal, Leaf, BLeaf,
// BFree, Broadcast, ChangeFok, Feedback, Cleaning, NewCount, AbnormalB,
// AbnormalF) and actions (B-action, Fok-action, F-action, C-action,
// Count-action, B-correction, F-correction) are exposed as public methods so
// the test suite can exercise each one against hand-built neighborhoods.
//
// See DESIGN.md §2 for the three documented repairs of apparent typos in the
// conference text (Sum_Set's ¬Fok conjunct, the root's GoodFok, and
// Potential's undefined Set_p); Params offers literal-reading switches so the
// test suite can demonstrate the literal text misbehaves.
#pragma once

#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "pif/params.hpp"
#include "pif/state.hpp"
#include "sim/configuration.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace snappif::pif {

/// Action table shared by both algorithms, in the paper's listing order.
/// Fok-action and F-correction are never enabled at the root (Algorithm 1
/// has no such actions); B-correction's guard differs per algorithm.
enum Action : sim::ActionId {
  kBAction = 0,
  kFokAction = 1,
  kFAction = 2,
  kCAction = 3,
  kCountAction = 4,
  kBCorrection = 5,
  kFCorrection = 6,
  kNumActions = 7,
};

[[nodiscard]] std::string_view action_label(sim::ActionId a);

class PifProtocol {
 public:
  using State = pif::State;
  using Config = sim::Configuration<State>;

  PifProtocol(const graph::Graph& g, Params params);

  [[nodiscard]] const Params& params() const noexcept { return params_; }
  [[nodiscard]] sim::ProcessorId root() const noexcept { return params_.root; }
  [[nodiscard]] bool is_root(sim::ProcessorId p) const noexcept {
    return p == params_.root;
  }

  // --- Protocol concept interface -----------------------------------------

  /// The normal starting configuration: Pif=C everywhere (plus canonical
  /// values for the unconstrained variables).
  [[nodiscard]] State initial_state(sim::ProcessorId p) const;
  [[nodiscard]] sim::ActionId num_actions() const noexcept { return kNumActions; }
  [[nodiscard]] std::string_view action_name(sim::ActionId a) const {
    return action_label(a);
  }
  [[nodiscard]] bool enabled(const Config& c, sim::ProcessorId p,
                             sim::ActionId a) const;
  /// All seven guard bits of p from one neighborhood walk (see GuardEval).
  /// Agrees bit-for-bit with `enabled()`; the per-guard methods below stay as
  /// the independent reference implementation for the differential tests.
  [[nodiscard]] sim::ActionMask enabled_mask(const Config& c,
                                             sim::ProcessorId p) const;
  [[nodiscard]] State apply(const Config& c, sim::ProcessorId p,
                            sim::ActionId a) const;
  /// Uniform over the variable domains of Section 3 (Pif x Fok x Count x
  /// Level x Par); the root's constants are respected.
  [[nodiscard]] State random_state(sim::ProcessorId p, util::Rng& rng) const;
  /// The complete (finite) state domain of processor p, for exhaustive
  /// exploration.  Size: 3 * 2 * N' (* Lmax * deg(p) for p != r).
  [[nodiscard]] std::vector<State> all_states(sim::ProcessorId p) const;

  // --- Macros (Section 3) --------------------------------------------------

  /// Sum_p = 1 + sum of Count_q over q in Sum_Set_p.
  [[nodiscard]] std::uint64_t sum(const Config& c, sim::ProcessorId p) const;
  /// Membership of q in Sum_Set_p.
  [[nodiscard]] bool in_sum_set(const Config& c, sim::ProcessorId p,
                                sim::ProcessorId q) const;
  /// Pre_Potential_p, ascending neighbor order.
  [[nodiscard]] std::vector<sim::ProcessorId> pre_potential(
      const Config& c, sim::ProcessorId p) const;
  /// Potential_p (minimum-level restriction of Pre_Potential_p).
  [[nodiscard]] std::vector<sim::ProcessorId> potential(const Config& c,
                                                        sim::ProcessorId p) const;

  // --- Predicates (Section 3, both algorithms) -----------------------------

  [[nodiscard]] bool good_fok(const Config& c, sim::ProcessorId p) const;
  [[nodiscard]] bool good_pif(const Config& c, sim::ProcessorId p) const;    // p != r
  [[nodiscard]] bool good_level(const Config& c, sim::ProcessorId p) const;  // p != r
  [[nodiscard]] bool good_count(const Config& c, sim::ProcessorId p) const;
  [[nodiscard]] bool normal(const Config& c, sim::ProcessorId p) const;
  [[nodiscard]] bool leaf(const Config& c, sim::ProcessorId p) const;
  [[nodiscard]] bool b_leaf(const Config& c, sim::ProcessorId p) const;
  [[nodiscard]] bool b_free(const Config& c, sim::ProcessorId p) const;

  // --- Guards ---------------------------------------------------------------

  [[nodiscard]] bool broadcast_guard(const Config& c, sim::ProcessorId p) const;
  [[nodiscard]] bool change_fok_guard(const Config& c, sim::ProcessorId p) const;
  [[nodiscard]] bool feedback_guard(const Config& c, sim::ProcessorId p) const;
  [[nodiscard]] bool cleaning_guard(const Config& c, sim::ProcessorId p) const;
  [[nodiscard]] bool new_count_guard(const Config& c, sim::ProcessorId p) const;
  [[nodiscard]] bool b_correction_guard(const Config& c, sim::ProcessorId p) const;
  [[nodiscard]] bool f_correction_guard(const Config& c, sim::ProcessorId p) const;

 private:
  [[nodiscard]] const graph::Graph& g() const noexcept { return *graph_; }

  const graph::Graph* graph_;
  Params params_;
};

/// One-pass guard evaluation: walks p's neighborhood exactly once, computes
/// every Section-3 macro and predicate the guards share (Sum, the emptiness
/// of Potential, Leaf, BLeaf, BFree, GoodFok/GoodPif/GoodLevel/GoodCount,
/// Normal), and derives all seven guard bits from those intermediates.  This
/// is the engine's hot path: the per-guard PifProtocol methods each re-walk
/// the neighborhood, so a full `enabled()` sweep of one processor costs ~7
/// scans where GuardEval costs one.  Honors every Params switch (the
/// literal-reading repairs and the E7/E13 ablations).  Field-by-field
/// agreement with the reference methods is enforced by
/// tests/sim/test_mask_differential.cpp.
struct GuardEval {
  GuardEval(const PifProtocol& proto, const sim::Configuration<State>& c,
            sim::ProcessorId p);

  bool root = false;
  /// Sum_p (the macro; 1 + sum of Count_q over Sum_Set_p).
  std::uint64_t sum = 1;
  /// Potential_p != {} — equivalently Pre_Potential_p != {}, since the
  /// minimum-level restriction only filters a non-empty set.
  bool has_potential = false;
  bool leaf = true;
  bool b_leaf = true;
  bool b_free = true;
  bool all_neighbors_c = true;
  bool good_fok = true;
  bool good_pif = true;    // vacuously true at the root
  bool good_level = true;  // vacuously true at the root
  bool good_count = true;
  bool normal = true;
  /// Bit `a` set iff action `a`'s guard holds (Action enum order).
  sim::ActionMask mask = 0;
};

}  // namespace snappif::pif
