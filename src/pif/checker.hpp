// Configuration analysis: the definitions of Section 4.1 and the invariants
// of Section 4.2, used by tests and by the experiment harness to classify
// configurations and measure stabilization milestones.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pif/protocol.hpp"
#include "sim/configuration.hpp"

namespace snappif::pif {

using Config = sim::Configuration<State>;

/// Definitions 8-14 as a classification bundle.
struct ConfigClass {
  bool normal = false;             // Def. 8: forall p, Normal(p)
  bool broadcast = false;          // Def. 9: Pif_r = B /\ ¬Fok_r
  bool start_broadcast = false;    // Def. 10 (SB): Pif_r = C
  bool sbn = false;                // Def. 11: SB /\ normal
  bool ebn = false;                // Def. 12: normal /\ ¬Fok_r /\ forall p Pif_p = B
  bool end_feedback = false;       // Def. 13 (EF): Pif_r = F
  bool efn = false;                // Def. 14: EF /\ normal
};

class Checker {
 public:
  explicit Checker(const PifProtocol& protocol) : protocol_(&protocol) {}

  [[nodiscard]] const PifProtocol& protocol() const noexcept { return *protocol_; }

  /// Def. 8: every processor satisfies Normal.  Evaluated through GuardEval
  /// (one neighborhood walk per processor).
  [[nodiscard]] bool all_normal(const Config& c) const;
  /// Abnormal processors, ascending.
  [[nodiscard]] std::vector<sim::ProcessorId> abnormal(const Config& c) const;
  /// |abnormal(c)| without materializing the vector (lookahead hot path).
  [[nodiscard]] std::size_t count_abnormal(const Config& c) const;
  [[nodiscard]] ConfigClass classify(const Config& c) const;

  /// The normal starting configuration: forall p, Pif_p = C.
  [[nodiscard]] bool all_c(const Config& c) const;

  /// Definition 4: ParentPath(p) — the maximal chain p, Par_p, Par_Par_p, ...
  /// through *normal* processors, ending at the root or at the first
  /// abnormal processor (which is included as the path's extremity).
  /// Only defined for Pif_p != C; returns empty vector otherwise.
  [[nodiscard]] std::vector<sim::ProcessorId> parent_path(const Config& c,
                                                          sim::ProcessorId p) const;

  /// Definitions 5-6: membership in the LegalTree (the tree rooted at r).
  /// legal[p] is true iff p = r, or Pif_p != C and ParentPath(p) ends at r
  /// with every non-extremity processor normal.
  [[nodiscard]] std::vector<bool> legal_tree(const Config& c) const;

  /// Height of the legal tree = max level over members (root level is 0).
  [[nodiscard]] std::uint32_t legal_tree_height(const Config& c) const;
  [[nodiscard]] std::size_t legal_tree_size(const Config& c) const;

  /// Definition 15: Good Configuration.
  [[nodiscard]] bool good_configuration(const Config& c) const;

  /// Property 1 invariant: (Pif_r = B /\ ¬Fok_r) implies every legal-tree
  /// member is in B with consistent levels, ¬Fok, and Count <= Sum.
  [[nodiscard]] bool property1_holds(const Config& c) const;

  /// Property 2 (only meaningful in normal configurations; returns true and
  /// sets *applicable=false otherwise).
  [[nodiscard]] bool property2_holds(const Config& c, bool* applicable = nullptr) const;

  /// Theorem 4's structural claim: every ParentPath of a legal-tree member is
  /// a chordless path in the network.  Checks all members.
  [[nodiscard]] bool parent_paths_chordless(const Config& c) const;

  /// One-line-per-processor dump for debugging.
  [[nodiscard]] std::string describe(const Config& c) const;

  /// Compact one-character-per-processor strip ("B*B F C ..."): phase letter
  /// followed by '*' when Fok is raised.  Feeds sim::Timeline.
  [[nodiscard]] std::string phase_strip(const Config& c) const;

  /// The constructed broadcast tree as a parent array (root: itself), or
  /// nullopt unless the legal tree currently spans the whole network.  In a
  /// root-initiated cycle this is guaranteed at the step Fok_r rises
  /// (Count_r = N: everyone just joined, nobody has fed back yet) — the
  /// moment the PIF doubles as a spanning-tree construction, one fresh tree
  /// per cycle (Section 1 lists this application).  Later in the cycle the
  /// tree erodes: distant leaves may clean while the root still broadcasts.
  [[nodiscard]] std::optional<std::vector<sim::ProcessorId>> extract_spanning_tree(
      const Config& c) const;

 private:
  const PifProtocol* protocol_;
};

}  // namespace snappif::pif
