#include "pif/checker.hpp"

#include <algorithm>
#include <cstdio>

#include "graph/properties.hpp"
#include "util/assert.hpp"

namespace snappif::pif {

bool Checker::all_normal(const Config& c) const {
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    if (!GuardEval(*protocol_, c, p).normal) {
      return false;
    }
  }
  return true;
}

std::vector<sim::ProcessorId> Checker::abnormal(const Config& c) const {
  std::vector<sim::ProcessorId> out;
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    if (!GuardEval(*protocol_, c, p).normal) {
      out.push_back(p);
    }
  }
  return out;
}

std::size_t Checker::count_abnormal(const Config& c) const {
  std::size_t count = 0;
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    count += GuardEval(*protocol_, c, p).normal ? 0 : 1;
  }
  return count;
}

bool Checker::all_c(const Config& c) const {
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    if (c.state(p).pif != Phase::kC) {
      return false;
    }
  }
  return true;
}

ConfigClass Checker::classify(const Config& c) const {
  ConfigClass cls;
  const sim::ProcessorId r = protocol_->root();
  const State& sr = c.state(r);
  cls.normal = all_normal(c);
  cls.broadcast = sr.pif == Phase::kB && !sr.fok;
  cls.start_broadcast = sr.pif == Phase::kC;
  cls.sbn = cls.start_broadcast && cls.normal;
  cls.end_feedback = sr.pif == Phase::kF;
  cls.efn = cls.end_feedback && cls.normal;
  bool all_b = true;
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    all_b = all_b && c.state(p).pif == Phase::kB;
  }
  cls.ebn = cls.normal && !sr.fok && all_b;
  return cls;
}

std::vector<sim::ProcessorId> Checker::parent_path(const Config& c,
                                                   sim::ProcessorId p) const {
  std::vector<sim::ProcessorId> path;
  if (p != protocol_->root() && c.state(p).pif == Phase::kC) {
    return path;  // ParentPath is defined for Pif_p != C only
  }
  sim::ProcessorId cur = p;
  path.push_back(cur);
  // Extend while the current extremity is a normal non-root processor.
  while (cur != protocol_->root() && protocol_->normal(c, cur) &&
         path.size() <= c.n()) {
    cur = c.state(cur).parent;
    SNAPPIF_ASSERT(cur < c.n());
    path.push_back(cur);
  }
  // A cycle through normal processors is impossible (GoodLevel forces levels
  // to strictly decrease toward the extremity); the cap is defensive.
  SNAPPIF_ASSERT_MSG(path.size() <= c.n(), "parent chain longer than n: cycle?");
  return path;
}

std::vector<bool> Checker::legal_tree(const Config& c) const {
  const sim::ProcessorId r = protocol_->root();
  // memo: 0 = unknown, 1 = in, 2 = out
  std::vector<std::uint8_t> memo(c.n(), 0);
  memo[r] = c.state(r).pif != Phase::kC ? 1 : 2;

  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    if (memo[p] != 0) {
      continue;
    }
    std::vector<sim::ProcessorId> chain;
    sim::ProcessorId cur = p;
    std::uint8_t verdict = 0;
    while (true) {
      if (memo[cur] != 0) {
        verdict = memo[cur];
        break;
      }
      if (c.state(cur).pif == Phase::kC || !protocol_->normal(c, cur)) {
        // cur itself can't extend a path (abnormal extremity or not
        // participating): cur is out (it is not the root; handled above).
        verdict = 2;
        chain.push_back(cur);
        break;
      }
      chain.push_back(cur);
      cur = c.state(cur).parent;
      if (chain.size() > c.n()) {
        verdict = 2;  // defensive: parent cycle through seemingly-normal nodes
        break;
      }
    }
    for (sim::ProcessorId q : chain) {
      memo[q] = verdict;
    }
  }
  std::vector<bool> legal(c.n(), false);
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    legal[p] = memo[p] == 1;
  }
  return legal;
}

std::uint32_t Checker::legal_tree_height(const Config& c) const {
  const auto legal = legal_tree(c);
  std::uint32_t height = 0;
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    if (legal[p]) {
      height = std::max(height, c.state(p).level);
    }
  }
  return height;
}

std::size_t Checker::legal_tree_size(const Config& c) const {
  const auto legal = legal_tree(c);
  return static_cast<std::size_t>(std::count(legal.begin(), legal.end(), true));
}

bool Checker::good_configuration(const Config& c) const {
  const auto legal = legal_tree(c);
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    if (legal[p] || p == protocol_->root()) {
      continue;
    }
    const State& sp = c.state(p);
    if ((sp.pif == Phase::kB || sp.pif == Phase::kF) && legal[sp.parent]) {
      if (!protocol_->good_count(c, p)) {
        return false;
      }
    }
  }
  return true;
}

bool Checker::property1_holds(const Config& c) const {
  const sim::ProcessorId r = protocol_->root();
  const State& sr = c.state(r);
  // Antecedent: the root is in a *legitimate* broadcast phase.  The paper
  // writes (Pif_r = B) /\ ¬Fok_r, but its proof additionally uses
  // Count_r <= Sum_r, i.e. Normal(r) ("Furthermore, Pif_r = B, Fok_r =
  // false, and Count_r <= Sum_r").  Without Normal(r) the statement is not
  // inductive: a counted child's B-correction can push an arbitrary-start
  // root's Count above its Sum (Lemma 2's mechanism), which then resolves
  // through the root's own B-correction.  The inductiveness of this
  // formalization is verified over the full path-3 configuration space in
  // tests/pif/test_section4_lemmas.cpp.
  if (sr.pif != Phase::kB || sr.fok || !protocol_->normal(c, r)) {
    return true;  // antecedent false
  }
  const auto legal = legal_tree(c);
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    if (!legal[p]) {
      continue;
    }
    const State& sp = c.state(p);
    if (sp.pif != Phase::kB || sp.fok) {
      return false;
    }
    if (p != r && sp.level != c.state(sp.parent).level + 1) {
      return false;
    }
    if (sp.count > protocol_->sum(c, p)) {
      return false;
    }
  }
  return true;
}

bool Checker::property2_holds(const Config& c, bool* applicable) const {
  const bool normal_config = all_normal(c);
  if (applicable != nullptr) {
    *applicable = normal_config;
  }
  if (!normal_config) {
    return true;
  }
  const sim::ProcessorId r = protocol_->root();
  const State& sr = c.state(r);
  const auto legal = legal_tree(c);

  // 2.1: forall p, Pif_p != C => p in the (good) legal tree.
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    if (c.state(p).pif != Phase::kC && !legal[p]) {
      return false;
    }
  }
  // 2.2: Pif_r = C => forall p, Pif_p = C.
  if (sr.pif == Phase::kC && !all_c(c)) {
    return false;
  }
  // 2.3: Pif_r = F => every legal-tree member is in F.
  if (sr.pif == Phase::kF) {
    for (sim::ProcessorId p = 0; p < c.n(); ++p) {
      if (legal[p] && c.state(p).pif != Phase::kF) {
        return false;
      }
    }
  }
  // 2.4: (Pif_r = B /\ ¬Fok_r) => Count_p <= #Subtree(p) for legal members.
  if (sr.pif == Phase::kB && !sr.fok) {
    // Subtree sizes via processing members by decreasing level.
    std::vector<sim::ProcessorId> members;
    for (sim::ProcessorId p = 0; p < c.n(); ++p) {
      if (legal[p]) {
        members.push_back(p);
      }
    }
    std::sort(members.begin(), members.end(),
              [&](sim::ProcessorId a, sim::ProcessorId b) {
                return c.state(a).level > c.state(b).level;
              });
    std::vector<std::uint64_t> subtree(c.n(), 0);
    for (sim::ProcessorId p : members) {
      std::uint64_t size = 1;
      for (sim::ProcessorId q : c.neighbors(p)) {
        if (legal[q] && c.state(q).parent == p &&
            c.state(q).level == c.state(p).level + 1) {
          size += subtree[q];
        }
      }
      subtree[p] = size;
      if (c.state(p).count > size) {
        return false;
      }
    }
  }
  return true;
}

bool Checker::parent_paths_chordless(const Config& c) const {
  const auto legal = legal_tree(c);
  const graph::Graph& g = c.topology();
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    if (!legal[p] || p == protocol_->root()) {
      continue;
    }
    const auto path = parent_path(c, p);
    if (!graph::is_chordless_path(g, path)) {
      return false;
    }
  }
  return true;
}

std::optional<std::vector<sim::ProcessorId>> Checker::extract_spanning_tree(
    const Config& c) const {
  const auto legal = legal_tree(c);
  std::vector<sim::ProcessorId> parent(c.n());
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    if (!legal[p]) {
      return std::nullopt;  // the tree does not span the network (yet)
    }
    parent[p] = p == protocol_->root() ? p : c.state(p).parent;
  }
  return parent;
}

std::string Checker::phase_strip(const Config& c) const {
  std::string strip;
  strip.reserve(static_cast<std::size_t>(c.n()) * 2);
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    strip += phase_char(c.state(p).pif);
    strip += c.state(p).fok ? '*' : ' ';
  }
  return strip;
}

std::string Checker::describe(const Config& c) const {
  std::string out;
  char buf[160];
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    const State& s = c.state(p);
    const bool is_normal = protocol_->normal(c, p);
    if (s.parent == kNoParent) {
      std::snprintf(buf, sizeof(buf),
                    "%4u: Pif=%c Fok=%d L=%-3u Par=-   Cnt=%-4u %s%s\n", p,
                    phase_char(s.pif), s.fok ? 1 : 0, s.level, s.count,
                    is_normal ? "normal" : "ABNORMAL",
                    p == protocol_->root() ? " (root)" : "");
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%4u: Pif=%c Fok=%d L=%-3u Par=%-3u Cnt=%-4u %s%s\n", p,
                    phase_char(s.pif), s.fok ? 1 : 0, s.level, s.parent, s.count,
                    is_normal ? "normal" : "ABNORMAL",
                    p == protocol_->root() ? " (root)" : "");
    }
    out += buf;
  }
  return out;
}

}  // namespace snappif::pif
